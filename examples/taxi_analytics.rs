//! The paper's second case study (§6.3): New York taxi ride analytics —
//! average trip distance per borough per sliding window — on the pipelined
//! (Flink-style) engine.
//!
//! Run with: `cargo run --release -p streamapprox --example taxi_analytics`

use sa_types::WindowSpec;
use sa_workloads::{Borough, TaxiGenerator, TaxiRide};
use streamapprox::{run_pipelined, FixedFraction, PipelinedConfig, PipelinedSystem, Query};

fn main() {
    // 15,000 rides/second for 12 seconds, replayed in the wire format the
    // aggregator delivers; each aggregated record must be deserialized.
    let rides = TaxiGenerator::new(15_000.0, 21).generate_lines(12_000);
    println!("replaying {} taxi rides", rides.len());

    let query = Query::new(|line: &String| {
        TaxiRide::parse_line(line)
            .expect("valid ride record")
            .distance_miles
    })
    .with_window(WindowSpec::sliding_secs(10, 5));
    let config = PipelinedConfig::new().with_sample_workers(2);

    let native = run_pipelined(
        &config,
        PipelinedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        rides.clone(),
    );
    let approx = run_pipelined(
        &config,
        PipelinedSystem::StreamApprox,
        &query,
        &mut FixedFraction(0.4),
        rides,
    );

    println!(
        "\nnative flink-style: {:>9.0} items/s | streamapprox (40%): {:>9.0} items/s ({:.2}x)",
        native.throughput(),
        approx.throughput(),
        approx.throughput() / native.throughput()
    );

    let (a, e) = match (approx.windows.last(), native.windows.last()) {
        (Some(a), Some(e)) => (a, e),
        _ => return,
    };
    println!("\naverage trip distance per borough (last window):");
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>8}",
        "borough", "approx mi", "± bound", "exact mi", "loss"
    );
    for borough in Borough::ALL {
        let stratum = borough.stratum();
        let (Some(am), Some(em)) = (a.stratum_mean(stratum), e.stratum_mean(stratum)) else {
            continue;
        };
        println!(
            "{:<14} {:>12.3} {:>10.3} {:>12.3} {:>7.2}%",
            borough.to_string(),
            am.value,
            am.bound.margin(),
            em.value,
            sa_estimate::accuracy_loss(am.value, em.value) * 100.0,
        );
    }
    println!(
        "\nManhattan supplies ~77% of rides yet every borough keeps its own\n\
         reservoir, so Staten Island's handful of trips still gets an estimate."
    );
}
