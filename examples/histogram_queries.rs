//! Beyond sum and mean: OASRS supports *any* linear query (§3.2 — "sum,
//! average, count, histogram, etc."). This example drives the sampler
//! directly and answers a histogram and two count queries over one time
//! interval, each with its own error bound.
//!
//! Run with: `cargo run --release -p streamapprox --example histogram_queries`

use sa_estimate::{estimate_count, estimate_histogram};
use sa_sampling::{OasrsSampler, SizingPolicy};
use sa_types::Confidence;
use sa_workloads::{NetFlowGenerator, Protocol};

fn main() {
    // One second of NetFlow traffic: ~30K flows across TCP/UDP/ICMP.
    let flows = NetFlowGenerator::new(30_000.0, 5).generate(1_000);
    println!("interval contains {} flows", flows.len());

    // Sample 2,000 flows per protocol with OASRS.
    let mut sampler = OasrsSampler::new(SizingPolicy::PerStratum(2_000), 7);
    for item in &flows {
        sampler.observe(item.stratum, item.value.clone());
    }
    let sample = sampler.finish_interval();
    println!(
        "sampled {} of {} flows ({:.1}%)",
        sample.total_sampled(),
        sample.total_population(),
        100.0 * sample.total_sampled() as f64 / sample.total_population() as f64
    );

    // Histogram: how many flows fall in each order-of-magnitude size
    // bucket? Each bucket is a weighted indicator sum with its own bound.
    let hist = estimate_histogram(
        &sample,
        |flow| (flow.bytes.max(1) as f64).log10() as u32,
        Confidence::P95,
    );
    println!("\nflow-size histogram (log10 bytes → estimated #flows):");
    for (bucket, estimate) in &hist {
        println!(
            "  10^{bucket}..10^{}: {:>9.0} ± {:>7.0}",
            bucket + 1,
            estimate.value,
            estimate.bound.margin()
        );
    }
    let reconstructed: f64 = hist.iter().map(|(_, e)| e.value).sum();
    println!(
        "  (bucket estimates sum to {reconstructed:.0}; {} flows actually arrived)",
        flows.len()
    );

    // Counts: elephant flows (>100 KB), and ICMP flows specifically.
    let elephants = estimate_count(&sample, |f| f.bytes > 100_000, Confidence::P95);
    let exact_elephants = flows.iter().filter(|i| i.value.bytes > 100_000).count();
    println!(
        "\nflows over 100KB : {:>9.0} ± {:>7.0}   (exact: {exact_elephants})",
        elephants.value,
        elephants.bound.margin()
    );

    let icmp = estimate_count(&sample, |f| f.protocol == Protocol::Icmp, Confidence::P95);
    let exact_icmp = flows
        .iter()
        .filter(|i| i.value.protocol == Protocol::Icmp)
        .count();
    println!(
        "ICMP flows       : {:>9.0} ± {:>7.0}   (exact: {exact_icmp})",
        icmp.value,
        icmp.bound.margin()
    );
    println!(
        "\nICMP is only ~1.5% of traffic, yet its count is exact relative to\n\
         the stratum counter — stratification keeps rare classes countable."
    );
}
