//! Live session: drive an `ApproxSession` from an aggregator consumer in
//! a loop, printing each window's `mean ± bound` the moment its watermark
//! closes it — while the rest of the stream is still in flight. This is
//! the paper's deployment shape (aggregator → consumer → engine, §2.1)
//! and the replacement for the "wait for the whole Vec" pattern.
//!
//! Run with: `cargo run --release -p streamapprox --example live_session`

use sa_aggregator::{merge_by_time, replay_into, Consumer, Partitioner, Producer, Topic};
use sa_types::{EventTime, QueryBudget, WindowSpec};
use sa_workloads::Mix;
use streamapprox::{Query, StreamApprox};

fn main() {
    // Three Gaussian sub-streams at very different rates, merged by the
    // aggregator into the system's single time-ordered input stream and
    // framed into 200-item messages (§6.1). One partition: the
    // aggregator's job here is to *combine* sub-streams, not to shard.
    let mix = Mix::gaussian([8_000.0, 2_000.0, 100.0]);
    let substreams: Vec<_> = mix
        .substreams()
        .iter()
        .map(|s| s.generate(EventTime::from_millis(0), 10_000, 42))
        .collect();
    let topic = Topic::new("sensor-input", 1);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    let messages = replay_into(merge_by_time(substreams), &mut producer, 200);
    println!("replayed {messages} messages into 'sensor-input'");

    // Average the item values over 2s windows sliding by 1s, sampling 20%
    // of the stream under the default (consumer-path) engine.
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(2, 1));
    let mut session = StreamApprox::with_budget(query, QueryBudget::SampleFraction(0.2))
        .expect("valid budget")
        .start();

    // The consumer loop: poll a few messages, push them, print whatever
    // windows the new watermark closed. In a real deployment this loop
    // never ends; here it ends when the replayed topic is drained.
    let mut consumer = Consumer::whole_topic(topic);
    println!("\nwindow                      mean ± bound        (watermark at poll time)");
    loop {
        let ingest = session
            .ingest_consumer(&mut consumer, 5)
            .expect("engine alive");
        assert_eq!(
            ingest.dropped_late, 0,
            "single-partition replay is time-ordered"
        );
        for window in session.poll_windows() {
            println!(
                "{:>22}  {:>10.2} ± {:>7.2}   (wm {})",
                window.window.to_string(),
                window.mean.value,
                window.mean.bound.margin(),
                session
                    .watermark()
                    .map_or_else(|| "-".into(), |wm| wm.to_string()),
            );
        }
        if ingest.ingested == 0 && consumer.is_caught_up() {
            break;
        }
    }

    // End of stream: flush the trailing windows and report run metrics.
    let status = session.status();
    let out = session.finish();
    for window in &out.windows {
        println!(
            "{:>22}  {:>10.2} ± {:>7.2}   (flushed at finish)",
            window.window.to_string(),
            window.mean.value,
            window.mean.bound.margin(),
        );
    }
    println!(
        "\npushed {} items, aggregated {} ({:.0}% of the stream), {} windows live + {} flushed",
        status.items_pushed,
        out.items_aggregated,
        out.effective_fraction() * 100.0,
        status.windows_completed,
        out.windows.len(),
    );
}
