//! The adaptive feedback loop (§4.2.1): give StreamApprox an *accuracy*
//! budget instead of a fraction and watch the controller resize the
//! per-stratum reservoirs until the reported error bound complies —
//! then keep tracking as the stream's arrival rates flip mid-run.
//!
//! Run with: `cargo run --release -p streamapprox --example adaptive_budget`

use sa_aggregator::merge_by_time;
use sa_batched::Cluster;
use sa_types::{Confidence, EventTime, WindowSpec};
use sa_workloads::Mix;
use streamapprox::{run_batched, AccuracyPolicy, BatchedConfig, BatchedSystem, Query};

fn main() {
    // First half: rates 8000:2000:100. Second half: flipped to 100:2000:8000
    // (the regime change of Figure 5a).
    let mix = Mix::gaussian([1.0, 1.0, 1.0]);
    let first = mix.generate_with_rates(&[8_000.0, 2_000.0, 100.0], 8_000, 3);
    let second: Vec<_> = mix
        .generate_with_rates(&[100.0, 2_000.0, 8_000.0], 8_000, 4)
        .into_iter()
        .map(|i| {
            sa_types::StreamItem::new(
                i.stratum,
                EventTime::from_millis(i.time.as_millis() + 8_000),
                i.value,
            )
        })
        .collect();
    let stream = merge_by_time(vec![first, second]);
    println!(
        "16s stream, {} items, arrival rates flip at t=8s",
        stream.len()
    );

    let query = Query::new(|v: &f64| *v)
        .with_window(WindowSpec::sliding_secs(2, 1))
        .with_confidence(Confidence::P95);
    let config = BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500);

    // Budget: keep the mean's relative error under 1% at 95% confidence.
    let mut policy = AccuracyPolicy::new(0.01, 16, 8, 1 << 16);
    let out = run_batched(
        &config,
        BatchedSystem::StreamApprox,
        &query,
        &mut policy,
        stream,
    );

    println!(
        "\naggregated {:.1}% of the stream to satisfy a 1% error budget",
        out.effective_fraction() * 100.0
    );
    println!("\nwindow start   sampled/arrived    mean ± bound          rel.err");
    for w in &out.windows {
        if w.mean.population_size == 0 {
            continue;
        }
        println!(
            "{:>9}s   {:>7}/{:<8}  {:>10.2} ± {:>8.2}   {:>6.3}%",
            w.window.start.as_secs_f64(),
            w.mean.sample_size,
            w.mean.population_size,
            w.mean.value,
            w.mean.bound.margin(),
            w.mean.relative_error() * 100.0,
        );
    }
    println!(
        "\nfinal per-stratum reservoir capacity chosen by the controller: {}",
        policy.capacity()
    );
}
