//! Going distributed: a TCP coordinator with three loopback workers.
//!
//! The paper's deployment shape (§4): workers sample their partitions of
//! the stream next to the data and ship only compact mergeable sampler
//! digests; one coordinator merges each pane's digests in canonical
//! worker order and finalizes windows with error bounds. Here the
//! "cluster" is three threads on loopback sockets, each replaying its
//! share of a merged stream from the `sa-aggregator` replay log — but
//! every byte between workers and coordinator crosses a real TCP
//! connection in the versioned `sa-net` frame format.
//!
//! Worker 0 joins with `wants_results`, so the finalized windows stream
//! back to it and come out of its own session `finish` — the paper's
//! "results available at the edge" pattern.
//!
//! Run with: `cargo run --release -p streamapprox --example distributed_windows`

use sa_aggregator::{Consumer, Partitioner, Producer, Topic};
use sa_types::WindowSpec;
use sa_workloads::Mix;
use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;
use streamapprox::{
    connect_worker, ApproxSession, DistributedConfig, FixedFraction, Query, StreamApprox,
};

const WORKERS: u32 = 3;

fn main() {
    // Three Gaussian sub-streams at very different rates over 12 s of
    // event time, merged into one replayable topic: the aggregator role
    // of §2.1. Round-robin batches keep every partition in event-time
    // order, so each consumer replays an ordered sub-stream.
    let items = Mix::gaussian([50_000.0, 12_000.0, 1_200.0]).generate(12_000, 42);
    let total = items.len();
    let topic = Topic::new("merged-events", WORKERS as usize);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    for batch in items.chunks(256) {
        producer.send(batch.to_vec());
    }
    println!("published {total} items over 3 strata to {WORKERS} partitions of 'merged-events'");

    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(2, 1));
    let mut policy = FixedFraction(0.25);
    let mut coordinator = StreamApprox::new(query, &mut policy)
        .distributed(
            DistributedConfig::new(WORKERS)
                .with_seed(0xD15C_u64.into())
                .with_expected_pane_items(total / 12)
                .with_timeout(Duration::from_secs(30)),
        )
        .expect("bind a loopback coordinator");
    let addr = coordinator.addr();
    println!("coordinator listening on {addr}, sampling 25%\n");

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let topic = topic.clone();
            thread::spawn(move || {
                let wants_results = w == 0;
                let engine = connect_worker(addr, w, wants_results, |v: &f64| *v)
                    .expect("worker joins the coordinator");
                let lag = engine.lag_handle();
                let mut consumer = Consumer::group(topic, w as usize, WORKERS as usize);
                let mut session = ApproxSession::from_engine(Box::new(engine));
                loop {
                    let batch = consumer.poll_items(64);
                    lag.store(consumer.lag(), Ordering::Relaxed);
                    if batch.is_empty() {
                        if consumer.is_caught_up() {
                            break;
                        }
                        continue;
                    }
                    session
                        .push_batch(batch)
                        .expect("partition replay stays event-time ordered");
                }
                // Sends the trailing pane and a clean shutdown; worker 0
                // then drains the windows the coordinator streams back.
                session.finish()
            })
        })
        .collect();

    // Watch answers arrive while the workers replay. Worker 0 stays
    // connected until the coordinator finishes, so only wait on the
    // others here.
    let mut live = Vec::new();
    while handles.iter().skip(1).any(|h| !h.is_finished()) {
        for w in coordinator.poll_windows().expect("healthy workers") {
            let (lo, hi) = w.mean.interval();
            println!(
                "  {}  mean {:7.1} in [{:7.1}, {:7.1}]  from {} of {} items",
                w.window, w.mean.value, lo, hi, w.sum.sample_size, w.sum.population_size
            );
            live.push(w);
        }
        thread::sleep(Duration::from_millis(2));
    }

    // The coordinator's health ledger: liveness (driven by the automatic
    // heartbeats), respawn counts, and the degraded-merge totals — all
    // zero-impact here, since every worker survives the run.
    let status = coordinator.status();
    println!("\nworker  ingested  lag  health   respawns  watermark");
    for w in &status.workers {
        println!(
            "{:>6}  {:>8}  {:>3}  {:<8} {:>8}  {:?}",
            w.worker, w.ingest.ingested, w.lag, w.health, w.respawns, w.watermark
        );
    }
    println!(
        "degraded panes: {}, lost items: {}",
        status.degraded_panes, status.lost_items
    );
    assert_eq!(status.degraded_panes, 0, "a healthy run never degrades");

    let out = coordinator.finish().expect("all workers shut down cleanly");
    let mut handles = handles.into_iter();
    let subscriber_out = handles.next().expect("worker 0").join().expect("worker 0");
    for h in handles {
        h.join().expect("worker thread");
    }

    let finished = live.len() + out.windows.len();
    println!(
        "\ncoordinator: {finished} windows from {} items ({:.0}% aggregated), {:.0} K items/s",
        out.items_ingested,
        100.0 * out.effective_fraction(),
        out.throughput() / 1_000.0,
    );
    println!(
        "worker 0 got all {} windows streamed back over its own socket",
        subscriber_out.windows.len()
    );

    assert_eq!(out.items_ingested, total as u64);
    assert!(
        out.items_aggregated < out.items_ingested,
        "sampling must select a strict subset"
    );
    assert_eq!(
        subscriber_out.windows.len(),
        finished,
        "the subscribing worker sees every finalized window"
    );
}
