//! Scaling out: the sharded data-parallel engine.
//!
//! Items are hash-partitioned across N worker threads, each running its
//! own full-capacity OASRS samplers; at every pane boundary the
//! shard-local samples are merged by the seen-count-weighted reservoir
//! union — the mergeable-sampler property that makes OASRS parallelize
//! without bias (§3.2). This example pushes one recorded stream through
//! 1, 2 and 4 shards and shows that throughput tracks the hardware while
//! the answers stay within each other's confidence bounds.
//!
//! Run with: `cargo run --release -p streamapprox --example sharded_throughput`

use sa_types::{StratumId, WindowSpec};
use sa_workloads::Mix;
use streamapprox::{FixedFraction, Query, ShardedConfig, StreamApprox};

fn main() {
    // Three Gaussian sub-streams at very different rates over 20 s of
    // event time; every stratum spreads across all shards, so the merge
    // layer is doing real work.
    let items = Mix::gaussian([60_000.0, 15_000.0, 1_500.0]).generate(20_000, 7);
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(2, 1));
    let first_pane = items
        .iter()
        .take_while(|i| i.time.as_millis() < query.window().slide_millis())
        .count();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "stream: {} items over 3 strata, sampling 20%, host has {cores} core(s)",
        items.len(),
    );
    println!("\nshards  throughput    windows  mean of [0s,2s)   shard loads");

    for shards in [1usize, 2, 4] {
        let mut policy = FixedFraction(0.2);
        let mut session = StreamApprox::new(query.clone(), &mut policy)
            .sharded(
                ShardedConfig::new(shards)
                    .with_seed(0xC0FFEE_u64)
                    .with_expected_pane_items(first_pane),
            )
            .start();
        session
            .push_batch(items.iter().copied())
            .expect("recorded stream is in order");
        let status = session.status();
        let out = session.finish();
        let first_window = out.windows.first().expect("stream spans several windows");
        let (lo, hi) = first_window.mean.interval();
        let loads: Vec<String> = status
            .shards
            .iter()
            .map(|s| format!("{}k", s.ingested / 1_000))
            .collect();
        println!(
            "{shards:>6}  {:>7.0} K/s  {:>7}  {:6.2} in [{:.2}, {:.2}]  {}",
            out.throughput() / 1_000.0,
            out.windows.len(),
            first_window.mean.value,
            lo,
            hi,
            loads.join(" "),
        );
        assert_eq!(out.items_ingested, items.len() as u64);
        assert!(
            out.items_aggregated < out.items_ingested,
            "sampling must select a strict subset"
        );
        // No stratum may be overlooked, however the shards split it.
        assert!(
            first_window.mean_by_stratum.len() == 3
                && first_window
                    .mean_by_stratum
                    .iter()
                    .any(|(s, _)| *s == StratumId(2)),
            "minority sub-stream lost in the shard merge"
        );
    }
    println!(
        "\n(ingest parallelism is bounded by the {cores} available core(s); \
         answers agree statistically at every N)"
    );
}
