//! Quickstart: approximate a windowed mean over a three-sub-stream input
//! with OASRS, and compare against the exact (native) answer.
//!
//! Run with: `cargo run --release -p streamapprox --example quickstart`

use sa_batched::Cluster;
use sa_estimate::accuracy_loss;
use sa_types::WindowSpec;
use sa_workloads::Mix;
use streamapprox::{run_batched, BatchedConfig, BatchedSystem, FixedFraction, Query};

fn main() {
    // The paper's Gaussian microbenchmark: three sub-streams with means
    // 10, 1,000 and 10,000, at arrival rates 8,000 / 2,000 / 100 items/s,
    // arriving as serialized records the way Kafka delivers them.
    let stream = Mix::gaussian([8_000.0, 2_000.0, 100.0]).generate_lines(10_000, 42);
    println!(
        "generated {} records across {} sub-streams (10 seconds of traffic)",
        stream.len(),
        3
    );

    // Deserialize each aggregated record and average its value over 2s
    // windows sliding by 1s. StreamApprox only deserializes the sample.
    let query = Query::new(|line: &String| Mix::parse_line(line))
        .with_window(WindowSpec::sliding_secs(2, 1));
    let config = BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500);

    // Ground truth: native execution without sampling.
    let exact = run_batched(
        &config,
        BatchedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        stream.clone(),
    );

    // StreamApprox at a 20% sampling fraction.
    let approx = run_batched(
        &config,
        BatchedSystem::StreamApprox,
        &query,
        &mut FixedFraction(0.2),
        stream,
    );

    println!(
        "\nnative   : {:>9.0} items/s, aggregated {} items",
        exact.throughput(),
        exact.items_aggregated
    );
    println!(
        "approx   : {:>9.0} items/s, aggregated {} items ({:.0}% of the stream)",
        approx.throughput(),
        approx.items_aggregated,
        approx.effective_fraction() * 100.0
    );

    println!("\nwindow                     approx mean ± bound        exact mean   loss");
    for (a, e) in approx.windows.iter().zip(&exact.windows) {
        if e.mean.population_size == 0 {
            continue;
        }
        println!(
            "{:>22}  {:>10.2} ± {:>7.2}   {:>12.2}   {:>5.2}%",
            a.window.to_string(),
            a.mean.value,
            a.mean.bound.margin(),
            e.mean.value,
            accuracy_loss(a.mean.value, e.mean.value) * 100.0,
        );
    }
}
