//! The paper's first case study (§6.2): real-time network traffic
//! monitoring — total TCP/UDP/ICMP traffic per sliding window — over a
//! synthetic NetFlow stream with the CAIDA trace's protocol proportions.
//!
//! Records arrive as serialized lines (as they would from Kafka);
//! StreamApprox parses only the sampled records, native parses all.
//!
//! Run with: `cargo run --release -p streamapprox --example network_monitoring`

use sa_batched::Cluster;
use sa_types::{StratumId, WindowSpec};
use sa_workloads::{FlowRecord, NetFlowGenerator, Protocol};
use streamapprox::{run_batched, BatchedConfig, BatchedSystem, FixedFraction, Query};

fn main() {
    // 20,000 flows/second for 12 seconds, shipped as NetFlow lines.
    let lines = NetFlowGenerator::new(20_000.0, 7).generate_lines(12_000);
    println!("replaying {} flow records", lines.len());

    // The §6.2 query: total bytes per protocol per 10s window sliding by 5s.
    let query =
        Query::new(|line: &String| FlowRecord::parse_line(line).expect("valid line").bytes as f64)
            .with_window(WindowSpec::sliding_secs(10, 5));
    let config = BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500);

    let native = run_batched(
        &config,
        BatchedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        lines.clone(),
    );
    let approx = run_batched(
        &config,
        BatchedSystem::StreamApprox,
        &query,
        &mut FixedFraction(0.6),
        lines,
    );

    println!(
        "\nnative: {:>9.0} items/s | streamapprox (60%): {:>9.0} items/s ({:.2}x)",
        native.throughput(),
        approx.throughput(),
        approx.throughput() / native.throughput()
    );

    println!("\nper-protocol traffic estimates (last complete window):");
    let (a, e) = match (approx.windows.last(), native.windows.last()) {
        (Some(a), Some(e)) => (a, e),
        _ => return,
    };
    println!(
        "{:<6} {:>16} {:>14} {:>16} {:>8}",
        "proto", "approx bytes", "± bound", "exact bytes", "loss"
    );
    for proto in Protocol::ALL {
        let stratum: StratumId = proto.stratum();
        let approx_sum = a.stratum_sum(stratum).expect("stratum present");
        let exact_sum = e.stratum_sum(stratum).expect("stratum present");
        println!(
            "{:<6} {:>16.0} {:>14.0} {:>16.0} {:>7.2}%",
            proto.to_string(),
            approx_sum.value,
            approx_sum.bound.margin(),
            exact_sum.value,
            sa_estimate::accuracy_loss(approx_sum.value, exact_sum.value) * 100.0,
        );
    }
    println!(
        "\nnote: ICMP is ~1.5% of flows — a simple random sampler would often\n\
         miss it at low fractions; the per-stratum reservoirs cannot."
    );
}
