//! Checkpoint & resume: survive a mid-stream crash with bounded-error
//! fault tolerance. A checkpointable session periodically seals its
//! mergeable sampler state — O(sampling budget), never O(stream) — to a
//! [`FileCheckpointStore`]; after a simulated kill, a fresh process
//! resumes from the latest snapshot, seeks the aggregator consumer back to
//! the recorded offsets, and finishes the run exactly where the snapshot
//! left off.
//!
//! Run with: `cargo run --release -p streamapprox --example checkpoint_resume`

use sa_aggregator::{merge_by_time, replay_into, Consumer, Partitioner, Producer, Topic};
use sa_types::{CheckpointPolicy, EventTime, WindowSpec};
use sa_workloads::Mix;
use streamapprox::{
    open_session_snapshot, CheckpointStore, FileCheckpointStore, FixedFraction, Query, StreamApprox,
};

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
}

fn main() {
    // The deployment shape: sub-streams merged into one time-ordered topic.
    let mix = Mix::gaussian([5_000.0, 1_000.0, 100.0]);
    let substreams: Vec<_> = mix
        .substreams()
        .iter()
        .map(|s| s.generate(EventTime::from_millis(0), 8_000, 11))
        .collect();
    let merged = merge_by_time(substreams);
    let total = merged.len() as u64;
    let topic = Topic::new("billing-input", 1);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    let messages = replay_into(merged, &mut producer, 200);
    println!("replayed {messages} messages ({total} items) into 'billing-input'");

    let dir = std::env::temp_dir().join(format!("sa-checkpoint-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut store = FileCheckpointStore::new(dir.join("session.snapshot"));

    // --- Process one: run under a checkpoint policy, then "crash". -------
    // every_panes(2) + a 2,000-item budget: at most one pane-close or
    // 2,000 accepted items are ever at risk.
    let mut policy = FixedFraction(0.3);
    let mut session = StreamApprox::new(query(), &mut policy)
        .checkpointable()
        .with_checkpoint_policy(CheckpointPolicy::every_panes(2).with_max_unsnapshotted(2_000))
        .start();
    let mut consumer = Consumer::whole_topic(topic.clone());
    let mut windows_before = 0usize;
    let mut checkpoints = 0usize;
    for poll in 0.. {
        let ingest = session
            .ingest_consumer(&mut consumer, 5)
            .expect("engine alive");
        windows_before += session.poll_windows().len();
        if session.checkpoint_due() {
            let bytes = session.checkpoint_to(&mut store).expect("seal and save");
            checkpoints += 1;
            let status = session.status();
            println!(
                "checkpoint {checkpoints}: pane {:?}, {bytes} B sealed, {} items pushed",
                status.last_checkpoint_pane, status.items_pushed
            );
        }
        // Kill the process mid-stream: whatever arrived after the last
        // checkpoint is the (bounded) at-risk suffix.
        if poll == 20 {
            println!(
                "\n-- crash: dropping the session after poll {poll} ({} windows delivered) --\n",
                windows_before
            );
            drop(session);
            break;
        }
        assert!(
            ingest.ingested > 0 || !consumer.is_caught_up(),
            "the stream outlives 21 polls of 5 messages"
        );
    }

    // --- Process two: load the snapshot and resume. ----------------------
    let sealed = store
        .load()
        .expect("readable")
        .expect("a checkpoint was saved");
    let snapshot = open_session_snapshot(&sealed).expect("versioned frame");
    println!(
        "resuming from pane {:?}: watermark {:?}, {} items already counted, {} replay offsets",
        snapshot.engine.pane,
        snapshot.watermark,
        snapshot.ingest.ingested,
        snapshot.replay.len(),
    );

    let mut policy = FixedFraction(0.3);
    let mut resumed = StreamApprox::new(query(), &mut policy)
        .checkpointable()
        .resume(&snapshot)
        .expect("matching builder restores");
    // A fresh consumer: the resumed session seeks it to the snapshot's
    // offsets on the first poll, so the counted prefix is never re-read.
    let mut consumer = Consumer::whole_topic(topic);
    loop {
        let ingest = resumed
            .ingest_consumer(&mut consumer, 5)
            .expect("engine alive");
        if ingest.ingested == 0 && consumer.is_caught_up() {
            break;
        }
    }
    let out = resumed.finish();
    println!(
        "\nresumed run finished: {} items ingested, {} aggregated, {} windows",
        out.items_ingested,
        out.items_aggregated,
        out.windows.len()
    );
    for window in out.windows.iter().take(4) {
        println!(
            "{:>22}  {:>10.2} ± {:>7.2}",
            window.window.to_string(),
            window.mean.value,
            window.mean.bound.margin(),
        );
    }

    // The whole log was accounted for exactly once across the crash.
    assert_eq!(out.items_ingested, total);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("\nevery item counted exactly once across the kill/restore");
}
