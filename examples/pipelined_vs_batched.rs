//! Side-by-side run of the two stream-processing models the paper targets
//! (§2.2): batched (Spark-Streaming-style) vs pipelined (Flink-style)
//! StreamApprox on the same stream and query, comparing throughput and
//! per-window answers.
//!
//! Run with: `cargo run --release -p streamapprox --example pipelined_vs_batched`

use sa_batched::Cluster;
use sa_estimate::accuracy_loss;
use sa_types::WindowSpec;
use sa_workloads::Mix;
use streamapprox::{
    run_batched, run_pipelined, BatchedConfig, BatchedSystem, FixedFraction, PipelinedConfig,
    PipelinedSystem, Query,
};

fn main() {
    let stream = Mix::gaussian([10_000.0, 2_500.0, 120.0]).generate_lines(10_000, 11);
    println!("{} records over 10 seconds of event time", stream.len());

    let query = Query::new(|line: &String| Mix::parse_line(line))
        .with_window(WindowSpec::sliding_secs(2, 1));
    let fraction = 0.4;

    let batched = run_batched(
        &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
        BatchedSystem::StreamApprox,
        &query,
        &mut FixedFraction(fraction),
        stream.clone(),
    );
    let pipelined = run_pipelined(
        &PipelinedConfig::new().with_sample_workers(2),
        PipelinedSystem::StreamApprox,
        &query,
        &mut FixedFraction(fraction),
        stream,
    );

    println!("\nboth at a {:.0}% sampling fraction:", fraction * 100.0);
    println!(
        "  batched   (spark-style): {:>9.0} items/s, {} windows",
        batched.throughput(),
        batched.windows.len()
    );
    println!(
        "  pipelined (flink-style): {:>9.0} items/s, {} windows",
        pipelined.throughput(),
        pipelined.windows.len()
    );
    println!(
        "  pipelined/batched throughput ratio: {:.2}x",
        pipelined.throughput() / batched.throughput()
    );

    println!("\nper-window means (the two models must agree statistically):");
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "window start", "batched", "pipelined", "divergence"
    );
    for (b, p) in batched.windows.iter().zip(&pipelined.windows) {
        if b.mean.population_size == 0 {
            continue;
        }
        println!(
            "{:>11}s {:>14.2} {:>14.2} {:>11.2}%",
            b.window.start.as_secs_f64(),
            b.mean.value,
            p.mean.value,
            accuracy_loss(p.mean.value, b.mean.value) * 100.0,
        );
    }
    println!(
        "\nthe pipelined model skips batch formation entirely — items stream\n\
         through the sampling operator as they arrive, which is where the\n\
         paper's Flink-based variant gets its edge on multi-core hardware.\n\
         (on few-core machines the pipelined engine's thread-per-operator\n\
         design is oversubscribed and the batched engine can win; the two\n\
         must still agree on every answer.)"
    );
}
