//! A bounded single-producer single-consumer ring buffer in the style of
//! crossbeam's `ArrayQueue`, specialized to one producer and one consumer
//! so the hot path is wait-free: a fixed slot array indexed by
//! free-running positions, one cache-line-padded atomic per side, and no
//! locks or allocation per message.
//!
//! # Design
//!
//! * **Slots** — `capacity.next_power_of_two()` uninitialized cells; a
//!   position maps to `pos & mask`. The *logical* capacity is exactly the
//!   requested one: the ring reports full at `tail - head == capacity`,
//!   so a capacity-3 ring holds 3 items even though 4 slots back it.
//! * **Positions** — `head` (next pop) and `tail` (next push) are
//!   monotonically increasing `u64`s, each written by exactly one side.
//!   The producer publishes a slot with a release store of `tail`; the
//!   consumer retires it with a release store of `head`. 64-bit positions
//!   make wraparound of the counter itself a non-issue (2^64 messages).
//! * **Waiting** — `push`/`pop` spin briefly, yield, then park on a
//!   `Mutex`/`Condvar` pair. Parking uses the Dekker-style protocol:
//!   the sleeper raises its `*_parked` flag, re-checks the ring state
//!   with a `SeqCst` fence between the two, and only then waits; the
//!   waker publishes its position update, fences, and reads the flag —
//!   so either the waker sees the flag (and notifies under the lock) or
//!   the sleeper's re-check sees the update (and never waits).
//! * **Disconnect** — dropping either handle marks its side dead and
//!   wakes the peer. A dead producer still lets the consumer drain what
//!   was pushed; a dead consumer fails pushes immediately.
//!
//! # Safety
//!
//! The two `unsafe` slot accesses rely on the SPSC invariants: only the
//! (unique, `&mut`-only, non-`Clone`) producer writes `tail`, only the
//! consumer writes `head`, and `head <= tail <= head + capacity` with
//! `capacity <= slots.len()`. A slot at position `p` is written at most
//! once per lap — after the producer observes `p - head < capacity`
//! (acquire on `head`, so the consumer's read of lap `p - slots.len()`
//! happened-before) — and read at most once, after the consumer observes
//! `p < tail` (acquire on `tail`, so the write happened-before).

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Pads and aligns a value to 128 bytes (two x86 prefetch-paired lines)
/// so `head` and `tail` never share a cache line.
#[repr(align(128))]
struct CachePadded<T>(T);

/// Spins this many times re-checking the ring before yielding.
const SPIN_LIMIT: u32 = 128;
/// Yields this many times before parking on the condvar.
const YIELD_LIMIT: u32 = 16;

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
    capacity: u64,
    /// Next position the consumer will pop; written only by the consumer.
    head: CachePadded<AtomicU64>,
    /// Next position the producer will push; written only by the producer.
    tail: CachePadded<AtomicU64>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    /// The consumer is (about to be) parked waiting for data.
    consumer_parked: AtomicBool,
    /// The producer is (about to be) parked waiting for space.
    producer_parked: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

// The ring is shared by exactly two threads; all slot aliasing is
// governed by the head/tail protocol documented on the module.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// Wakes the peer if it is parked. Callers publish their position
    /// update *before* this; the `SeqCst` fence pairs with the sleeper's
    /// fence so a missed flag implies the sleeper saw the update.
    #[inline]
    fn wake_peer(&self, flag: &AtomicBool) {
        fence(Ordering::SeqCst);
        if flag.load(Ordering::Relaxed) {
            // Taking the lock serializes with the sleeper between its
            // re-check and its wait, so the notification cannot be lost.
            drop(self.lock.lock().expect("spsc lock"));
            self.cond.notify_all();
        }
    }

    /// Parks the calling side until `ready()` holds. `flag` is this
    /// side's parked marker; `ready` must read ring state with loads that
    /// a `SeqCst` fence orders (it is re-run after the fence and under
    /// the lock).
    fn park_until(&self, flag: &AtomicBool, ready: impl Fn() -> bool) {
        for spin in 0..SPIN_LIMIT + YIELD_LIMIT {
            if ready() {
                return;
            }
            if spin < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        flag.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        if ready() {
            flag.store(false, Ordering::Relaxed);
            return;
        }
        let mut guard = self.lock.lock().expect("spsc lock");
        while !ready() {
            guard = self.cond.wait(guard).expect("spsc lock");
        }
        drop(guard);
        flag.store(false, Ordering::Relaxed);
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both handles are gone; drop whatever is still in flight.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for pos in head..tail {
            let slot = &mut self.slots[(pos & self.mask) as usize];
            unsafe { slot.get_mut().assume_init_drop() };
        }
    }
}

/// Why a push did not enqueue; the rejected value is returned.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity (the consumer is alive but behind).
    Full(T),
    /// The consumer has been dropped; no push can ever succeed again.
    Disconnected(T),
}

/// Why a pop returned no value.
#[derive(Debug, PartialEq, Eq)]
pub enum PopError {
    /// The ring is currently empty but the producer is alive.
    Empty,
    /// The ring is empty and the producer has been dropped.
    Disconnected,
}

/// The producing half of a bounded SPSC ring; not cloneable, all
/// operations take `&mut self`, so the single-producer invariant is
/// enforced by the type system.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

/// The consuming half of a bounded SPSC ring.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

/// Creates a bounded SPSC ring holding at most `capacity` in-flight
/// values.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "spsc ring capacity must be positive");
    let slots = capacity.next_power_of_two();
    let ring = Arc::new(Ring {
        slots: (0..slots)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        mask: (slots - 1) as u64,
        capacity: capacity as u64,
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        consumer_parked: AtomicBool::new(false),
        producer_parked: AtomicBool::new(false),
        lock: Mutex::new(()),
        cond: Condvar::new(),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

impl<T> Producer<T> {
    /// Enqueues `value` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the ring is at capacity,
    /// [`PushError::Disconnected`] once the consumer is gone.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        let ring = &*self.ring;
        if !ring.consumer_alive.load(Ordering::SeqCst) {
            return Err(PushError::Disconnected(value));
        }
        let tail = ring.tail.0.load(Ordering::Relaxed);
        let head = ring.head.0.load(Ordering::Acquire);
        if tail - head >= ring.capacity {
            return Err(PushError::Full(value));
        }
        let slot = &ring.slots[(tail & ring.mask) as usize];
        unsafe { (*slot.get()).write(value) };
        ring.tail.0.store(tail + 1, Ordering::Release);
        ring.wake_peer(&ring.consumer_parked);
        Ok(())
    }

    /// Enqueues `value`, spinning then parking while the ring is full.
    ///
    /// # Errors
    ///
    /// Returns the value once the consumer is gone.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let mut value = value;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Disconnected(v)) => return Err(v),
                Err(PushError::Full(v)) => value = v,
            }
            let ring = Arc::clone(&self.ring);
            ring.park_until(&ring.producer_parked, || {
                let tail = ring.tail.0.load(Ordering::Relaxed);
                let head = ring.head.0.load(Ordering::SeqCst);
                tail - head < ring.capacity || !ring.consumer_alive.load(Ordering::SeqCst)
            });
        }
    }

    /// Copies as many values from `values` as fit, in order, with one
    /// position publication for the whole batch. Returns how many were
    /// enqueued — `0` when the ring is full *or* the consumer is gone
    /// (use [`try_push`](Producer::try_push) to distinguish).
    pub fn push_slice(&mut self, values: &[T]) -> usize
    where
        T: Copy,
    {
        let ring = &*self.ring;
        if !ring.consumer_alive.load(Ordering::SeqCst) {
            return 0;
        }
        let tail = ring.tail.0.load(Ordering::Relaxed);
        let head = ring.head.0.load(Ordering::Acquire);
        let free = ring.capacity - (tail - head);
        let n = values.len().min(free as usize);
        for (i, value) in values[..n].iter().enumerate() {
            let slot = &ring.slots[((tail + i as u64) & ring.mask) as usize];
            unsafe { (*slot.get()).write(*value) };
        }
        if n > 0 {
            ring.tail.0.store(tail + n as u64, Ordering::Release);
            ring.wake_peer(&ring.consumer_parked);
        }
        n
    }

    /// How many values are currently in flight (a racy snapshot).
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        (ring.tail.0.load(Ordering::Relaxed) - ring.head.0.load(Ordering::Acquire)) as usize
    }

    /// Whether the ring is currently empty (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's logical capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity as usize
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.producer_alive.store(false, Ordering::SeqCst);
        self.ring.wake_peer(&self.ring.consumer_parked);
    }
}

impl<T> Consumer<T> {
    /// Dequeues the next value without blocking.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] when nothing is queued but the producer is
    /// alive, [`PopError::Disconnected`] once the ring is drained and the
    /// producer is gone.
    pub fn try_pop(&mut self) -> Result<T, PopError> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        let mut tail = ring.tail.0.load(Ordering::Acquire);
        if head == tail {
            if ring.producer_alive.load(Ordering::SeqCst) {
                return Err(PopError::Empty);
            }
            // The producer's final pushes happen-before its death flag;
            // re-read the tail so a push racing the drop is not lost.
            tail = ring.tail.0.load(Ordering::Acquire);
            if head == tail {
                return Err(PopError::Disconnected);
            }
        }
        let slot = &ring.slots[(head & ring.mask) as usize];
        let value = unsafe { (*slot.get()).assume_init_read() };
        ring.head.0.store(head + 1, Ordering::Release);
        ring.wake_peer(&ring.producer_parked);
        Ok(value)
    }

    /// Dequeues the next value, spinning then parking while the ring is
    /// empty.
    ///
    /// # Errors
    ///
    /// Errors once the ring is drained and the producer is gone.
    pub fn pop(&mut self) -> Result<T, PopError> {
        loop {
            match self.try_pop() {
                Ok(value) => return Ok(value),
                Err(PopError::Disconnected) => return Err(PopError::Disconnected),
                Err(PopError::Empty) => {}
            }
            let ring = Arc::clone(&self.ring);
            ring.park_until(&ring.consumer_parked, || {
                ring.head.0.load(Ordering::Relaxed) != ring.tail.0.load(Ordering::SeqCst)
                    || !ring.producer_alive.load(Ordering::SeqCst)
            });
        }
    }

    /// Dequeues up to `out.len()` values into the front of `out`, in
    /// order, with one position publication for the whole batch. Returns
    /// how many were written — `0` when the ring is empty (use
    /// [`try_pop`](Consumer::try_pop) to distinguish empty from
    /// disconnected).
    pub fn pop_slice(&mut self, out: &mut [T]) -> usize
    where
        T: Copy,
    {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        let tail = ring.tail.0.load(Ordering::Acquire);
        let n = out.len().min((tail - head) as usize);
        for (i, out_slot) in out[..n].iter_mut().enumerate() {
            let slot = &ring.slots[((head + i as u64) & ring.mask) as usize];
            *out_slot = unsafe { (*slot.get()).assume_init_read() };
        }
        if n > 0 {
            ring.head.0.store(head + n as u64, Ordering::Release);
            ring.wake_peer(&ring.producer_parked);
        }
        n
    }

    /// How many values are currently in flight (a racy snapshot).
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        (ring.tail.0.load(Ordering::Acquire) - ring.head.0.load(Ordering::Relaxed)) as usize
    }

    /// Whether the ring is currently empty (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's logical capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity as usize
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.ring.consumer_alive.store(false, Ordering::SeqCst);
        self.ring.wake_peer(&self.ring.producer_parked);
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("spsc::Producer { .. }")
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("spsc::Consumer { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_with_wraparound() {
        // Capacity 3 over 4 physical slots: positions lap the slot array
        // hundreds of times and order must survive every lap.
        let (mut tx, mut rx) = ring::<u32>(3);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        while next_out < 1_000 {
            while next_in < 1_000 && tx.try_push(next_in).is_ok() {
                next_in += 1;
            }
            let got = rx.try_pop().expect("pushed ahead of pops");
            assert_eq!(got, next_out);
            next_out += 1;
        }
    }

    #[test]
    fn full_and_empty_are_exact() {
        let (mut tx, mut rx) = ring::<u8>(3);
        assert_eq!(rx.try_pop(), Err(PopError::Empty));
        for i in 0..3 {
            tx.try_push(i).expect("under capacity");
        }
        // Logical capacity is exactly 3 even though 4 slots back it.
        assert_eq!(tx.try_push(9), Err(PushError::Full(9)));
        assert_eq!(tx.len(), 3);
        assert_eq!(rx.try_pop(), Ok(0));
        tx.try_push(9).expect("space freed");
        assert_eq!(tx.try_push(10), Err(PushError::Full(10)));
    }

    #[test]
    fn pop_drains_then_disconnects_after_producer_drop() {
        let (mut tx, mut rx) = ring::<u8>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Ok(1));
        assert_eq!(rx.try_pop(), Ok(2));
        assert_eq!(rx.try_pop(), Err(PopError::Disconnected));
        assert_eq!(rx.pop(), Err(PopError::Disconnected));
    }

    #[test]
    fn push_fails_after_consumer_drop() {
        let (mut tx, rx) = ring::<u8>(4);
        drop(rx);
        assert_eq!(tx.try_push(7), Err(PushError::Disconnected(7)));
        assert_eq!(tx.push(8), Err(8));
    }

    #[test]
    fn slice_ops_batch_and_respect_capacity() {
        let (mut tx, mut rx) = ring::<u64>(6);
        assert_eq!(tx.push_slice(&[0, 1, 2, 3]), 4);
        // Only 2 of 5 fit; the accepted prefix is in order.
        assert_eq!(tx.push_slice(&[4, 5, 6, 7, 8]), 2);
        assert_eq!(tx.push_slice(&[9]), 0);
        let mut out = [0u64; 4];
        assert_eq!(rx.pop_slice(&mut out), 4);
        assert_eq!(out, [0, 1, 2, 3]);
        // Wrapped batch: positions 4..8 cross the 8-slot boundary later;
        // here just confirm the tail batch drains in order.
        assert_eq!(tx.push_slice(&[6, 7, 8, 9]), 4);
        let mut rest = [0u64; 8];
        assert_eq!(rx.pop_slice(&mut rest), 6);
        assert_eq!(&rest[..6], &[4, 5, 6, 7, 8, 9]);
        assert_eq!(rx.pop_slice(&mut rest), 0);
    }

    #[test]
    fn slice_ops_wrap_across_the_slot_boundary() {
        let (mut tx, mut rx) = ring::<u32>(4);
        // Advance positions so the next batch wraps the 4-slot array.
        for lap in 0..7u32 {
            assert_eq!(tx.push_slice(&[lap * 3, lap * 3 + 1, lap * 3 + 2]), 3);
            let mut out = [0u32; 3];
            assert_eq!(rx.pop_slice(&mut out), 3);
            assert_eq!(out, [lap * 3, lap * 3 + 1, lap * 3 + 2]);
        }
    }

    #[test]
    fn two_thread_stress_preserves_order_and_sum() {
        // Tiny capacity forces constant wraparound, backpressure and both
        // park paths; blocking push/pop must deliver every value once, in
        // order.
        const N: u64 = 100_000;
        let (mut tx, mut rx) = ring::<u64>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push(i).expect("consumer lives");
            }
        });
        let mut sum = 0u64;
        let mut expect = 0u64;
        while let Ok(v) = rx.pop() {
            assert_eq!(v, expect, "reordered or duplicated value");
            expect += 1;
            sum += v;
        }
        producer.join().expect("producer thread");
        assert_eq!(expect, N, "lost values");
        assert_eq!(sum, N * (N - 1) / 2);
    }

    #[test]
    fn two_thread_stress_with_batched_sides() {
        // Producer pushes slices, consumer pops slices; totals must agree
        // and order must hold across ragged batch boundaries.
        const N: u64 = 50_000;
        let (mut tx, mut rx) = ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            let values: Vec<u64> = (0..N).collect();
            let mut sent = 0usize;
            while sent < values.len() {
                let n = tx.push_slice(&values[sent..(sent + 5).min(values.len())]);
                sent += n;
                if n == 0 {
                    std::thread::yield_now();
                }
            }
        });
        let mut out = [0u64; 7];
        let mut expect = 0u64;
        while expect < N {
            let n = rx.pop_slice(&mut out);
            for &v in &out[..n] {
                assert_eq!(v, expect);
                expect += 1;
            }
            if n == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().expect("producer thread");
    }

    #[test]
    fn in_flight_values_drop_with_the_ring() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = ring::<Counted>(8);
        for _ in 0..5 {
            tx.try_push(Counted).unwrap();
        }
        drop(rx.try_pop().unwrap());
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        drop(tx);
        drop(rx);
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            5,
            "ring leaked in-flight values"
        );
    }
}
