//! Offline stand-in for `crossbeam`: MPMC channels, a `WaitGroup`, and a
//! bounded lock-free SPSC ring.
//!
//! Semantics match the real crate where this workspace relies on them:
//! senders and receivers are cloneable, `recv` on a channel whose senders
//! are all gone drains the queue and then errors, `send` into a channel
//! whose receivers are all gone errors, and bounded `send` blocks while
//! the queue is full. The [`spsc`] module is the `ArrayQueue` idea
//! specialized to one producer and one consumer — the only module that
//! needs `unsafe`, and the only one meant for per-item hot paths.

#![deny(unsafe_code)]

pub mod spsc;

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    /// The sending half of a channel; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel; clone freely (clones share the
    /// queue, each message is delivered once).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Sending failed because every receiver is gone; returns the message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Receiving failed because the channel is empty and every sender is
    /// gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a [`Receiver::try_recv`] returned no message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel with no capacity limit.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `capacity` in-flight messages;
    /// `send` blocks while full. Unlike real crossbeam the shim has no
    /// zero-capacity rendezvous mode — capacity 0 is treated as 1.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = self
                    .shared
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).expect("channel lock");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Errors once the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Dequeues the next message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is queued but senders
        /// remain; [`TryRecvError::Disconnected`] once the channel is empty
        /// and every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_one_producer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_drains_then_errors_after_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = vec![a, b];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(5).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_blocks_until_consumed() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let producer = std::thread::spawn(move || tx.send(3).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            producer.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }
    }
}

pub mod sync {
    //! Thread synchronization primitives.

    use std::sync::{Arc, Condvar, Mutex};

    struct Inner {
        count: Mutex<usize>,
        all_done: Condvar,
    }

    /// Waits for a set of tasks to finish: every clone represents one
    /// outstanding task; dropping a clone retires it and [`WaitGroup::wait`]
    /// blocks until all are retired.
    pub struct WaitGroup {
        inner: Arc<Inner>,
    }

    impl WaitGroup {
        /// A group with one outstanding reference (the caller's).
        pub fn new() -> Self {
            WaitGroup {
                inner: Arc::new(Inner {
                    count: Mutex::new(1),
                    all_done: Condvar::new(),
                }),
            }
        }

        /// Drops this reference and blocks until every other clone is
        /// dropped too.
        pub fn wait(self) {
            let inner = Arc::clone(&self.inner);
            drop(self);
            let mut count = inner.count.lock().expect("waitgroup lock");
            while *count > 0 {
                count = inner.all_done.wait(count).expect("waitgroup lock");
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self.inner.count.lock().expect("waitgroup lock") += 1;
            WaitGroup {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self.inner.count.lock().expect("waitgroup lock");
            *count -= 1;
            if *count == 0 {
                self.inner.all_done.notify_all();
            }
        }
    }

    impl std::fmt::Debug for WaitGroup {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("WaitGroup { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        #[test]
        fn wait_blocks_until_all_clones_drop() {
            let wg = WaitGroup::new();
            let done = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let wg = wg.clone();
                    let done = Arc::clone(&done);
                    std::thread::spawn(move || {
                        done.fetch_add(1, Ordering::SeqCst);
                        drop(wg);
                    })
                })
                .collect();
            wg.wait();
            assert_eq!(done.load(Ordering::SeqCst), 4);
            for h in handles {
                h.join().unwrap();
            }
        }

        #[test]
        fn wait_returns_immediately_with_no_clones() {
            WaitGroup::new().wait();
        }
    }
}
