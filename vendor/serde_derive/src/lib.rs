//! Empty-expansion `#[derive(Serialize, Deserialize)]` stand-ins.
//!
//! Nothing in this workspace consumes the serde trait impls, so the
//! derives expand to nothing; `#[serde(...)]` attributes are accepted and
//! ignored.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
