//! Offline stand-in for `proptest`: deterministic randomized property
//! testing with the subset of the real API this workspace uses.
//!
//! Supported: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range strategies over the primitive
//! numeric types, tuple strategies, [`any`], [`collection::vec`], and the
//! `prop_assert*` macros. Unsupported (by design, to stay dependency-free
//! and small): shrinking of failing cases, `prop_map`-style combinators,
//! and persistence of failure seeds — a failing case prints its inputs via
//! the assertion message instead.

#![forbid(unsafe_code)]

// Let the crate's own tests use the same `proptest::...` paths downstream
// crates write.
extern crate self as proptest;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// How a property test runs; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values for one property-test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start == end {
                    return start;
                }
                // Exclusive draw plus the end value with its own share:
                // simple and adequate for a test-input generator.
                let v = rng.gen_range(start..end);
                if rng.gen_bool(1.0 / 64.0) {
                    end
                } else {
                    v
                }
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a full-range random generator, for [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained random value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

/// Strategy over a type's whole value range; see [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Seeds the per-test RNG: deterministic in the test name and case index,
/// overridable via `PROPTEST_SEED` for exploration.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00_5EED);
    let mut hash = base ^ 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(hash.wrapping_add(u64::from(case)))
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body over random cases. An optional
/// leading `#![proptest_config(...)]` sets the case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                $body
            }
        }
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a property: fails the whole test case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated values respect their range strategies.
        #[test]
        fn ranges_are_respected(a in 1i64..500, b in 0.25f64..0.75, c in 0usize..4) {
            prop_assert!((1..500).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!(c < 4);
        }

        /// Tuple and vec strategies compose.
        #[test]
        fn collections_compose(
            pairs in proptest::collection::vec((0u32..6, any::<u64>()), 0..10),
        ) {
            prop_assert!(pairs.len() < 10);
            for (k, _v) in &pairs {
                prop_assert!(*k < 6);
            }
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let a: Vec<u64> = (0..4)
            .map(|c| super::any::<u64>().generate(&mut super::case_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| super::any::<u64>().generate(&mut super::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
