//! Offline stand-in for `criterion`: the macro/group/bencher API over a
//! simple median-of-samples timer.
//!
//! Each `bench_function` runs its routine `sample_size` times (after one
//! warm-up), reports the median wall-clock time, and — when the group set
//! a [`Throughput`] — the derived element rate. There is no statistical
//! analysis, outlier detection, or HTML report; the value of the shim is
//! that every bench target compiles and produces comparable numbers
//! offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many items per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The shim times setup and
/// routine together but excludes setup via per-iteration measurement, so
/// the variants are equivalent; they exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup in real criterion.
    SmallInput,
    /// Large inputs: one setup per iteration in real criterion.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_bench(&name.into(), sample_size, None, f);
    }
}

/// A group of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benches one function under this group's settings.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, name.into());
        run_bench(&id, self.sample_size, self.throughput, f);
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_bench(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size + 1),
        target_samples: sample_size + 1,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    // Drop the warm-up sample when there is more than one.
    if samples.len() > 1 {
        samples.remove(0);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let line = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let rate = n as f64 / median.as_secs_f64();
            format!(
                "{id:<50} time: {median:>12.2?}   thrpt: {:>10.3} Melem/s",
                rate / 1e6
            )
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let rate = n as f64 / median.as_secs_f64();
            format!(
                "{id:<50} time: {median:>12.2?}   thrpt: {:>10.3} MiB/s",
                rate / (1024.0 * 1024.0)
            )
        }
        _ => format!("{id:<50} time: {median:>12.2?}"),
    };
    println!("{line}");
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group of bench functions, optionally with a configured
/// [`Criterion`]. Mirrors real criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Expands to `fn main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // warm-up + samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default().sample_size(2);
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 3);
    }
}
