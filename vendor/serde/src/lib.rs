//! Offline stand-in for `serde`: the `Serialize`/`Deserialize` traits as
//! inert markers plus no-op derive macros.
//!
//! The workspace derives these traits on its data types so downstream
//! users of the real `serde` can persist them, but performs no
//! serialization itself — so the shim's empty expansion is sufficient for
//! every build and test in this repository.

#![forbid(unsafe_code)]

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
