//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! Implements exactly the API this workspace uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::SmallRng`]. `SmallRng` is a genuine xoshiro256++ generator with
//! SplitMix64 seed expansion — the same construction real `rand` uses for
//! its 64-bit `SmallRng` — so the statistical quality of sampling
//! decisions matches the real crate.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (top bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range (the
/// `Standard` distribution of real `rand`; floats sample `[0, 1)`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Unit-interval `f64` from the top 53 bits of one `u64`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unit-interval `f32` from the top 24 bits of one draw.
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `u64` in `[0, span)` by Lemire's multiply-shift rejection —
/// unbiased for every span.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        let low = m as u64;
        if low >= span || low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// A uniform `[0, span)` sampler with Lemire's rejection threshold
/// (`2^64 mod span`) computed once at construction, for call sites that
/// draw many values below the same bound — the per-draw cost drops to one
/// widening multiply and one compare, with no division or range checks.
///
/// Consumes exactly the same `u64` stream as
/// [`Rng::gen_range`]`(0..span)`: `low >= threshold` accepts precisely
/// the draws `low >= span || low >= 2^64 mod span` does (the threshold is
/// below `span`), so prepared and ad-hoc draws are bit-for-bit
/// interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedUniform {
    span: u64,
    threshold: u64,
}

impl PreparedUniform {
    /// Prepares a sampler for `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    #[inline]
    pub fn new(span: u64) -> Self {
        assert!(span > 0, "cannot sample an empty range");
        PreparedUniform {
            span,
            threshold: span.wrapping_neg() % span,
        }
    }

    /// Draws one value uniformly from `[0, span)`.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        loop {
            let m = u128::from(rng.next_u64()) * u128::from(self.span);
            if m as u64 >= self.threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
range_sint!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f32(rng)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution (full integer
    /// range; `[0, 1)` for floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! The concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ seeded via
    /// SplitMix64, matching real `rand`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The generator's full internal state, for serialization: a
        /// generator rebuilt from this state via
        /// [`from_state`](SmallRng::from_state) continues the exact same
        /// random stream.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state.
        ///
        /// # Panics
        ///
        /// Panics if the state is all zeros — the one state xoshiro256++
        /// can never leave (and can never legitimately reach from
        /// `seed_from_u64`). Deserializers must validate before calling.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "all-zero xoshiro256++ state is invalid");
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_a_seed() {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = SmallRng::seed_from_u64(1);
            let mut b = SmallRng::seed_from_u64(2);
            assert_ne!(
                (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn unit_floats_stay_in_range_and_cover_it() {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut sum = 0.0;
            for _ in 0..10_000 {
                let x: f64 = rng.gen();
                assert!((0.0..1.0).contains(&x));
                sum += x;
            }
            let mean = sum / 10_000.0;
            assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        }

        #[test]
        fn gen_range_is_roughly_uniform() {
            let mut rng = SmallRng::seed_from_u64(9);
            let mut counts = [0usize; 10];
            for _ in 0..100_000 {
                counts[rng.gen_range(0usize..10)] += 1;
            }
            for c in counts {
                assert!((8_000..12_000).contains(&c), "bucket count {c}");
            }
        }

        #[test]
        fn signed_ranges_hit_bounds() {
            let mut rng = SmallRng::seed_from_u64(11);
            for _ in 0..1_000 {
                let v = rng.gen_range(-5i64..5);
                assert!((-5..5).contains(&v));
            }
        }

        #[test]
        fn prepared_uniform_is_bit_identical_to_gen_range() {
            // Spans chosen to cover tiny, power-of-two, odd, and
            // rejection-heavy (just above a power of two) cases.
            for span in [1u64, 2, 3, 10, 1 << 20, (1 << 62) + 3, u64::MAX] {
                let prepared = crate::PreparedUniform::new(span);
                let mut a = SmallRng::seed_from_u64(span ^ 0xABCD);
                let mut b = a.clone();
                for _ in 0..2_000 {
                    assert_eq!(prepared.sample(&mut a), b.gen_range(0..span), "span {span}");
                }
                // Both walked the identical u64 stream.
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }
}
