//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with
//! parking_lot's panic-free locking API, layered over the std primitives.
//!
//! Like the real crate, `lock`/`read`/`write` return guards directly
//! (no `Result`); a poisoned std lock is recovered rather than propagated,
//! matching parking_lot's no-poisoning behaviour.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Accesses the value through exclusive ownership — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Accesses the value through exclusive ownership — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(10);
        *m.get_mut() += 5;
        assert_eq!(*m.lock(), 15);
    }
}
