//! Bounded-error checkpoint & resume acceptance: snapshot → seal → open →
//! restore round-trips on every snapshotable engine, kill/restore against
//! an uninterrupted oracle (bit-identical at pane boundaries, within
//! confidence bounds when the unsnapshotted suffix is lost), replay from
//! the aggregator log's recorded offsets, and the AF-Stream size property
//! — snapshots are O(sampling budget), not O(stream).

use proptest::prelude::*;
use sa_aggregator::{replay_into, Consumer, Partitioner, Producer, Topic};
use sa_batched::Cluster;
use sa_types::{
    CheckpointPolicy, EventTime, SaError, SessionSnapshot, StratumId, StreamItem, WindowSpec,
};
use sa_workloads::Mix;
use streamapprox::{
    open_session_snapshot, seal_session_snapshot, AggregatedConfig, BatchedConfig, BatchedSystem,
    CheckpointStore, FileCheckpointStore, FixedFraction, Query, ShardedConfig, StreamApprox,
    WindowResult,
};

fn items(seed: u64) -> Vec<StreamItem<f64>> {
    Mix::gaussian([3_000.0, 800.0, 80.0]).generate(5_000, seed)
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
}

/// The three in-process engines that implement `snapshot`/`restore`.
#[derive(Clone, Copy, Debug)]
enum EngineKind {
    Batched,
    Aggregated,
    Sharded,
}

const ENGINES: [EngineKind; 3] = [
    EngineKind::Batched,
    EngineKind::Aggregated,
    EngineKind::Sharded,
];

/// A checkpointable builder for `kind`, configured identically every call —
/// the resume contract requires the restoring builder to match the one
/// that took the snapshot.
fn checkpointable(kind: EngineKind, policy: &mut FixedFraction) -> StreamApprox<'_, f64> {
    let builder = StreamApprox::new(query(), policy).checkpointable();
    match kind {
        EngineKind::Batched => builder.batched(
            BatchedConfig::new(Cluster::new(2))
                .with_batch_interval_ms(500)
                .with_seed(0xC0DE_u64)
                .with_system(BatchedSystem::StreamApprox),
        ),
        EngineKind::Aggregated => builder.aggregated(AggregatedConfig::new().with_seed(0xC0DE_u64)),
        EngineKind::Sharded => builder.sharded(
            ShardedConfig::new(2)
                .with_pane_interval_ms(500)
                .with_seed(0xC0DE_u64),
        ),
    }
}

/// Bitwise window equality: estimator values, interval edges, and sample
/// accounting all match to the bit, not merely within float tolerance.
fn assert_bit_identical(a: &WindowResult, b: &WindowResult) {
    assert_eq!(a.window, b.window);
    for (x, y) in [(&a.sum, &b.sum), (&a.mean, &b.mean)] {
        assert_eq!(x.value.to_bits(), y.value.to_bits(), "{}", a.window);
        let ((xlo, xhi), (ylo, yhi)) = (x.interval(), y.interval());
        assert_eq!(xlo.to_bits(), ylo.to_bits(), "{}", a.window);
        assert_eq!(xhi.to_bits(), yhi.to_bits(), "{}", a.window);
        assert_eq!(x.sample_size, y.sample_size, "{}", a.window);
    }
    assert_eq!(a.sum_by_stratum.len(), b.sum_by_stratum.len());
    for ((sa, ra), (sb, rb)) in a.sum_by_stratum.iter().zip(&b.sum_by_stratum) {
        assert_eq!(sa, sb);
        assert_eq!(ra.value.to_bits(), rb.value.to_bits(), "{}", a.window);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The core round-trip on every engine at a random split point:
    /// checkpoint → seal → open → restore into a fresh builder, replay the
    /// tail, and the stitched run equals an uninterrupted oracle exactly —
    /// reservoir contents, sampler RNG streams, counters and pane cursor
    /// all survive serialization draw-for-draw.
    #[test]
    fn snapshot_roundtrip_resumes_draw_for_draw(split_pct in 10u64..90, seed in 1u64..500) {
        for kind in ENGINES {
            let stream = items(seed);
            let split = (stream.len() as u64 * split_pct / 100) as usize;

            let mut oracle_policy = FixedFraction(0.4);
            let mut oracle = checkpointable(kind, &mut oracle_policy).start();
            oracle.push_batch(stream.iter().copied()).expect("in order");
            let oracle_out = oracle.finish();

            let mut first_policy = FixedFraction(0.4);
            let mut first = checkpointable(kind, &mut first_policy).start();
            first
                .push_batch(stream[..split].iter().copied())
                .expect("in order");
            let mut windows = first.poll_windows();
            let snapshot = first.checkpoint().expect("snapshotable engine");
            drop(first); // the crash: unfinished state dies with the process

            let sealed = seal_session_snapshot(&snapshot).expect("seal");
            let reopened = open_session_snapshot(&sealed).expect("open");
            let mut resumed_policy = FixedFraction(0.4);
            let mut resumed = checkpointable(kind, &mut resumed_policy)
                .resume(&reopened)
                .expect("matching builder restores");
            resumed
                .push_batch(stream[split..].iter().copied())
                .expect("in order");
            let out = resumed.finish();
            prop_assert_eq!(out.items_ingested, oracle_out.items_ingested, "{:?}", kind);
            prop_assert_eq!(out.items_aggregated, oracle_out.items_aggregated, "{:?}", kind);
            windows.extend(out.windows);
            prop_assert_eq!(&windows, &oracle_out.windows, "{:?}", kind);
        }
    }
}

/// A checkpoint falling exactly on a pane boundary restores bit-identically
/// on every engine: the resumed run's windows match an uninterrupted
/// oracle's in value, error-bound edges, and sample counters via `to_bits`.
#[test]
fn pane_boundary_checkpoint_restores_bit_identically() {
    for kind in ENGINES {
        let stream = items(77);
        // Split where event time first reaches 2s — a boundary of both the
        // 500ms panes and the 1s windows, so the checkpoint state carries
        // a freshly-closed pane and nothing mid-flight from the next.
        let split = stream
            .iter()
            .position(|i| i.time >= EventTime::from_millis(2_000))
            .expect("5s stream crosses 2s");

        let mut oracle_policy = FixedFraction(0.4);
        let mut oracle = checkpointable(kind, &mut oracle_policy).start();
        oracle.push_batch(stream.iter().copied()).expect("in order");
        let oracle_out = oracle.finish();

        let mut first_policy = FixedFraction(0.4);
        let mut first = checkpointable(kind, &mut first_policy).start();
        first
            .push_batch(stream[..split].iter().copied())
            .expect("in order");
        let snapshot = first.checkpoint().expect("snapshotable engine");
        drop(first);

        let mut resumed_policy = FixedFraction(0.4);
        let mut resumed = checkpointable(kind, &mut resumed_policy)
            .resume(&snapshot)
            .expect("matching builder restores");
        resumed
            .push_batch(stream[split..].iter().copied())
            .expect("in order");
        let out = resumed.finish();

        assert_eq!(out.windows.len(), oracle_out.windows.len(), "{kind:?}");
        for (a, b) in out.windows.iter().zip(&oracle_out.windows) {
            assert_bit_identical(a, b);
        }
        assert_eq!(out.items_ingested, oracle_out.items_ingested, "{kind:?}");
        assert_eq!(
            out.items_aggregated, oracle_out.items_aggregated,
            "{kind:?}"
        );
    }
}

/// The bounded-error story: a crash loses the suffix pushed after the last
/// checkpoint, the [`CheckpointPolicy`] item budget bounds that suffix, and
/// the resumed run — missing at most those items mid-pane — still lands
/// within confidence-bound distance of the uninterrupted oracle.
#[test]
fn mid_pane_crash_with_bounded_loss_stays_within_bounds() {
    let stream = items(91);

    let mut oracle_policy = FixedFraction(0.4);
    let mut oracle = checkpointable(EngineKind::Aggregated, &mut oracle_policy).start();
    oracle.push_batch(stream.iter().copied()).expect("in order");
    let oracle_out = oracle.finish();

    // The victim checkpoints under a 300-item unsnapshotted budget and
    // crashes mid-pane; everything since its last checkpoint is lost.
    let mut victim_policy = FixedFraction(0.4);
    let mut victim = StreamApprox::new(query(), &mut victim_policy)
        .checkpointable()
        .with_checkpoint_policy(CheckpointPolicy::every_panes(1).with_max_unsnapshotted(300))
        .aggregated(AggregatedConfig::new().with_seed(0xC0DE_u64))
        .start();
    let crash_at = stream.len() * 3 / 5;
    let mut latest: Option<SessionSnapshot> = None;
    let mut checkpointed_through = 0usize;
    for (i, item) in stream[..crash_at].iter().enumerate() {
        victim.push(*item).expect("in order");
        if victim.checkpoint_due() {
            latest = Some(victim.checkpoint().expect("snapshotable engine"));
            checkpointed_through = i + 1;
        }
    }
    let lost = crash_at - checkpointed_through;
    assert!(
        lost <= 300,
        "policy budget must bound the unsnapshotted suffix, lost {lost}"
    );
    assert!(lost > 0, "crash should fall mid-pane, between checkpoints");
    drop(victim);

    let snapshot = latest.expect("at least one checkpoint was due");
    let mut resumed_policy = FixedFraction(0.4);
    let mut resumed = checkpointable(EngineKind::Aggregated, &mut resumed_policy)
        .resume(&snapshot)
        .expect("matching builder restores");
    // The lost suffix cannot be replayed; the stream continues from the
    // crash point onward.
    resumed
        .push_batch(stream[crash_at..].iter().copied())
        .expect("in order");
    let out = resumed.finish();
    assert_eq!(
        out.items_ingested + lost as u64,
        oracle_out.items_ingested,
        "exactly the unsnapshotted suffix is missing"
    );

    // Every window the resumed run answers tracks the oracle's answer: the
    // loss is bounded by the budget, so means stay within bound-scale
    // distance and the two confidence intervals overlap.
    for w in &out.windows {
        let reference = oracle_out
            .windows
            .iter()
            .find(|o| o.window == w.window)
            .expect("resumed run answers the oracle's windows");
        if reference.mean.value != 0.0 {
            let loss = sa_estimate::accuracy_loss(w.mean.value, reference.mean.value);
            assert!(loss < 0.25, "{}: mean drifted {loss}", w.window);
        }
        let (lo, hi) = w.mean.interval();
        let (rlo, rhi) = reference.mean.interval();
        assert!(
            lo <= rhi && rlo <= hi,
            "{}: confidence intervals disjoint: [{lo}, {hi}] vs [{rlo}, {rhi}]",
            w.window
        );
    }
}

/// Resume over the aggregator log: the snapshot records the consumer's
/// offsets at the last counted poll, a fresh consumer seeks them before its
/// first post-resume poll, and the stitched run equals an uninterrupted
/// consumer-fed oracle exactly — no double-counted prefix, no lost tail,
/// even though the victim had polled past the checkpoint before dying.
#[test]
fn resume_replays_the_log_from_recorded_offsets() {
    let mix = Mix::gaussian([1_000.0, 200.0, 20.0]);
    let substreams: Vec<_> = mix
        .substreams()
        .iter()
        .map(|s| s.generate(EventTime::from_millis(0), 2_000, 5))
        .collect();
    let merged = sa_aggregator::merge_by_time(substreams);
    let total = merged.len() as u64;
    let topic = Topic::new("checkpointed-input", 1);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    replay_into(merged, &mut producer, 100);

    let drain = |session: &mut streamapprox::ApproxSession<'_, f64>,
                 consumer: &mut Consumer<f64>| loop {
        let delta = session.ingest_consumer(consumer, 5).expect("engine alive");
        if delta.ingested == 0 && consumer.is_caught_up() {
            break;
        }
    };

    let mut oracle_policy = FixedFraction(0.4);
    let mut oracle = checkpointable(EngineKind::Aggregated, &mut oracle_policy).start();
    let mut oracle_consumer = Consumer::whole_topic(topic.clone());
    drain(&mut oracle, &mut oracle_consumer);
    let oracle_out = oracle.finish();

    // The victim checkpoints after 8 polls, keeps consuming for 4 more —
    // work the crash will throw away — then dies without finishing.
    let mut victim_policy = FixedFraction(0.4);
    let mut victim = checkpointable(EngineKind::Aggregated, &mut victim_policy).start();
    let mut victim_consumer = Consumer::whole_topic(topic.clone());
    for _ in 0..8 {
        victim
            .ingest_consumer(&mut victim_consumer, 5)
            .expect("engine alive");
    }
    let snapshot = victim.checkpoint().expect("snapshotable engine");
    assert!(
        !snapshot.replay.is_empty(),
        "consumer-fed checkpoints must record replay offsets"
    );
    for _ in 0..4 {
        victim
            .ingest_consumer(&mut victim_consumer, 5)
            .expect("engine alive");
    }
    drop(victim);
    drop(victim_consumer);

    // Resume with a *fresh* consumer: the session seeks it to the recorded
    // offsets on the first poll, skipping the already-counted prefix.
    let mut resumed_policy = FixedFraction(0.4);
    let mut resumed = checkpointable(EngineKind::Aggregated, &mut resumed_policy)
        .resume(&snapshot)
        .expect("matching builder restores");
    let mut resumed_consumer = Consumer::whole_topic(topic);
    drain(&mut resumed, &mut resumed_consumer);
    let out = resumed.finish();

    assert_eq!(out.items_ingested, total);
    assert_eq!(out.items_ingested, oracle_out.items_ingested);
    assert_eq!(out.windows, oracle_out.windows);
}

/// The AF-Stream property that makes approximate fault tolerance cheap:
/// snapshots serialize the mergeable sampler state, so their size is a
/// function of the sampling budget and pane occupancy — **not** of how
/// much stream has flowed through. A 10× longer stream may cost a few
/// varint bytes of counter width, never a proportional snapshot.
#[test]
fn snapshot_size_tracks_the_budget_not_the_stream() {
    let sealed_size = |kind: EngineKind, n: usize| -> u64 {
        let stream: Vec<StreamItem<f64>> = (0..n)
            .map(|i| {
                let stratum = StratumId((i % 3) as u32);
                StreamItem::new(
                    stratum,
                    EventTime::from_millis(i as i64),
                    f64::from((i % 50) as u32),
                )
            })
            .collect();
        let mut policy = FixedFraction(0.4);
        let mut session = checkpointable(kind, &mut policy).start();
        session.push_batch(stream).expect("in order");
        // Drain delivered windows: a snapshot holds live state, not the
        // output backlog of a consumer that never polled.
        let _ = session.poll_windows();
        let snapshot = session.checkpoint().expect("snapshotable engine");
        let sealed = seal_session_snapshot(&snapshot).expect("seal");
        let _ = session.finish();
        sealed.len() as u64
    };
    for kind in ENGINES {
        let small = sealed_size(kind, 10_000);
        let large = sealed_size(kind, 100_000);
        assert!(small > 0);
        assert!(
            large < small * 2,
            "{kind:?}: 10x the stream grew the snapshot {small} -> {large} bytes"
        );
    }
}

/// `SessionStatus` surfaces checkpoint exposure: what pane the last
/// checkpoint covered, how many items arrived since (the at-risk window),
/// and how large the sealed snapshot was.
#[test]
fn status_reports_checkpoint_exposure() {
    let stream = items(13);
    let mut policy = FixedFraction(0.4);
    let mut session = checkpointable(EngineKind::Aggregated, &mut policy).start();
    // ~3,880 items/s: 4,000 items put the watermark past the first pane.
    session
        .push_batch(stream[..4_000].iter().copied())
        .expect("in order");

    let before = session.status();
    assert_eq!(before.last_checkpoint_pane, None);
    assert_eq!(before.items_since_checkpoint, 4_000);
    assert_eq!(before.snapshot_bytes, 0);
    assert!(session.checkpoint_due(), "default policy: due every pane");

    let snapshot = session.checkpoint().expect("snapshotable engine");
    let after = session.status();
    assert_eq!(after.last_checkpoint_pane, snapshot.engine.pane);
    assert!(after.last_checkpoint_pane.is_some());
    assert_eq!(after.items_since_checkpoint, 0);
    assert_eq!(
        after.snapshot_bytes,
        seal_session_snapshot(&snapshot).expect("seal").len() as u64
    );

    session
        .push_batch(stream[4_000..4_200].iter().copied())
        .expect("in order");
    assert_eq!(session.status().items_since_checkpoint, 200);
    let _ = session.finish();
}

/// The file-backed store closes the loop on disk: `checkpoint_to` seals and
/// saves atomically, `load` + `open_session_snapshot` + `resume` restores,
/// and the stitched run matches the oracle.
#[test]
fn file_store_round_trips_a_kill_restore() {
    let dir = std::env::temp_dir().join(format!(
        "sa-ckpt-resume-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut store = FileCheckpointStore::new(dir.join("session.snapshot"));

    let stream = items(55);
    let split = stream.len() / 2;
    let mut oracle_policy = FixedFraction(0.4);
    let mut oracle = checkpointable(EngineKind::Sharded, &mut oracle_policy).start();
    oracle.push_batch(stream.iter().copied()).expect("in order");
    let oracle_out = oracle.finish();

    let mut first_policy = FixedFraction(0.4);
    let mut first = checkpointable(EngineKind::Sharded, &mut first_policy).start();
    first
        .push_batch(stream[..split].iter().copied())
        .expect("in order");
    let bytes = first.checkpoint_to(&mut store).expect("seal and save");
    drop(first);

    let sealed = store.load().expect("readable").expect("saved");
    assert_eq!(bytes, sealed.len() as u64);
    let snapshot = open_session_snapshot(&sealed).expect("open");
    let mut resumed_policy = FixedFraction(0.4);
    let mut resumed = checkpointable(EngineKind::Sharded, &mut resumed_policy)
        .resume(&snapshot)
        .expect("matching builder restores");
    resumed
        .push_batch(stream[split..].iter().copied())
        .expect("in order");
    let out = resumed.finish();
    assert_eq!(out.windows, oracle_out.windows);
    assert_eq!(out.items_ingested, oracle_out.items_ingested);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Checkpointing is opt-in and guarded: a session built without
/// `checkpointable()` refuses to snapshot, the pipelined engine never
/// snapshots (its state lives in operator threads), and a snapshot cannot
/// be restored into a different engine.
#[test]
fn checkpoint_guards_reject_unsupported_paths() {
    let mut p1 = FixedFraction(0.4);
    let mut plain = StreamApprox::new(query(), &mut p1)
        .aggregated(AggregatedConfig::new())
        .start();
    plain
        .push(StreamItem::new(
            StratumId(0),
            EventTime::from_millis(10),
            1.0f64,
        ))
        .expect("in order");
    assert!(matches!(plain.checkpoint(), Err(SaError::Checkpoint(_))));
    let _ = plain.finish();

    let mut p2 = FixedFraction(0.4);
    let mut pipelined = StreamApprox::new(query(), &mut p2)
        .checkpointable()
        .pipelined(streamapprox::PipelinedConfig::new())
        .start();
    assert!(matches!(
        pipelined.checkpoint(),
        Err(SaError::Checkpoint(_))
    ));
    let _ = pipelined.finish();

    // An aggregated snapshot cannot be poured into the sharded engine.
    let mut p3 = FixedFraction(0.4);
    let mut donor = checkpointable(EngineKind::Aggregated, &mut p3).start();
    donor
        .push_batch(items(3).into_iter().take(1_000))
        .expect("in order");
    let snapshot = donor.checkpoint().expect("snapshotable engine");
    let _ = donor.finish();
    let mut p4 = FixedFraction(0.4);
    let err = match checkpointable(EngineKind::Sharded, &mut p4).resume(&snapshot) {
        Ok(_) => panic!("engine-name mismatch must refuse"),
        Err(err) => err,
    };
    assert!(matches!(err, SaError::Checkpoint(_)));
}
