//! Fault injection for the self-healing distributed tier (ISSUE:
//! supervision, heartbeat-driven failure detection, and bounded-error
//! degraded merges).
//!
//! The claims under test, in order of strength:
//!
//! 1. The supervision machinery is *free* when nothing fails: a healthy
//!    run under aggressive fault windows is bit-identical run to run and
//!    never stamps a window degraded.
//! 2. Killing a worker and handing its shard to a replacement
//!    ([`rejoin_worker`] + checkpoint handoff + log replay) recovers
//!    **exactly-once**: the stitched run equals the uninterrupted run
//!    bit for bit, and the respawn is visible in the coordinator's
//!    status.
//! 3. A worker that dies for good degrades the run instead of killing
//!    it: `finish` returns promptly with windows stamped degraded, the
//!    lost mass accounted, and widened confidence intervals that still
//!    cover the true answer.
//! 4. No single connection can stall the service: a client that wedges
//!    before its hello, a live straggler that never delivers, and
//!    hostile frames on a joined connection all cost at most one shard,
//!    never the session.
//!
//! Faults are injected deterministically — sockets severed at chosen
//! item counts, protocol spoken by hand — so every scenario is
//! reproducible.

use sa_aggregator::{Consumer, Partitioner, Producer, Topic};
use sa_net::frame::{read_message, write_message};
use sa_net::{Digest, DigestPayload, Message};
use sa_types::{
    EventTime, FaultPolicy, IngestCounters, RunSeed, StratifiedSample, StratumId, StreamItem,
    Window, WindowSpec, WorkerHealth,
};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use streamapprox::{
    connect_worker, rejoin_worker, ApproxSession, DistributedConfig, DistributedSession,
    FixedPerStratum, Query, RecordCodec, RunOutput, StreamApprox, WindowResult,
};

const WORKERS: u32 = 2;
const ITEMS: i64 = 6_000;
const WINDOW_MS: i64 = 1_000;

/// One item per millisecond, two strata at very different scales, with
/// deterministic within-stratum variance (so finite-population variance
/// — and with it interval widening — is nonzero) and a fixed pattern (so
/// true per-window sums are exact arithmetic, computed by [`truth`]).
fn stream() -> Vec<StreamItem<f64>> {
    (0..ITEMS)
        .map(|i| {
            let (stratum, value) = if i % 100 == 99 {
                (StratumId(1), 50.0 + (i % 7) as f64)
            } else {
                (StratumId(0), 2.0 + (i % 5) as f64 * 0.25)
            };
            StreamItem::new(stratum, EventTime::from_millis(i), value)
        })
        .collect()
}

/// The oracle: exact per-window sums of [`stream`].
fn truth() -> BTreeMap<i64, f64> {
    let mut sums = BTreeMap::new();
    for item in stream() {
        *sums
            .entry(item.time.as_millis() / WINDOW_MS * WINDOW_MS)
            .or_insert(0.0) += item.value;
    }
    sums
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(WINDOW_MS))
}

/// Tight but not hair-trigger fault windows: fast enough that every
/// scenario settles in test time, slow enough that a healthy loopback
/// worker never trips them.
fn fast_fault() -> FaultPolicy {
    FaultPolicy::default()
        .with_heartbeat_interval(Duration::from_millis(40))
        .with_miss_budget(5)
        .with_pane_timeout(Duration::from_millis(800))
        .with_backoff(Duration::from_millis(300))
}

fn coordinator(fault: FaultPolicy, policy: &mut FixedPerStratum) -> DistributedSession {
    StreamApprox::new(query(), policy)
        .distributed(
            DistributedConfig::new(WORKERS)
                .with_seed(RunSeed::new(97))
                .with_expected_pane_items(1_000)
                .with_timeout(Duration::from_secs(20))
                .with_fault_policy(fault),
        )
        .expect("bind loopback")
}

/// Publishes the stream round-robin over one partition per worker, so
/// each worker's shard replays in event-time order.
fn publish() -> Arc<Topic<f64>> {
    let topic = Topic::new("faulted-events", WORKERS as usize);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    for batch in stream().chunks(128) {
        producer.send(batch.to_vec());
    }
    topic
}

/// A healthy worker: joins, replays its partition, finishes cleanly.
fn run_worker(addr: std::net::SocketAddr, topic: Arc<Topic<f64>>, worker: u32) -> RunOutput {
    let engine = connect_worker(addr, worker, false, |v: &f64| *v).expect("worker joins");
    let mut consumer = Consumer::group(topic, worker as usize, WORKERS as usize);
    let mut session = ApproxSession::from_engine(Box::new(engine));
    loop {
        let delta = session
            .ingest_consumer(&mut consumer, 64)
            .expect("engine alive");
        if delta.ingested == 0 && consumer.is_caught_up() {
            break;
        }
    }
    session.finish()
}

/// The uninterrupted two-worker run every fault scenario is compared
/// against.
fn healthy_reference(fault: FaultPolicy) -> (RunOutput, u64) {
    let topic = publish();
    let mut policy = FixedPerStratum(24);
    let coordinator = coordinator(fault, &mut policy);
    let addr = coordinator.addr();
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let topic = topic.clone();
            thread::spawn(move || run_worker(addr, topic, w))
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    let total = topic.total_items();
    (coordinator.finish().expect("healthy run"), total)
}

fn assert_bits(label: &str, a: &[WindowResult], b: &[WindowResult]) {
    assert_eq!(a.len(), b.len(), "{label}: window count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.window, y.window, "{label}: window bounds");
        assert_eq!(
            x.sum.value.to_bits(),
            y.sum.value.to_bits(),
            "{label}: {} sum bits",
            x.window
        );
        assert_eq!(
            x.mean.value.to_bits(),
            y.mean.value.to_bits(),
            "{label}: {} mean bits",
            x.window
        );
        assert_eq!(x.degraded, y.degraded, "{label}: {} degraded", x.window);
    }
}

/// Claim 1: under aggressive heartbeat cadence and fault windows, two
/// healthy runs of the same stream are bit-identical and never degraded
/// — the supervision machinery does not perturb the sampling path.
#[test]
fn fault_free_runs_are_bit_identical_and_never_degraded() {
    let (a, total) = healthy_reference(fast_fault());
    let (b, _) = healthy_reference(fast_fault());
    assert_eq!(a.items_ingested, total);
    assert_bits("healthy repeat", &a.windows, &b.windows);
    for w in &a.windows {
        assert!(!w.degraded, "{}: healthy run degraded", w.window);
        assert_eq!(w.lost_items, 0);
    }
}

/// Claim 2: kill worker 1 mid-stream after a checkpoint, adopt its shard
/// with [`rejoin_worker`], resume from the handed-off snapshot, replay
/// the log from the recorded offsets — and the stitched run equals the
/// uninterrupted run bit for bit, with the respawn on the books.
#[test]
fn kill_and_rejoin_recovers_exactly_once() {
    // Generous straggler clock and backoff: the replacement must get to
    // refill the dead shard's panes rather than lose them to a
    // force-merge or retirement.
    let fault = fast_fault()
        .with_pane_timeout(Duration::from_secs(10))
        .with_backoff(Duration::from_secs(10));
    let (reference, total) = healthy_reference(fault);

    let topic = publish();
    let mut policy = FixedPerStratum(24);
    let mut coordinator = coordinator(fault, &mut policy);
    let addr = coordinator.addr();

    let good = {
        let topic = topic.clone();
        thread::spawn(move || run_worker(addr, topic, 0))
    };
    let victim = {
        let topic = topic.clone();
        thread::spawn(move || {
            // Generation 0: checkpointable worker 1. Consume a prefix,
            // checkpoint (which also publishes the sealed slice to the
            // coordinator), consume a little more — work the crash
            // throws away locally — then die without a shutdown.
            let engine = connect_worker(addr, 1, false, |v: &f64| *v)
                .expect("worker joins")
                .checkpointable(RecordCodec::new());
            let mut consumer = Consumer::group(topic.clone(), 1, WORKERS as usize);
            let mut session = ApproxSession::from_engine(Box::new(engine));
            // One published batch per poll, so the checkpoint and the
            // crash both land mid-stream, with delivered panes on both
            // sides of the checkpoint.
            for _ in 0..10 {
                session
                    .ingest_consumer(&mut consumer, 1)
                    .expect("engine alive");
            }
            let local_snapshot = session.checkpoint().expect("checkpointable worker");
            assert!(
                !local_snapshot.replay.is_empty(),
                "consumer-fed checkpoints must record replay offsets"
            );
            for _ in 0..4 {
                session
                    .ingest_consumer(&mut consumer, 1)
                    .expect("engine alive");
            }
            drop(session); // crash: no shutdown, heartbeats stop, socket severed
            drop(consumer);

            // The replacement process: adopt whichever shard died, seed
            // from its last *published* checkpoint (received over the
            // handoff, not read locally), replay the rest of the log
            // from the snapshot's own offsets.
            let (engine, handoff) =
                rejoin_worker(addr, false, |v: &f64| *v).expect("a dead shard to adopt");
            assert_eq!(engine.worker(), 1, "the dead shard is worker 1's");
            assert_eq!(engine.respawns(), 1);
            let handoff = handoff.expect("the victim published a checkpoint");
            let mut session =
                ApproxSession::resume_from_engine(Box::new(engine), &handoff).expect("restores");
            let mut consumer = Consumer::group(topic, 1, WORKERS as usize);
            loop {
                let delta = session
                    .ingest_consumer(&mut consumer, 64)
                    .expect("engine alive");
                if delta.ingested == 0 && consumer.is_caught_up() {
                    break;
                }
            }
            session.finish()
        })
    };

    // Drive the coordinator while the drama unfolds, so liveness checks
    // run and the death is noticed before the replacement dials in.
    let mut windows = Vec::new();
    while !victim.is_finished() || !good.is_finished() {
        windows.extend(
            coordinator
                .poll_windows()
                .expect("faults degrade, not error"),
        );
        thread::sleep(Duration::from_millis(5));
    }
    let replacement_out = victim.join().expect("replacement thread");
    let _ = good.join().expect("good worker thread");
    windows.extend(coordinator.poll_windows().expect("no session error"));

    let status = coordinator.status();
    let worker1 = status
        .workers
        .iter()
        .find(|w| w.worker == 1)
        .expect("worker 1 tracked");
    assert_eq!(worker1.respawns, 1, "the adoption must be on the books");

    let out = coordinator.finish().expect("recovered run");
    windows.extend(out.windows);

    // Exactly-once at every level: the replacement's counters cover its
    // whole shard once, the coordinator counted every item once, and the
    // stitched windows equal the uninterrupted run's bit for bit. The
    // shard's size follows the producer's batch-level round robin:
    // worker 1 replays the odd-indexed batches.
    let shard1: u64 = stream()
        .chunks(128)
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, c)| c.len() as u64)
        .sum();
    assert_eq!(replacement_out.items_ingested, shard1);
    assert_eq!(out.items_ingested, total);
    assert_bits("kill and rejoin", &windows, &reference.windows);
    for w in &windows {
        assert!(
            !w.degraded,
            "{}: a recovered shard must not cost accuracy",
            w.window
        );
    }
}

/// Claim 3: a worker that dies for good — crash mid-stream, no
/// replacement — retires after the backoff and the run completes
/// degraded: windows stamped, lost mass accounted, and the widened
/// intervals still covering the true sums. Deterministic seeds and
/// deterministic fault injection make the coverage check exact, not
/// probabilistic.
#[test]
fn permanent_death_degrades_with_covering_intervals() {
    let topic = publish();
    let mut policy = FixedPerStratum(24);
    let coordinator = coordinator(fast_fault(), &mut policy);
    let addr = coordinator.addr();

    let good = {
        let topic = topic.clone();
        thread::spawn(move || run_worker(addr, topic, 0))
    };
    let crash_after = (ITEMS / 4) as u64;
    let victim = thread::spawn(move || {
        let engine = connect_worker(addr, 1, false, |v: &f64| *v).expect("worker joins");
        let mut consumer = Consumer::group(topic, 1, WORKERS as usize);
        let mut session = ApproxSession::from_engine(Box::new(engine));
        let mut seen = IngestCounters::default();
        while seen.ingested < crash_after {
            let delta = session
                .ingest_consumer(&mut consumer, 64)
                .expect("engine alive");
            seen.absorb(delta);
        }
        drop(session); // crash, no shutdown
    });
    victim.join().expect("victim thread");
    let _ = good.join().expect("good worker thread");

    let started = Instant::now();
    let out = coordinator.finish().expect("degrades, does not error");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "retirement must beat the run timeout"
    );

    assert_eq!(
        out.windows.len(),
        (ITEMS / WINDOW_MS) as usize,
        "the watermark must keep advancing over the dead shard"
    );
    let degraded: Vec<_> = out.windows.iter().filter(|w| w.degraded).collect();
    assert!(
        !degraded.is_empty(),
        "the dead shard's later windows must be stamped"
    );
    let lost: u64 = degraded.iter().map(|w| w.lost_items).sum();
    assert!(lost > 0, "the missing mass must be accounted");
    let truth = truth();
    for w in &out.windows {
        let true_sum = truth[&w.window.start.as_millis()];
        let (lo, hi) = w.sum.interval();
        assert!(
            lo <= true_sum && true_sum <= hi,
            "{}: interval [{lo}, {hi}] must cover the true sum {true_sum} (degraded: {}, \
             lost: {})",
            w.window,
            w.degraded,
            w.lost_items
        );
        if w.degraded {
            assert!(
                hi > lo,
                "{}: a degraded window's interval must be open, not a point",
                w.window
            );
        }
    }
}

/// Claim 4a (the pre-join wedge): a client that connects and never says
/// hello occupies one handshake thread, not the coordinator — startup,
/// the run, and shutdown all proceed at full speed around it.
#[test]
fn wedged_connection_cannot_stall_startup() {
    let mut policy = FixedPerStratum(16);
    let coordinator = StreamApprox::new(query(), &mut policy)
        .distributed(
            DistributedConfig::new(1)
                .with_timeout(Duration::from_secs(10))
                .with_fault_policy(fast_fault()),
        )
        .expect("bind loopback");
    let addr = coordinator.addr();

    // The wedge: a connection that never sends its hello, held open for
    // the whole test.
    let _wedge = TcpStream::connect(addr).expect("connect");

    let started = Instant::now();
    let worker = thread::spawn(move || {
        let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("join past the wedge");
        let mut session = ApproxSession::from_engine(Box::new(engine));
        for i in 0..2_000i64 {
            session
                .push(StreamItem::new(
                    StratumId(0),
                    EventTime::from_millis(i),
                    1.0,
                ))
                .expect("in order");
        }
        session.finish()
    });
    let _ = worker.join().expect("worker thread");
    let out = coordinator.finish().expect("clean run around the wedge");
    assert_eq!(out.items_ingested, 2_000);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the wedged connection must not slow the run down"
    );
}

/// Claim 4b (hostile frames): a joined worker that starts speaking
/// garbage — heartbeats are fine in any phase, but a digest claiming
/// another worker's identity is not — loses its connection and shard,
/// and nothing else: the session finishes degraded, with the offender
/// declared dead.
#[test]
fn hostile_frames_cost_the_connection_not_the_session() {
    let mut policy = FixedPerStratum(16);
    let mut coordinator = coordinator(fast_fault(), &mut policy);
    let addr = coordinator.addr();

    let good = thread::spawn(move || {
        let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("worker joins");
        let mut session = ApproxSession::from_engine(Box::new(engine));
        for i in 0..3_000i64 {
            session
                .push(StreamItem::new(
                    StratumId(0),
                    EventTime::from_millis(i),
                    1.0,
                ))
                .expect("in order");
        }
        session.finish()
    });

    // Worker 1 joins legitimately by hand, heartbeats once (legal in any
    // phase), then claims to be worker 0.
    let hostile = thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_message(
            &mut stream,
            &Message::HelloJoin {
                worker: 1,
                wants_results: false,
            },
        )
        .expect("join frame");
        let assign = read_message(&mut stream)
            .expect("readable")
            .expect("assigned");
        assert!(matches!(assign, Message::HelloAssign { worker: 1, .. }));
        write_message(
            &mut stream,
            &Message::Heartbeat {
                worker: 1,
                ingest: IngestCounters::default(),
                watermark: None,
                lag: 0,
                last_checkpoint_pane: None,
                items_since_checkpoint: 0,
                snapshot_bytes: 0,
            },
        )
        .expect("heartbeats are always legal");
        let imposter = Digest {
            worker: 0,
            pane: Window::new(EventTime::from_millis(0), EventTime::from_millis(WINDOW_MS)),
            counters: IngestCounters::default(),
            watermark: None,
            lag: 0,
            last_checkpoint_pane: None,
            items_since_checkpoint: 0,
            snapshot_bytes: 0,
            payload: DigestPayload::Sampled(StratifiedSample::new()),
        };
        write_message(&mut stream, &Message::PaneDigest(imposter)).expect("frame sent");
        // Hold the connection open until the coordinator reacts, so the
        // death is attributable to the hostile frame, not a hangup.
        thread::sleep(Duration::from_millis(300));
    });
    hostile.join().expect("hostile thread");
    let _ = good.join().expect("good worker thread");

    // The offender must be declared dead (or already retired); the run
    // itself completes.
    let _ = coordinator.poll_windows().expect("no session error");
    let status = coordinator.status();
    let offender = status
        .workers
        .iter()
        .find(|w| w.worker == 1)
        .expect("worker 1 tracked");
    assert!(
        matches!(offender.health, WorkerHealth::Dead | WorkerHealth::Retired),
        "hostile worker must be declared dead, was {:?}",
        offender.health
    );
    let out = coordinator
        .finish()
        .expect("one bad worker cannot kill the run");
    assert_eq!(out.windows.len(), 3);
    assert!(out.windows.iter().all(|w| w.degraded));
}

/// Claim 4c (the live straggler): a worker that heartbeats dutifully but
/// never delivers a digest blocks each pane only until `pane_timeout`,
/// when the pane force-merges degraded — the watermark advances while
/// the straggler is still demonstrably alive.
#[test]
fn live_straggler_is_force_merged_after_the_pane_timeout() {
    let fault = fast_fault().with_pane_timeout(Duration::from_millis(400));
    let mut policy = FixedPerStratum(16);
    let mut coordinator = coordinator(fault, &mut policy);
    let addr = coordinator.addr();

    let good = thread::spawn(move || {
        let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("worker joins");
        let mut session = ApproxSession::from_engine(Box::new(engine));
        for i in 0..2_000i64 {
            session
                .push(StreamItem::new(
                    StratumId(0),
                    EventTime::from_millis(i),
                    1.0,
                ))
                .expect("in order");
        }
        session.finish()
    });
    let _ = good.join().expect("good worker thread");

    // The straggler: joins (its background thread heartbeats at the
    // assigned cadence) but never pushes an item, so it never delivers a
    // pane.
    let straggler = connect_worker(addr, 1, false, |v: &f64| *v).expect("straggler joins");

    // The first window must force-merge while the straggler is alive and
    // heartbeating — well before any death or retirement could excuse
    // its pane.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut first = None;
    while first.is_none() {
        assert!(
            Instant::now() < deadline,
            "the pane timeout must force the merge"
        );
        let mut got = coordinator.poll_windows().expect("no session error");
        if !got.is_empty() {
            first = Some(got.remove(0));
        }
        thread::sleep(Duration::from_millis(10));
    }
    let first = first.expect("first window");
    assert!(first.degraded, "a force-merged pane degrades its windows");
    let status = coordinator.status();
    let lagging = status
        .workers
        .iter()
        .find(|w| w.worker == 1)
        .expect("straggler tracked");
    assert!(
        matches!(
            lagging.health,
            WorkerHealth::Healthy | WorkerHealth::Suspect
        ),
        "the straggler must still be alive when its pane is taken from it, was {:?}",
        lagging.health
    );

    // Let the straggler die; its shard retires and the run completes.
    drop(straggler);
    let out = coordinator.finish().expect("straggler cannot hang the run");
    assert!(out.windows.iter().all(|w| w.degraded));
}
