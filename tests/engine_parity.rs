//! Parity between the batched and pipelined execution models: the same
//! query over the same stream must produce the same windows, with exact
//! agreement under native execution and statistical agreement under
//! sampling.

use sa_batched::Cluster;
use sa_estimate::accuracy_loss;
use sa_types::WindowSpec;
use sa_workloads::Mix;
use streamapprox::{
    run_batched, run_pipelined, BatchedConfig, BatchedSystem, FixedFraction, PipelinedConfig,
    PipelinedSystem, Query, RunOutput, ShardedConfig, StreamApprox,
};

fn items(seed: u64) -> Vec<sa_types::StreamItem<f64>> {
    Mix::gaussian([3_000.0, 800.0, 80.0]).generate(5_000, seed)
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_millis(2_000, 1_000))
}

#[test]
fn native_batched_equals_native_pipelined() {
    let stream = items(1);
    let batched = run_batched(
        &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream.clone(),
    );
    let pipelined = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream,
    );
    assert_eq!(batched.windows.len(), pipelined.windows.len());
    for (b, p) in batched.windows.iter().zip(&pipelined.windows) {
        assert_eq!(b.window, p.window);
        assert!(
            (b.sum.value - p.sum.value).abs() < 1e-6 * b.sum.value.abs().max(1.0),
            "{}: {} vs {}",
            b.window,
            b.sum.value,
            p.sum.value
        );
        assert!((b.mean.value - p.mean.value).abs() < 1e-9 * b.mean.value.abs().max(1.0));
        assert_eq!(b.sum.population_size, p.sum.population_size);
        // Per-stratum results agree too.
        assert_eq!(b.sum_by_stratum.len(), p.sum_by_stratum.len());
        for ((sb, rb), (sp, rp)) in b.sum_by_stratum.iter().zip(&p.sum_by_stratum) {
            assert_eq!(sb, sp);
            assert!((rb.value - rp.value).abs() < 1e-6 * rb.value.abs().max(1.0));
        }
    }
}

#[test]
fn sampled_engines_agree_statistically() {
    let stream = items(2);
    let batched = run_batched(
        &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
        BatchedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.5),
        stream.clone(),
    );
    let pipelined = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.5),
        stream,
    );
    assert_eq!(batched.windows.len(), pipelined.windows.len());
    for (b, p) in batched.windows.iter().zip(&pipelined.windows) {
        assert_eq!(b.window, p.window);
        if b.mean.value == 0.0 {
            continue;
        }
        let divergence = accuracy_loss(p.mean.value, b.mean.value);
        assert!(
            divergence < 0.1,
            "{}: batched {} vs pipelined {}",
            b.window,
            b.mean.value,
            p.mean.value
        );
    }
}

#[test]
fn batch_interval_does_not_change_window_totals() {
    // Different pane granularities must assemble identical native windows
    // (batch intervals divide the slide).
    let stream = items(3);
    let mut reference: Option<Vec<f64>> = None;
    for interval in [250, 500, 1_000] {
        let out = run_batched(
            &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(interval),
            BatchedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            stream.clone(),
        );
        let sums: Vec<f64> = out.windows.iter().map(|w| w.sum.value).collect();
        match &reference {
            None => reference = Some(sums),
            Some(r) => {
                assert_eq!(r.len(), sums.len(), "interval {interval}");
                for (a, b) in r.iter().zip(&sums) {
                    assert!(
                        (a - b).abs() < 1e-6 * a.abs().max(1.0),
                        "interval {interval}"
                    );
                }
            }
        }
    }
}

#[test]
fn pipelined_worker_count_does_not_change_native_answers() {
    let stream = items(4);
    let one = run_pipelined(
        &PipelinedConfig::new().with_sample_workers(1),
        PipelinedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream.clone(),
    );
    let four = run_pipelined(
        &PipelinedConfig::new().with_sample_workers(4),
        PipelinedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream,
    );
    assert_eq!(one.windows.len(), four.windows.len());
    for (a, b) in one.windows.iter().zip(&four.windows) {
        assert_eq!(a.window, b.window);
        assert!((a.sum.value - b.sum.value).abs() < 1e-6 * a.sum.value.abs().max(1.0));
        assert_eq!(a.sum.population_size, b.sum.population_size);
    }
}

#[test]
fn cluster_topology_does_not_change_native_answers() {
    let stream = items(5);
    let single = run_batched(
        &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream.clone(),
    );
    let multi = run_batched(
        &BatchedConfig::new(Cluster::with_topology(2, 2)).with_batch_interval_ms(500),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream,
    );
    for (a, b) in single.windows.iter().zip(&multi.windows) {
        assert!((a.sum.value - b.sum.value).abs() < 1e-6 * a.sum.value.abs().max(1.0));
    }
}

/// The refactor's correctness oracle: for a deterministic seeded stream,
/// both engines' StreamApprox runs must produce per-window mean intervals
/// that (a) overlap the exact answer and (b) overlap each other — the
/// shared runtime guarantees both engines estimate from the same kind of
/// weighted sample, so their confidence intervals bracket the same truth.
#[test]
fn sampled_mean_intervals_overlap_exact_and_each_other() {
    // Stream seed picked to keep this fixed-seed statistical check off the
    // ~5% per-window CI miss rate's unlucky tail (the skip-ahead reservoir
    // draws an equally valid but different sample sequence than the
    // per-item kernel it replaced).
    let stream = items(9);
    let exact = run_batched(
        &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream.clone(),
    );
    let batched = run_batched(
        &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
        BatchedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.5),
        stream.clone(),
    );
    let pipelined = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.5),
        stream,
    );
    assert_eq!(batched.windows.len(), exact.windows.len());
    assert_eq!(pipelined.windows.len(), exact.windows.len());
    let mut contain_exact = 0usize;
    let mut total = 0usize;
    for ((b, p), e) in batched
        .windows
        .iter()
        .zip(&pipelined.windows)
        .zip(&exact.windows)
    {
        assert_eq!(b.window, e.window);
        assert_eq!(p.window, e.window);
        if e.sum.population_size == 0 {
            continue;
        }
        total += 2;
        let (b_lo, b_hi) = b.mean.interval();
        let (p_lo, p_hi) = p.mean.interval();
        assert!(b_lo <= b_hi, "{}: degenerate batched interval", b.window);
        assert!(p_lo <= p_hi, "{}: degenerate pipelined interval", p.window);
        // The two engines' intervals must overlap each other, every window.
        assert!(
            b_lo <= p_hi && p_lo <= b_hi,
            "{}: batched [{b_lo}, {b_hi}] disjoint from pipelined [{p_lo}, {p_hi}]",
            b.window
        );
        // And bracket the exact answer (a per-window 95% statement, so a
        // small minority of windows may miss; most must contain it).
        let truth = e.mean.value;
        contain_exact += usize::from(b_lo <= truth && truth <= b_hi);
        contain_exact += usize::from(p_lo <= truth && truth <= p_hi);
    }
    assert!(total > 0, "stream produced no populated windows");
    assert!(
        contain_exact * 10 >= total * 9,
        "only {contain_exact}/{total} intervals contain the exact mean"
    );
}

/// One `RunSeed` pins down every sampling decision: re-running either
/// engine with the same seed reproduces the windows bit for bit, and a
/// different seed draws a genuinely different sample.
#[test]
fn runs_are_reproducible_from_one_seed() {
    let stream = items(8);
    let batched_config = || {
        BatchedConfig::new(Cluster::new(2))
            .with_batch_interval_ms(500)
            .with_seed(0xFEED_u64)
    };
    let run_b = || {
        run_batched(
            &batched_config(),
            BatchedSystem::StreamApprox,
            &query(),
            &mut FixedFraction(0.3),
            stream.clone(),
        )
    };
    let (a, b) = (run_b(), run_b());
    assert_eq!(a.windows, b.windows, "batched run not reproducible");

    let run_p = |seed: u64| {
        run_pipelined(
            &PipelinedConfig::new().with_seed(seed),
            PipelinedSystem::StreamApprox,
            &query(),
            &mut FixedFraction(0.3),
            stream.clone(),
        )
    };
    let (c, d) = (run_p(0xFEED), run_p(0xFEED));
    assert_eq!(c.windows, d.windows, "pipelined run not reproducible");

    let other = run_p(0xBEEF);
    assert_ne!(
        c.windows, other.windows,
        "different seeds drew identical samples"
    );
}

/// The session-API equivalence oracle, batched engine: pushing the same
/// seeded stream item by item or in ragged chunks through an
/// `ApproxSession` is bit-for-bit identical to the one-shot path — the
/// redesign's guarantee that `run_batched` is a mere convenience.
#[test]
fn incremental_push_matches_oneshot_batched() {
    let stream = items(31);
    let config = BatchedConfig::new(Cluster::new(2))
        .with_batch_interval_ms(500)
        .with_seed(0xFEED_u64);
    for system in [BatchedSystem::StreamApprox, BatchedSystem::Native] {
        let oneshot = run_batched(
            &config,
            system,
            &query(),
            &mut FixedFraction(0.3),
            stream.clone(),
        );
        // Chunk sizes 1 (item by item) and a ragged prime (chunked).
        for chunk_size in [1usize, 37] {
            let mut policy = FixedFraction(0.3);
            let mut session = StreamApprox::new(query(), &mut policy)
                .batched(config.clone().with_system(system))
                .start();
            let mut windows = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                session.push_batch(chunk.iter().cloned()).expect("in order");
                // Interleave polling with pushing: draining mid-run must
                // not perturb anything.
                windows.extend(session.poll_windows());
            }
            let out = session.finish();
            windows.extend(out.windows);
            assert_eq!(
                windows, oneshot.windows,
                "{system}: chunk size {chunk_size} diverged from one-shot"
            );
            assert_eq!(out.items_ingested, oneshot.items_ingested);
            assert_eq!(out.items_aggregated, oneshot.items_aggregated);
        }
    }
}

/// The session-API equivalence oracle, pipelined engine: with the same
/// first-pane hint `run_pipelined` derives, incremental push reproduces
/// the one-shot windows bit for bit at a fixed seed.
#[test]
fn incremental_push_matches_oneshot_pipelined() {
    let stream = items(32);
    let config = PipelinedConfig::new().with_seed(0xFEED_u64);
    for system in [PipelinedSystem::StreamApprox, PipelinedSystem::Native] {
        let oneshot = run_pipelined(
            &config,
            system,
            &query(),
            &mut FixedFraction(0.3),
            stream.clone(),
        );
        // run_pipelined seeds the fraction policy's first interval from
        // the recording; an equivalent live session states the same hint.
        let first_pane_guess = stream
            .iter()
            .take_while(|i| i.time.as_millis() < query().window().slide_millis())
            .count();
        for chunk_size in [1usize, 53] {
            let mut policy = FixedFraction(0.3);
            let mut session = StreamApprox::new(query(), &mut policy)
                .pipelined(
                    config
                        .with_expected_pane_items(first_pane_guess)
                        .with_system(system),
                )
                .start();
            let mut windows = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                session.push_batch(chunk.iter().cloned()).expect("in order");
                windows.extend(session.poll_windows());
            }
            let out = session.finish();
            windows.extend(out.windows);
            // No re-sort: the session contract promises watermark order,
            // so polled windows concatenated with finish's remainder must
            // already match the one-shot (sorted) output exactly.
            assert_eq!(
                windows, oneshot.windows,
                "{system}: chunk size {chunk_size} diverged from one-shot"
            );
            assert_eq!(out.items_ingested, oneshot.items_ingested);
            assert_eq!(out.items_aggregated, oneshot.items_aggregated);
        }
    }
}

/// Runs the sharded engine over a recorded stream with the same pane
/// interval and first-pane hint the batched reference uses.
fn run_sharded(
    shards: usize,
    seed: u64,
    fraction: f64,
    stream: &[sa_types::StreamItem<f64>],
) -> RunOutput {
    let first_pane_guess = stream
        .iter()
        .take_while(|i| i.time.as_millis() < 500)
        .count();
    let mut policy = FixedFraction(fraction);
    let mut session = StreamApprox::new(query(), &mut policy)
        .sharded(
            ShardedConfig::new(shards)
                .with_pane_interval_ms(500)
                .with_seed(seed)
                .with_expected_pane_items(first_pane_guess),
        )
        .start();
    session
        .push_batch(stream.iter().copied())
        .expect("in order");
    session.finish()
}

/// The batch-fast-path oracle: feeding a stream through per-item
/// `push` or through one giant `push_batch` (which rides every engine's
/// `push_chunk` fast path) must be **bit-for-bit** identical — windows,
/// run counters and session ingest accounting — under sampling and under
/// native execution, on every engine with a real chunk fast path.
#[test]
fn push_chunk_is_bit_identical_to_per_item_push() {
    use streamapprox::AggregatedConfig;
    let stream = items(45);
    let first_pane_guess = stream
        .iter()
        .take_while(|i| i.time.as_millis() < 500)
        .count();
    type SessionFactory<'a> =
        Box<dyn Fn(&mut FixedFraction) -> streamapprox::ApproxSession<'_, f64> + 'a>;
    let factories: Vec<(&str, SessionFactory)> = vec![
        (
            "aggregated",
            Box::new(|policy: &mut FixedFraction| {
                StreamApprox::new(query(), policy)
                    .aggregated(AggregatedConfig::new().with_seed(0xFEED_u64))
                    .start()
            }),
        ),
        (
            "batched",
            Box::new(|policy: &mut FixedFraction| {
                StreamApprox::new(query(), policy)
                    .batched(
                        BatchedConfig::new(Cluster::new(2))
                            .with_batch_interval_ms(500)
                            .with_seed(0xFEED_u64)
                            .with_system(BatchedSystem::StreamApprox),
                    )
                    .start()
            }),
        ),
        (
            "sharded",
            Box::new(move |policy: &mut FixedFraction| {
                StreamApprox::new(query(), policy)
                    .sharded(
                        ShardedConfig::new(3)
                            .with_pane_interval_ms(500)
                            .with_seed(0xFEED_u64)
                            .with_expected_pane_items(first_pane_guess),
                    )
                    .start()
            }),
        ),
    ];
    for (name, factory) in factories {
        for fraction in [0.3, 1.0] {
            let mut p1 = FixedFraction(fraction);
            let mut per_item = factory(&mut p1);
            for item in &stream {
                per_item.push(*item).expect("in order");
            }
            let per_item_status = per_item.status();
            let per_item_out = per_item.finish();

            let mut p2 = FixedFraction(fraction);
            let mut chunked = factory(&mut p2);
            let delta = chunked
                .push_batch(stream.iter().copied())
                .expect("in order");
            // The returned delta is the whole batch, and it must agree
            // with the session's run-wide accounting.
            assert_eq!(delta.ingested, stream.len() as u64, "{name} f={fraction}");
            assert_eq!(delta.dropped_late, 0, "{name} f={fraction}");
            let status = chunked.status();
            assert_eq!(status.ingest, per_item_status.ingest, "{name} f={fraction}");
            assert_eq!(delta.offered(), status.ingest.offered());
            assert_eq!(
                status.watermark, per_item_status.watermark,
                "{name} f={fraction}"
            );
            let chunked_out = chunked.finish();
            assert_eq!(
                chunked_out.windows, per_item_out.windows,
                "{name} f={fraction}: chunked run diverged from per-item"
            );
            assert_eq!(chunked_out.items_ingested, per_item_out.items_ingested);
            assert_eq!(chunked_out.items_aggregated, per_item_out.items_aggregated);
        }
    }
}

/// The sharded-determinism oracle: one shard is the degenerate
/// hash-partition (everything routes to shard 0, whose sampler draws the
/// same seeded RNG stream as the batched engine's worker 0 of 1, and the
/// canonical merge is the identity), so a 1-shard run must reproduce the
/// batched engine **bit for bit** — under sampling and under native
/// execution — at the same seed, pane interval and first-pane hint.
#[test]
fn sharded_n1_matches_batched_bit_for_bit() {
    let stream = items(40);
    // One sampling worker and one dataset partition so the batched pane
    // job is the exact single-threaded computation shard 0 performs.
    let batched_config = BatchedConfig {
        num_partitions: 1,
        sample_workers: 1,
        ..BatchedConfig::new(Cluster::new(1))
    }
    .with_batch_interval_ms(500)
    .with_seed(0xFEED_u64);
    for (system, fraction) in [
        (BatchedSystem::StreamApprox, 0.3),
        (BatchedSystem::Native, 1.0),
    ] {
        let batched = run_batched(
            &batched_config,
            system,
            &query(),
            &mut FixedFraction(fraction),
            stream.clone(),
        );
        let sharded = run_sharded(1, 0xFEED, fraction, &stream);
        assert_eq!(
            sharded.windows, batched.windows,
            "{system}: sharded N=1 diverged from batched"
        );
        assert_eq!(sharded.items_ingested, batched.items_ingested);
        assert_eq!(sharded.items_aggregated, batched.items_aggregated);
    }
}

/// Sharded runs are reproducible from one seed, and different shard
/// counts draw genuinely different (but statistically agreeing) samples.
#[test]
fn sharded_runs_are_reproducible_and_seeded() {
    let stream = items(41);
    let a = run_sharded(4, 0xFEED, 0.4, &stream);
    let b = run_sharded(4, 0xFEED, 0.4, &stream);
    assert_eq!(a.windows, b.windows, "sharded run not reproducible");
    let other = run_sharded(4, 0xBEEF, 0.4, &stream);
    assert_ne!(a.windows, other.windows, "seed did not steer the sample");
}

/// Statistical parity at N > 1: the mergeable-sampler path must keep
/// per-window estimates within the configured confidence bounds of the
/// exact answer — the merge preserves inclusion probabilities, so more
/// shards must not bias the estimator.
#[test]
fn sharded_estimates_stay_within_confidence_bounds_of_exact() {
    // The confidence statement is per window at 95%, and a run's sliding
    // windows share panes (misses come in correlated pairs), so the
    // containment rate is checked across several independent streams
    // rather than one run's handful of windows.
    let mut contained = 0usize;
    let mut total = 0usize;
    for stream_seed in [42u64, 43, 44] {
        let stream = items(stream_seed);
        let exact = run_batched(
            &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
            BatchedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            stream.clone(),
        );
        for shards in [2usize, 4] {
            let sharded = run_sharded(shards, 0xFEED, 0.5, &stream);
            assert_eq!(
                sharded.windows.len(),
                exact.windows.len(),
                "{shards} shards"
            );
            assert!(sharded.items_aggregated < sharded.items_ingested);
            for (s, e) in sharded.windows.iter().zip(&exact.windows) {
                assert_eq!(s.window, e.window, "{shards} shards");
                assert_eq!(
                    s.sum.population_size, e.sum.population_size,
                    "{shards} shards: population miscounted across shards"
                );
                if e.sum.population_size == 0 {
                    continue;
                }
                total += 1;
                let (lo, hi) = s.mean.interval();
                assert!(lo <= hi, "{}: degenerate interval", s.window);
                contained += usize::from(lo <= e.mean.value && e.mean.value <= hi);
                // Point estimates stay close in accuracy-loss terms too.
                let loss = accuracy_loss(s.mean.value, e.mean.value);
                assert!(loss < 0.15, "{shards} shards, {}: loss {loss}", s.window);
            }
        }
    }
    assert!(total > 0, "streams produced no populated windows");
    // Per-window 95% statements: the bulk of the intervals must contain
    // the exact answer (a small minority of near-misses is the expected
    // behaviour of a correct 95% interval).
    assert!(
        contained * 100 >= total * 85,
        "only {contained}/{total} intervals contain the exact mean"
    );
}

/// Session-level invariants on the sharded engine: per-shard counters
/// surface through `SessionStatus`, cover every pushed item exactly once,
/// and windows stream out incrementally.
#[test]
fn sharded_session_reports_per_shard_counters() {
    let stream = items(43);
    let mut policy = FixedFraction(0.4);
    let mut session = StreamApprox::new(query(), &mut policy)
        .sharded(ShardedConfig::new(3).with_pane_interval_ms(500))
        .start();
    let mut live_windows = 0usize;
    for chunk in stream.chunks(977) {
        session.push_batch(chunk.iter().copied()).expect("in order");
        live_windows += session.poll_windows().len();
    }
    let status = session.status();
    assert_eq!(status.items_pushed, stream.len() as u64);
    assert_eq!(status.shards.len(), 3);
    for (i, shard) in status.shards.iter().enumerate() {
        assert_eq!(shard.shard, i);
        assert!(shard.ingested > 0, "shard {i} starved");
        assert!(shard.sampled <= shard.ingested);
    }
    // Shard counters lag by at most the open pane's buffered items.
    let routed: u64 = status.shards.iter().map(|s| s.ingested).sum();
    assert!(routed <= stream.len() as u64);
    let out = session.finish();
    assert!(live_windows + out.windows.len() > 0);
    assert_eq!(out.items_ingested, stream.len() as u64);
}

/// Shard counters are *lifetime* totals: a cost policy that changes its
/// directive mid-run makes the engine retire and replace every shard's
/// worker, and the retired workers' counts must roll forward instead of
/// resetting.
#[test]
fn sharded_shard_counters_survive_directive_changes() {
    use streamapprox::{CostPolicy, SizingDirective};
    /// Alternates between two fixed budgets, forcing a rearm every pane.
    struct Alternating(u64);
    impl CostPolicy for Alternating {
        fn interval_sizing(&mut self) -> SizingDirective {
            self.0 += 1;
            if self.0 % 2 == 0 {
                SizingDirective::PerStratum(8)
            } else {
                SizingDirective::PerStratum(16)
            }
        }
    }
    let stream = items(44);
    let mut policy = Alternating(0);
    let mut session = StreamApprox::new(query(), &mut policy)
        .sharded(ShardedConfig::new(2).with_pane_interval_ms(500))
        .start();
    let mut last_totals = [0u64; 2];
    for chunk in stream.chunks(1_000) {
        session.push_batch(chunk.iter().copied()).expect("in order");
        for shard in session.status().shards {
            assert!(
                shard.ingested >= last_totals[shard.shard],
                "shard {} counter went backwards: {} -> {}",
                shard.shard,
                last_totals[shard.shard],
                shard.ingested
            );
            last_totals[shard.shard] = shard.ingested;
        }
    }
    // Counters run as of the last closed pane, so only the still-open
    // pane's items may be uncounted; everything before the last pane
    // boundary must have accumulated across every rearm. `status()` is
    // read-only, so settle the rearm barrier first to collect retired
    // workers' counters.
    session.settle().expect("engine alive");
    let status = session.status();
    let routed: u64 = status.shards.iter().map(|s| s.ingested).sum();
    let last_boundary = 500 * (stream.last().unwrap().time.as_millis() / 500);
    let closed_items = stream
        .iter()
        .filter(|i| i.time.as_millis() < last_boundary)
        .count() as u64;
    assert!(routed <= stream.len() as u64);
    assert!(
        routed >= closed_items,
        "lifetime counters lost items across rearms: {routed} < {closed_items}"
    );
    let _ = session.finish();
}

/// At steady state the shard fabric routes chunks in *recycled* buffers:
/// a shard drains each chunk into its sampler and hands the empty `Vec`
/// back on its return ring, so after a short warm-up the router allocates
/// nothing per chunk. Small chunks over a long stream make the warm-up a
/// vanishing fraction: ≥ 99% of all routed chunks must ride recycled
/// buffers, and the absolute number of fresh allocations must stay below
/// the fabric's peak demand (ring slots + one in flight per side).
#[test]
fn sharded_routing_recycles_chunk_buffers_at_steady_state() {
    let stream = Mix::gaussian([3_000.0, 800.0, 80.0]).generate(50_000, 46);
    let mut policy = FixedFraction(0.4);
    let mut session = StreamApprox::new(query(), &mut policy)
        .sharded(
            ShardedConfig::new(2)
                .with_pane_interval_ms(500)
                .with_chunk_items(16)
                .with_ring_chunks(4)
                .with_seed(0xFEED_u64),
        )
        .start();
    session
        .push_batch(stream.iter().copied())
        .expect("in order");
    let status = session.status();
    let routed: u64 = status.shards.iter().map(|s| s.chunks_routed).sum();
    let recycled: u64 = status.shards.iter().map(|s| s.chunks_recycled).sum();
    assert!(
        routed >= 1_000,
        "expected a long chunk stream, got {routed}"
    );
    assert!(recycled <= routed);
    // Fresh allocations are bounded by the fabric (2 shards × (4-deep
    // command ring + 6-deep return ring + 2 in flight) = 24 buffers), not
    // by the stream length.
    let fresh = routed - recycled;
    assert!(
        fresh <= 24,
        "router kept allocating past warm-up: {fresh} fresh of {routed} chunks"
    );
    assert!(
        recycled * 100 >= routed * 99,
        "steady-state recycling below 99%: {recycled}/{routed}"
    );
    let _ = session.finish();
}

/// The bounded command ring is the backpressure: when a shard can't keep
/// up, the router's `push` stalls against the full ring instead of
/// queueing unboundedly. A deliberately slow projection (exact execution
/// projects every item on the shard thread) makes both shards lag far
/// behind the router; the number of chunk buffers ever allocated must
/// stay at the fabric bound while many times that number of chunks flow
/// through — and the stalls must not perturb the results.
#[test]
fn sharded_backpressure_bounds_memory_behind_slow_shards() {
    use std::time::{Duration, Instant};
    let stream = items(46);
    let slow_query = || {
        Query::new(|v: &f64| {
            let start = Instant::now();
            while start.elapsed() < Duration::from_micros(20) {
                std::hint::spin_loop();
            }
            *v
        })
        .with_window(WindowSpec::sliding_millis(2_000, 1_000))
    };
    let config = ShardedConfig::new(2)
        .with_pane_interval_ms(500)
        .with_chunk_items(64)
        .with_ring_chunks(2)
        .with_seed(0xFEED_u64);
    let mut slow_policy = FixedFraction(1.0);
    let mut session = StreamApprox::new(slow_query(), &mut slow_policy)
        .sharded(config)
        .start();
    session
        .push_batch(stream.iter().copied())
        .expect("in order");
    let status = session.status();
    let routed: u64 = status.shards.iter().map(|s| s.chunks_routed).sum();
    let fresh: u64 = routed - status.shards.iter().map(|s| s.chunks_recycled).sum::<u64>();
    assert!(routed >= 40, "expected many chunks, got {routed}");
    // 2 shards × (2-deep command ring + 4-deep return ring + 2 in
    // flight) = 16 buffers is all the memory a stalled router may hold.
    assert!(
        fresh <= 16,
        "slow shards did not backpressure the router: {fresh} buffers allocated"
    );
    let slow = session.finish();
    // The stalls are invisible in the output: an unthrottled projection
    // over the same fabric produces the identical exact answer.
    let mut fast_policy = FixedFraction(1.0);
    let mut fast_session = StreamApprox::new(query(), &mut fast_policy)
        .sharded(config)
        .start();
    fast_session
        .push_batch(stream.iter().copied())
        .expect("in order");
    let fast = fast_session.finish();
    assert_eq!(slow.windows, fast.windows);
    assert_eq!(slow.items_ingested, fast.items_ingested);
}

/// The multi-shard stress oracle: four shards on one-chunk rings with
/// tiny chunks force constant ring wraparound, router stalls and close
/// barriers queued behind data — and none of it may show in the answer,
/// which must be bit-for-bit the run on the default (deep-ring, large
/// chunk) fabric at the same seed.
#[test]
fn sharded_small_ring_stress_matches_default_fabric() {
    let stream = items(47);
    let first_pane_guess = stream
        .iter()
        .take_while(|i| i.time.as_millis() < 500)
        .count();
    let run = |config: ShardedConfig| {
        let mut policy = FixedFraction(0.4);
        let mut session = StreamApprox::new(query(), &mut policy)
            .sharded(config)
            .start();
        session
            .push_batch(stream.iter().copied())
            .expect("in order");
        session.finish()
    };
    let base = ShardedConfig::new(4)
        .with_pane_interval_ms(500)
        .with_seed(0xFEED_u64)
        .with_expected_pane_items(first_pane_guess);
    let stressed = run(base.with_ring_chunks(1).with_chunk_items(7));
    let relaxed = run(base);
    assert_eq!(
        stressed.windows, relaxed.windows,
        "ring depth / chunk size changed the sampled answer"
    );
    assert_eq!(stressed.items_ingested, relaxed.items_ingested);
    assert_eq!(stressed.items_aggregated, relaxed.items_aggregated);
}

#[test]
fn sts_baseline_matches_native_population_but_samples_proportionally() {
    let stream = items(6);
    let native = run_batched(
        &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream.clone(),
    );
    let sts = run_batched(
        &BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500),
        BatchedSystem::Sts,
        &query(),
        &mut FixedFraction(0.4),
        stream,
    );
    for (n, s) in native.windows.iter().zip(&sts.windows) {
        assert_eq!(n.sum.population_size, s.sum.population_size);
        if n.sum.population_size == 0 {
            continue;
        }
        let fraction = s.sum.sample_size as f64 / s.sum.population_size as f64;
        assert!(
            (fraction - 0.4).abs() < 0.02,
            "{}: sampled fraction {fraction}",
            s.window
        );
        let loss = accuracy_loss(s.mean.value, n.mean.value);
        assert!(loss < 0.1, "{}: loss {loss}", s.window);
    }
}
