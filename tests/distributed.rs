//! Acceptance tests for the distributed tier (ISSUE: distributed
//! coordinator/worker aggregation over real TCP).
//!
//! The load-bearing claim is §3.2's merge soundness carried over the
//! wire: K worker processes sampling disjoint shards of a stream and
//! shipping per-pane sampler digests to a coordinator must produce
//! window estimates **bit-identical** to a single process holding the
//! same per-shard samplers and merging them through [`ShardSet`]. The
//! tests here run K = 3 workers as threads over real loopback sockets,
//! build the single-process reference by hand from the exported runtime
//! primitives, and compare every float by its bit pattern.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_net::frame::{read_message, write_message, MAGIC};
use sa_net::{Message, WIRE_VERSION};
use sa_types::{
    EventTime, FaultPolicy, RunSeed, StratifiedSample, StratumId, StreamItem, Window, WindowSpec,
};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use streamapprox::{
    connect_worker, pane_merge_seed, ApproxSession, CostPolicy, DistributedConfig, FixedFraction,
    FixedPerStratum, Query, RunOutput, ShardSet, SizingDirective, StreamApprox, WindowFinalizer,
    WindowResult, WorkerPane,
};

const WORKERS: usize = 3;
const EXPECTED_PANE_ITEMS: usize = 1_000;

/// A §6.1-style stream: one dense majority sub-stream and one sparse
/// minority sub-stream (1%) with a very different value scale, one item
/// per millisecond so every worker closes every pane.
fn skewed_stream(n: i64) -> Vec<StreamItem<f64>> {
    (0..n)
        .map(|i| {
            let (stratum, value) = if i % 100 == 0 {
                (StratumId(1), 250.0 + (i % 7) as f64)
            } else {
                (StratumId(0), (i % 50) as f64)
            };
            StreamItem::new(stratum, EventTime::from_millis(i), value)
        })
        .collect()
}

fn policy_for(directive: SizingDirective) -> Box<dyn CostPolicy> {
    match directive {
        SizingDirective::Fraction(f) => Box::new(FixedFraction(f)),
        SizingDirective::PerStratum(n) => Box::new(FixedPerStratum(n)),
        // FixedFraction(1.0) degrades to the exact path by design.
        SizingDirective::Everything => Box::new(FixedFraction(1.0)),
        SizingDirective::SharedTotal(_) => unreachable!("not exercised here"),
    }
}

/// Splits the stream into per-worker sub-streams with the canonical
/// shard routing, preserving arrival order within each sub-stream.
fn partition(items: &[StreamItem<f64>], seed: RunSeed) -> Vec<Vec<StreamItem<f64>>> {
    let router = ShardSet::<f64>::new(WORKERS, seed, Arc::new(|v| *v));
    let mut shards = vec![Vec::new(); WORKERS];
    for (seq, item) in items.iter().enumerate() {
        shards[router.route(item.stratum, seq as u64)].push(*item);
    }
    shards
}

/// The single-process oracle: per-shard full-capacity samplers closed at
/// the same pane boundaries the workers close, merged in ascending shard
/// order with the pane-start-derived merge RNG, finalized with the same
/// estimation layer. This is exactly what the coordinator must reproduce
/// from digests that crossed a socket.
fn reference_windows(
    shards: &[Vec<StreamItem<f64>>],
    seed: RunSeed,
    directive: SizingDirective,
    window: WindowSpec,
) -> Vec<WindowResult> {
    let interval = window.slide_millis();
    let mut shard_set = ShardSet::<f64>::new(WORKERS, seed, Arc::new(|v| *v));
    let mut workers = shard_set
        .rearm(directive, EXPECTED_PANE_ITEMS)
        .expect("first arm always rebuilds");
    let mut pending: BTreeMap<i64, BTreeMap<usize, WorkerPane<f64>>> = BTreeMap::new();
    let mut open: Vec<Option<i64>> = vec![None; WORKERS];
    for (w, (worker, items)) in workers.iter_mut().zip(shards).enumerate() {
        for item in items {
            let t = item.time.as_millis();
            let start = open[w].get_or_insert(t.div_euclid(interval) * interval);
            while t >= *start + interval {
                let pane = worker.close_interval_parts();
                pending.entry(*start).or_default().insert(w, pane);
                *start += interval;
            }
            worker.observe(item.stratum, item.value);
        }
        if let Some(start) = open[w] {
            pending
                .entry(start)
                .or_default()
                .insert(w, worker.close_interval_parts());
        }
    }
    let mut finalizer = WindowFinalizer::new(window, query().confidence());
    for (start, mut by_shard) in pending {
        let panes: Vec<WorkerPane<f64>> = (0..WORKERS)
            .map(|w| {
                by_shard
                    .remove(&w)
                    .unwrap_or(WorkerPane::Sampled(StratifiedSample::new()))
            })
            .collect();
        let mut rng = SmallRng::seed_from_u64(pane_merge_seed(seed, start));
        let payload = shard_set.merge_panes(panes, &mut rng);
        let end = start + interval;
        finalizer.ingest_interval(
            Window::new(EventTime::from_millis(start), EventTime::from_millis(end)),
            payload,
        );
        finalizer.close_interval(EventTime::from_millis(end));
    }
    finalizer.finish();
    finalizer.drain_windows()
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v)
}

/// Runs coordinator + K loopback worker threads over real TCP sockets.
fn distributed_run(
    shards: Vec<Vec<StreamItem<f64>>>,
    seed: RunSeed,
    directive: SizingDirective,
    window: WindowSpec,
) -> RunOutput {
    let policy = policy_for(directive);
    let coordinator = StreamApprox::new(query().with_window(window), policy)
        .distributed(
            DistributedConfig::new(WORKERS as u32)
                .with_seed(seed)
                .with_expected_pane_items(EXPECTED_PANE_ITEMS)
                .with_timeout(Duration::from_secs(20)),
        )
        .expect("bind loopback");
    let addr = coordinator.addr();
    let handles: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(w, items)| {
            thread::spawn(move || {
                let engine =
                    connect_worker(addr, w as u32, false, |v: &f64| *v).expect("worker joins");
                let mut session = ApproxSession::from_engine(Box::new(engine));
                session
                    .push_batch(items)
                    .expect("sub-streams stay event-time ordered");
                session.finish()
            })
        })
        .collect();
    let out = coordinator.finish().expect("clean distributed run");
    for handle in handles {
        let worker_out = handle.join().expect("worker thread");
        assert!(worker_out.items_ingested > 0, "every shard saw items");
    }
    out
}

fn assert_bits(label: &str, got: &sa_types::ApproxResult, want: &sa_types::ApproxResult) {
    assert_eq!(
        got.value.to_bits(),
        want.value.to_bits(),
        "{label}: value {} vs {}",
        got.value,
        want.value
    );
    let (glo, ghi) = got.interval();
    let (wlo, whi) = want.interval();
    assert_eq!(glo.to_bits(), wlo.to_bits(), "{label}: lower bound");
    assert_eq!(ghi.to_bits(), whi.to_bits(), "{label}: upper bound");
    assert_eq!(got.sample_size, want.sample_size, "{label}: sample size");
    assert_eq!(
        got.population_size, want.population_size,
        "{label}: population"
    );
}

fn assert_bit_identical(distributed: &[WindowResult], reference: &[WindowResult]) {
    assert_eq!(
        distributed.len(),
        reference.len(),
        "window counts must agree"
    );
    for (d, r) in distributed.iter().zip(reference) {
        assert_eq!(d.window, r.window);
        assert_bits(&format!("{} sum", d.window), &d.sum, &r.sum);
        assert_bits(&format!("{} mean", d.window), &d.mean, &r.mean);
        assert_eq!(d.sum_by_stratum.len(), r.sum_by_stratum.len());
        for ((ds, dv), (rs, rv)) in d.sum_by_stratum.iter().zip(&r.sum_by_stratum) {
            assert_eq!(ds, rs);
            assert_bits(&format!("{} sum[{ds:?}]", d.window), dv, rv);
        }
        for ((ds, dv), (rs, rv)) in d.mean_by_stratum.iter().zip(&r.mean_by_stratum) {
            assert_eq!(ds, rs);
            assert_bits(&format!("{} mean[{ds:?}]", d.window), dv, rv);
        }
    }
}

/// Exact per-window sums straight off the item stream.
fn exact_window_sums(items: &[StreamItem<f64>], windows: &[WindowResult]) -> Vec<f64> {
    windows
        .iter()
        .map(|w| {
            items
                .iter()
                .filter(|i| w.window.contains(i.time))
                .map(|i| i.value)
                .sum()
        })
        .collect()
}

#[test]
fn three_workers_match_single_process_merge_bit_for_bit_per_stratum() {
    let seed = RunSeed::new(7);
    let directive = SizingDirective::PerStratum(24);
    let window = WindowSpec::sliding_millis(2_000, 1_000);
    let items = skewed_stream(6_000);
    let shards = partition(&items, seed);
    let reference = reference_windows(&shards, seed, directive, window);
    let out = distributed_run(shards, seed, directive, window);

    assert_eq!(out.items_ingested, items.len() as u64);
    assert!(
        out.items_aggregated < out.items_ingested,
        "sampling must select a strict subset"
    );
    assert!(!out.windows.is_empty());
    assert_bit_identical(&out.windows, &reference);

    // And the estimates are honest: the exact oracle falls inside every
    // window's confidence interval.
    let exact = exact_window_sums(&items, &out.windows);
    for (w, exact_sum) in out.windows.iter().zip(exact) {
        let (lo, hi) = w.sum.interval();
        assert!(
            lo <= exact_sum && exact_sum <= hi,
            "{}: exact sum {exact_sum} outside [{lo}, {hi}]",
            w.window
        );
    }
}

#[test]
fn three_workers_match_single_process_merge_bit_for_bit_fraction() {
    // The fraction directive drives the capacity-summing union (the
    // adaptive-capacity merge path), distinct from the fixed-capacity
    // reservoir union above.
    let seed = RunSeed::new(21);
    let directive = SizingDirective::Fraction(0.2);
    let window = WindowSpec::tumbling_millis(1_000);
    let items = skewed_stream(5_000);
    let shards = partition(&items, seed);
    let reference = reference_windows(&shards, seed, directive, window);
    let out = distributed_run(shards, seed, directive, window);
    assert_eq!(out.items_ingested, items.len() as u64);
    assert_bit_identical(&out.windows, &reference);
}

#[test]
fn exact_directive_ships_statistics_and_matches_the_oracle() {
    let seed = RunSeed::new(3);
    let directive = SizingDirective::Everything;
    let window = WindowSpec::tumbling_millis(1_000);
    let items = skewed_stream(3_000);
    let shards = partition(&items, seed);
    let reference = reference_windows(&shards, seed, directive, window);
    let out = distributed_run(shards, seed, directive, window);

    assert_eq!(out.items_ingested, items.len() as u64);
    assert_eq!(
        out.items_aggregated, out.items_ingested,
        "everything means everything"
    );
    assert_bit_identical(&out.windows, &reference);
    let exact = exact_window_sums(&items, &out.windows);
    for (w, exact_sum) in out.windows.iter().zip(exact) {
        let error = (w.sum.value - exact_sum).abs();
        assert!(
            error <= exact_sum.abs() * 1e-9,
            "{}: exact-mode sum {} drifted from oracle {exact_sum}",
            w.window,
            w.sum.value
        );
    }
}

#[test]
fn worker_disconnect_mid_pane_degrades_instead_of_hanging() {
    let mut policy = FixedPerStratum(8);
    // Short fault windows so the run settles promptly: dead after 100ms
    // of silence, retired 200ms later, stragglers force-merged at 500ms.
    let fault = FaultPolicy::default()
        .with_heartbeat_interval(Duration::from_millis(50))
        .with_miss_budget(2)
        .with_backoff(Duration::from_millis(200))
        .with_pane_timeout(Duration::from_millis(500));
    let coordinator = StreamApprox::new(
        query().with_window(WindowSpec::tumbling_millis(1_000)),
        &mut policy,
    )
    .distributed(
        DistributedConfig::new(2)
            .with_timeout(Duration::from_secs(10))
            .with_fault_policy(fault),
    )
    .expect("bind loopback");
    let addr = coordinator.addr();

    // Worker 0 behaves; its windows must survive worker 1's death.
    let good = thread::spawn(move || {
        let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("worker joins");
        let mut session = ApproxSession::from_engine(Box::new(engine));
        for i in 0..1_500i64 {
            session
                .push(StreamItem::new(
                    StratumId(0),
                    EventTime::from_millis(i),
                    1.0,
                ))
                .expect("in order");
        }
        session.finish()
    });

    // Worker 1 joins for real, then dies mid-frame: a valid header
    // promising a 64-byte digest, ten bytes of payload, and a dead
    // socket.
    let bad = thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_message(
            &mut stream,
            &Message::HelloJoin {
                worker: 1,
                wants_results: false,
            },
        )
        .expect("join frame");
        let assign = read_message(&mut stream)
            .expect("readable")
            .expect("assigned");
        assert!(matches!(assign, Message::HelloAssign { worker: 1, .. }));
        let mut partial = Vec::from(MAGIC);
        partial.push(WIRE_VERSION);
        partial.extend_from_slice(&64u32.to_le_bytes());
        partial.extend_from_slice(&[0u8; 10]);
        stream.write_all(&partial).expect("partial frame");
    });
    bad.join().expect("bad worker thread");

    // With no replacement inside the backoff, the dead shard retires and
    // the run completes degraded instead of erroring or hanging.
    let started = Instant::now();
    let out = coordinator
        .finish()
        .expect("a lost worker degrades the run, it does not kill it");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "retirement must settle well inside the run timeout"
    );
    let _ = good.join().expect("good worker thread");

    // Worker 0's stream alone spans [0, 1500): two windows, both missing
    // worker 1's (never delivered) shard.
    assert_eq!(out.windows.len(), 2, "the watermark must keep advancing");
    for w in &out.windows {
        assert!(w.degraded, "{}: window must be stamped degraded", w.window);
        assert!(
            w.lost_items > 0,
            "{}: the dead shard's mass must be accounted as lost",
            w.window
        );
        let (lo, hi) = w.mean.interval();
        assert!(lo <= w.mean.value && w.mean.value <= hi);
    }
}
