//! Qualitative reproduction of the paper's comparative claims at test
//! scale: accuracy ordering between the systems, stratified superiority
//! under skew, and sane sampling behaviour of every baseline.

use sa_batched::Cluster;
use sa_estimate::accuracy_loss;
use sa_types::WindowSpec;
use sa_workloads::Mix;
use streamapprox::{run_batched, BatchedConfig, BatchedSystem, FixedFraction, Query};

fn config(seed: u64) -> BatchedConfig {
    BatchedConfig::new(Cluster::new(2))
        .with_batch_interval_ms(500)
        .with_seed(seed)
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
}

/// Mean accuracy loss of `system` vs native over several seeds.
fn mean_loss(system: BatchedSystem, fraction: f64, seeds: std::ops::Range<u64>) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for seed in seeds {
        let items = Mix::gaussian_skewed(6_000.0).generate(3_000, seed);
        let exact = run_batched(
            &config(0),
            BatchedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            items.clone(),
        );
        let approx = run_batched(
            &config(seed.wrapping_mul(97)),
            system,
            &query(),
            &mut FixedFraction(fraction),
            items,
        );
        for (a, e) in approx.windows.iter().zip(&exact.windows) {
            if e.mean.value != 0.0 {
                total += accuracy_loss(a.mean.value, e.mean.value);
                n += 1;
            }
        }
    }
    total / n as f64
}

#[test]
fn stratified_systems_beat_srs_on_skewed_streams() {
    // The core accuracy claim (Figures 4b, 6c, 7): StreamApprox and STS,
    // both stratified, are more accurate than SRS under skew.
    let sa = mean_loss(BatchedSystem::StreamApprox, 0.3, 0..10);
    let sts = mean_loss(BatchedSystem::Sts, 0.3, 0..10);
    let srs = mean_loss(BatchedSystem::Srs, 0.3, 0..10);
    assert!(sa < srs, "StreamApprox loss {sa} not below SRS loss {srs}");
    assert!(sts < srs, "STS loss {sts} not below SRS loss {srs}");
}

#[test]
fn all_sampling_systems_approach_native_at_high_fractions() {
    for system in [
        BatchedSystem::StreamApprox,
        BatchedSystem::Srs,
        BatchedSystem::Sts,
    ] {
        let loss = mean_loss(system, 0.9, 0..4);
        assert!(loss < 0.02, "{system}: loss {loss} at 90%");
    }
}

#[test]
fn sampling_fractions_are_respected() {
    let items = Mix::gaussian([4_000.0, 800.0, 80.0]).generate(3_000, 3);
    for (system, fraction, tolerance) in [
        (BatchedSystem::Srs, 0.4, 0.02),
        (BatchedSystem::Sts, 0.4, 0.02),
        // OASRS adapts reservoir capacities from the previous interval, so
        // its realized fraction tracks the target more loosely.
        (BatchedSystem::StreamApprox, 0.4, 0.15),
    ] {
        let out = run_batched(
            &config(4),
            system,
            &query(),
            &mut FixedFraction(fraction),
            items.clone(),
        );
        let realized = out.effective_fraction();
        assert!(
            (realized - fraction).abs() < tolerance,
            "{system}: realized {realized} vs target {fraction}"
        );
    }
}

#[test]
fn native_runs_aggregate_everything() {
    let items = Mix::gaussian([2_000.0, 400.0, 40.0]).generate(2_000, 5);
    let out = run_batched(
        &config(5),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        items,
    );
    assert_eq!(out.items_ingested, out.items_aggregated);
    for w in &out.windows {
        assert_eq!(w.sum.sample_size, w.sum.population_size);
        assert_eq!(w.sum.bound.margin(), 0.0);
    }
}

#[test]
fn mean_time_series_tracks_ground_truth() {
    // Figure 7's shape: the per-window mean of each sampled system tracks
    // the native mean; the stratified systems stay within a tight band.
    let items = Mix::gaussian_skewed(4_000.0).generate(10_000, 6);
    let exact = run_batched(
        &config(0),
        BatchedSystem::Native,
        &query().with_window(WindowSpec::sliding_secs(2, 1)),
        &mut FixedFraction(1.0),
        items.clone(),
    );
    let sa = run_batched(
        &config(6),
        BatchedSystem::StreamApprox,
        &query().with_window(WindowSpec::sliding_secs(2, 1)),
        &mut FixedFraction(0.6),
        items,
    );
    let mut worst: f64 = 0.0;
    for (a, e) in sa.windows.iter().zip(&exact.windows) {
        if e.mean.value != 0.0 {
            worst = worst.max(accuracy_loss(a.mean.value, e.mean.value));
        }
    }
    assert!(worst < 0.1, "worst-window loss {worst}");
}
