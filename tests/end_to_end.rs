//! End-to-end integration: workload generators → aggregator replay →
//! both engines → approximate answers checked against native ground truth.

use sa_aggregator::{merge_by_time, replay_into, Consumer, Partitioner, Producer, Topic};
use sa_batched::Cluster;
use sa_estimate::accuracy_loss;
use sa_types::{Confidence, StratumId, WindowSpec};
use sa_workloads::{Mix, NetFlowGenerator, TaxiGenerator};
use streamapprox::{
    run_batched, run_pipelined, BatchedConfig, BatchedSystem, FixedFraction, PipelinedConfig,
    PipelinedSystem, Query, StreamApprox,
};

fn batched_config() -> BatchedConfig {
    BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500)
}

#[test]
fn gaussian_mix_through_batched_streamapprox() {
    let items = Mix::gaussian([2_000.0, 500.0, 50.0]).generate(4_000, 1);
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_millis(2_000, 1_000));

    let exact = run_batched(
        &batched_config(),
        BatchedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        items.clone(),
    );
    let approx = run_batched(
        &batched_config(),
        BatchedSystem::StreamApprox,
        &query,
        &mut FixedFraction(0.6),
        items,
    );

    assert_eq!(exact.windows.len(), approx.windows.len());
    assert!(approx.effective_fraction() < 0.9);
    let mut losses = Vec::new();
    for (a, e) in approx.windows.iter().zip(&exact.windows) {
        assert_eq!(a.window, e.window);
        if e.mean.value != 0.0 {
            losses.push(accuracy_loss(a.mean.value, e.mean.value));
        }
    }
    let mean_loss = losses.iter().sum::<f64>() / losses.len() as f64;
    assert!(mean_loss < 0.05, "mean accuracy loss {mean_loss}");
}

#[test]
fn gaussian_mix_through_pipelined_streamapprox() {
    let items = Mix::gaussian([2_000.0, 500.0, 50.0]).generate(4_000, 2);
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_millis(2_000, 1_000));

    let exact = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        items.clone(),
    );
    let approx = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::StreamApprox,
        &query,
        &mut FixedFraction(0.6),
        items,
    );

    assert_eq!(exact.windows.len(), approx.windows.len());
    for (a, e) in approx.windows.iter().zip(&exact.windows) {
        assert_eq!(a.window, e.window);
        if e.mean.value != 0.0 {
            let loss = accuracy_loss(a.mean.value, e.mean.value);
            assert!(loss < 0.2, "window {}: loss {loss}", a.window);
        }
    }
}

#[test]
fn netflow_case_study_per_protocol_sums() {
    // The §6.2 query: total traffic per protocol per window.
    let lines = NetFlowGenerator::new(5_000.0, 3).generate_lines(3_000);
    let query = Query::new(|line: &String| {
        sa_workloads::FlowRecord::parse_line(line)
            .expect("generator produces valid lines")
            .bytes as f64
    })
    .with_window(WindowSpec::tumbling_millis(1_000));

    let exact = run_batched(
        &batched_config(),
        BatchedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        lines.clone(),
    );
    let approx = run_batched(
        &batched_config(),
        BatchedSystem::StreamApprox,
        &query,
        &mut FixedFraction(0.6),
        lines,
    );

    for (a, e) in approx.windows.iter().zip(&exact.windows) {
        // All three protocols present in both.
        assert_eq!(a.sum_by_stratum.len(), 3, "window {}", a.window);
        for (stratum, exact_sum) in &e.sum_by_stratum {
            let approx_sum = a.stratum_sum(*stratum).expect("stratum covered");
            let loss = accuracy_loss(approx_sum.value, exact_sum.value);
            assert!(loss < 0.5, "{stratum}: loss {loss}");
        }
    }
}

#[test]
fn taxi_case_study_per_borough_means() {
    // The §6.3 query: average trip distance per borough per window.
    let rides = TaxiGenerator::new(5_000.0, 4).generate(3_000);
    let query = Query::new(|r: &sa_workloads::TaxiRide| r.distance_miles)
        .with_window(WindowSpec::tumbling_millis(1_000));

    let exact = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        rides.clone(),
    );
    let approx = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::StreamApprox,
        &query,
        &mut FixedFraction(0.4),
        rides,
    );

    for (a, e) in approx.windows.iter().zip(&exact.windows) {
        assert_eq!(a.mean_by_stratum.len(), 6, "all six boroughs covered");
        for (stratum, exact_mean) in &e.mean_by_stratum {
            let approx_mean = a.stratum_mean(*stratum).expect("borough covered");
            let loss = accuracy_loss(approx_mean.value, exact_mean.value);
            assert!(loss < 0.4, "{stratum}: loss {loss}");
        }
    }
}

#[test]
fn full_pipeline_via_aggregator() {
    // Generators → replay tool → topic → consumer-fed session, as
    // deployed: the session ingests straight off the consumer in a poll
    // loop and serves windows while the topic still holds unread input.
    let mix = Mix::gaussian([1_000.0, 200.0, 20.0]);
    let substreams: Vec<_> = mix
        .substreams()
        .iter()
        .map(|s| s.generate(sa_types::EventTime::from_millis(0), 2_000, 7))
        .collect();
    let total: usize = substreams.iter().map(Vec::len).sum();

    // One partition: the aggregator combines the sub-streams into the
    // system's single time-ordered input stream (§2.1).
    let topic = Topic::new("input", 1);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    replay_into(merge_by_time(substreams), &mut producer, 200);

    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000));
    let mut policy = FixedFraction(0.5);
    let mut session = StreamApprox::new(query, &mut policy)
        .batched(batched_config().with_system(BatchedSystem::StreamApprox))
        .start();
    let mut consumer = Consumer::whole_topic(topic);
    let mut live_windows = 0usize;
    loop {
        let ingest = session
            .ingest_consumer(&mut consumer, 3)
            .expect("engine alive");
        assert_eq!(
            ingest.dropped_late, 0,
            "single-partition replay is time-ordered"
        );
        live_windows += session.poll_windows().len();
        if ingest.ingested == 0 && consumer.is_caught_up() {
            break;
        }
    }
    let out = session.finish();
    assert_eq!(out.items_ingested, total as u64);
    assert!(
        live_windows > 0,
        "no window observable during the consumer loop"
    );
}

#[test]
fn error_bounds_cover_truth_at_stated_confidence() {
    // Run many seeds; the 95% interval must cover the native answer in
    // roughly 95% of windows (allow slack for small-sample optimism).
    let mut covered = 0usize;
    let mut totals = 0usize;
    for seed in 0..20 {
        let items = Mix::gaussian([1_500.0, 400.0, 60.0]).generate(3_000, seed);
        let query = Query::new(|v: &f64| *v)
            .with_window(WindowSpec::tumbling_millis(1_000))
            .with_confidence(Confidence::P95);
        let exact = run_batched(
            &batched_config(),
            BatchedSystem::Native,
            &query,
            &mut FixedFraction(1.0),
            items.clone(),
        );
        let approx = run_batched(
            &batched_config().with_seed(seed),
            BatchedSystem::StreamApprox,
            &query,
            &mut FixedFraction(0.3),
            items,
        );
        for (a, e) in approx.windows.iter().zip(&exact.windows) {
            if e.sum.population_size == 0 {
                continue;
            }
            let (lo, hi) = a.sum.interval();
            totals += 1;
            if lo <= e.sum.value && e.sum.value <= hi {
                covered += 1;
            }
        }
    }
    let rate = covered as f64 / totals as f64;
    assert!(rate > 0.85, "coverage {covered}/{totals} = {rate}");
}

#[test]
fn srs_misses_minority_stratum_where_oasrs_keeps_it() {
    // The qualitative claim behind Figure 5(a): with a tiny sub-stream and
    // a small fraction, SRS sometimes loses the stratum entirely; OASRS
    // never does.
    let mix = Mix::gaussian([4_000.0, 1_000.0, 5.0]);
    let items = mix.generate(2_000, 11);
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000));

    let oasrs = run_batched(
        &batched_config(),
        BatchedSystem::StreamApprox,
        &query,
        &mut FixedFraction(0.1),
        items.clone(),
    );
    for w in &oasrs.windows {
        if w.sum.population_size == 0 {
            continue;
        }
        assert!(
            w.stratum_sum(StratumId(2)).is_some(),
            "OASRS lost the minority stratum in {}",
            w.window
        );
    }
    // SRS is *allowed* to miss it; we only check it runs and stays
    // population-consistent.
    let srs = run_batched(
        &batched_config(),
        BatchedSystem::Srs,
        &query,
        &mut FixedFraction(0.1),
        items,
    );
    for w in &srs.windows {
        assert!(w.sum.sample_size <= w.sum.population_size);
    }
}
