//! Aggregator-centric integration: consumer groups feeding parallel
//! engine instances, stratum-partitioned topics, and replay framing.

use sa_aggregator::{
    merge_by_time, replay_into, Consumer, Partitioner, Producer, Topic, DEFAULT_MESSAGE_SIZE,
};
use sa_types::{EventTime, StratumId, StreamItem};
use sa_workloads::{Mix, NetFlowGenerator};

#[test]
fn consumer_group_partitions_cover_stream_exactly_once() {
    let stream = Mix::gaussian([2_000.0, 500.0, 50.0]).generate(2_000, 1);
    let total = stream.len();
    let topic = Topic::new("grouped", 6);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    replay_into(stream, &mut producer, DEFAULT_MESSAGE_SIZE);

    let mut seen = 0usize;
    for member in 0..3 {
        let mut consumer = Consumer::group(topic.clone(), member, 3);
        seen += consumer.poll_items(usize::MAX).len();
        assert!(consumer.is_caught_up());
    }
    assert_eq!(seen, total);
}

#[test]
fn stratum_partitioning_keeps_substreams_separable() {
    let stream = NetFlowGenerator::new(3_000.0, 2).generate(1_000);
    let topic = Topic::new("by-proto", 8);
    let mut producer = Producer::new(topic.clone(), Partitioner::ByStratum);
    // Publish per-item messages so the partitioner sees each stratum.
    for item in stream {
        producer.send(vec![item]);
    }
    // Each stratum must live on exactly one partition (hash collisions may
    // co-locate different strata, which is fine).
    let mut home: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for p in 0..topic.num_partitions() {
        for message in topic.read_from(p, 0, usize::MAX) {
            for item in &message.items {
                if let Some(prev) = home.insert(item.stratum.0, p) {
                    assert_eq!(
                        prev, p,
                        "stratum {} split across partitions {prev} and {p}",
                        item.stratum.0
                    );
                }
            }
        }
    }
    assert_eq!(home.len(), 3, "all three protocols published");
}

#[test]
fn replay_framing_matches_paper_methodology() {
    // §6.1: messages of 200 items.
    let stream: Vec<StreamItem<u64>> = (0..1_000)
        .map(|i| StreamItem::new(StratumId(0), EventTime::from_millis(i), i as u64))
        .collect();
    let topic = Topic::new("framed", 1);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    let sent = replay_into(stream, &mut producer, DEFAULT_MESSAGE_SIZE);
    assert_eq!(sent, 5);
    let mut consumer = Consumer::whole_topic(topic);
    for message in consumer.poll(usize::MAX) {
        assert_eq!(message.items.len(), DEFAULT_MESSAGE_SIZE);
    }
}

#[test]
fn merged_substreams_preserve_per_stratum_order_and_counts() {
    let mix = Mix::gaussian([1_000.0, 300.0, 30.0]);
    let parts: Vec<_> = mix
        .substreams()
        .iter()
        .map(|s| s.generate(EventTime::from_millis(0), 2_000, 4))
        .collect();
    let counts: Vec<usize> = parts.iter().map(Vec::len).collect();
    let merged = merge_by_time(parts);
    for (k, &expected) in counts.iter().enumerate() {
        let got = merged
            .iter()
            .filter(|i| i.stratum == StratumId(k as u32))
            .count();
        assert_eq!(got, expected, "stratum {k}");
    }
    // Within each stratum, original order survives the merge.
    for k in 0..counts.len() {
        let times: Vec<i64> = merged
            .iter()
            .filter(|i| i.stratum == StratumId(k as u32))
            .map(|i| i.time.as_millis())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

#[test]
fn multiple_consumers_do_not_interfere() {
    let stream = Mix::gaussian([500.0, 100.0, 10.0]).generate(1_000, 5);
    let total = stream.len();
    let topic = Topic::new("shared", 3);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    replay_into(stream, &mut producer, 50);

    // Two independent whole-topic consumers each see the full stream.
    let mut a = Consumer::whole_topic(topic.clone());
    let mut b = Consumer::whole_topic(topic);
    assert_eq!(a.poll_items(usize::MAX).len(), total);
    assert_eq!(b.poll_items(usize::MAX).len(), total);
}
