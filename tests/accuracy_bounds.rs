//! Accuracy and adaptive-budget behaviour across the full stack: cost
//! policies steering sample sizes, skew resistance, and budget validation.

use sa_batched::Cluster;
use sa_estimate::accuracy_loss;
use sa_types::{Confidence, QueryBudget, WindowSpec};
use sa_workloads::Mix;
use streamapprox::{
    policy_for_budget, run_batched, AccuracyPolicy, BatchedConfig, BatchedSystem, FixedFraction,
    LatencyPolicy, Query, TokenPolicy,
};

fn config() -> BatchedConfig {
    BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500)
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
}

#[test]
fn higher_fraction_means_lower_loss_on_skewed_input() {
    // The monotonicity behind Figures 4(b), 6(c): accuracy improves with
    // the sampling fraction. Averaged over seeds to suppress noise.
    let mut losses = Vec::new();
    for &fraction in &[0.1, 0.4, 0.8] {
        let mut total = 0.0;
        let mut n = 0usize;
        for seed in 0..8 {
            let items = Mix::gaussian_skewed(5_000.0).generate(3_000, seed);
            let exact = run_batched(
                &config(),
                BatchedSystem::Native,
                &query(),
                &mut FixedFraction(1.0),
                items.clone(),
            );
            let approx = run_batched(
                &config().with_seed(seed * 31),
                BatchedSystem::StreamApprox,
                &query(),
                &mut FixedFraction(fraction),
                items,
            );
            for (a, e) in approx.windows.iter().zip(&exact.windows) {
                if e.mean.value != 0.0 {
                    total += accuracy_loss(a.mean.value, e.mean.value);
                    n += 1;
                }
            }
        }
        losses.push(total / n as f64);
    }
    assert!(
        losses[0] > losses[2],
        "loss did not fall with fraction: {losses:?}"
    );
}

#[test]
fn accuracy_policy_converges_to_target() {
    // Feed a long stream; the controller must end up holding the reported
    // relative error near the target.
    let items = Mix::gaussian([3_000.0, 600.0, 60.0]).generate(20_000, 5);
    let mut policy = AccuracyPolicy::new(0.02, 32, 8, 100_000);
    let out = run_batched(
        &config(),
        BatchedSystem::StreamApprox,
        &query().with_confidence(Confidence::P95),
        &mut policy,
        items,
    );
    // Skip the warm-up half, then check the reported bounds.
    let tail = &out.windows[out.windows.len() / 2..];
    let mut ok = 0usize;
    let mut total = 0usize;
    for w in tail {
        if w.mean.value == 0.0 {
            continue;
        }
        total += 1;
        if w.mean.relative_error() <= 0.04 {
            ok += 1;
        }
    }
    assert!(
        ok as f64 >= total as f64 * 0.8,
        "only {ok}/{total} windows within 2× of the accuracy target"
    );
}

#[test]
fn latency_policy_reduces_work_under_pressure() {
    let items = Mix::gaussian([20_000.0, 4_000.0, 400.0]).generate(6_000, 6);
    // A target far below the engine's irreducible per-interval overhead
    // (thread-pool dispatch alone costs tens of microseconds) forces the
    // fraction down on any machine, however fast.
    let mut policy = LatencyPolicy::new_micros(10, 0.02);
    let out = run_batched(
        &config(),
        BatchedSystem::StreamApprox,
        &query(),
        &mut policy,
        items,
    );
    assert!(
        out.effective_fraction() < 0.9,
        "latency policy never shed load: fraction {}",
        out.effective_fraction()
    );
    assert!(policy.fraction() < 1.0);
}

#[test]
fn token_policy_caps_aggregated_items() {
    let items = Mix::gaussian([5_000.0, 1_000.0, 100.0]).generate(4_000, 7);
    // 300 tokens per interval, 1 token per item → ≤ 300 sampled per pane
    // (plus slack for strata rounding).
    let mut policy = TokenPolicy::new(300, 1);
    let out = run_batched(
        &config(),
        BatchedSystem::StreamApprox,
        &query(),
        &mut policy,
        items,
    );
    let panes = 4_000 / 500;
    assert!(
        out.items_aggregated <= (panes as u64 + 1) * 310,
        "aggregated {} items",
        out.items_aggregated
    );
}

#[test]
fn budget_round_trip_through_policies() {
    let items = Mix::gaussian([1_000.0, 200.0, 20.0]).generate(2_000, 8);
    for budget in [
        QueryBudget::SampleFraction(0.5),
        QueryBudget::SampleSize(64),
        QueryBudget::ResourceTokens(200),
        QueryBudget::Accuracy {
            max_relative_error: 0.05,
            confidence: Confidence::P95,
        },
    ] {
        let mut policy = policy_for_budget(budget).expect("valid budget");
        let out = run_batched(
            &config(),
            BatchedSystem::StreamApprox,
            &query(),
            policy.as_mut(),
            items.clone(),
        );
        assert!(!out.windows.is_empty(), "{budget}: no windows");
        assert!(out.items_ingested > 0);
    }
}

#[test]
fn poisson_long_tail_streamapprox_beats_srs() {
    // Figure 6(c)'s regime: a 0.01% sub-stream with λ = 10⁸ values. SRS
    // routinely misses it; OASRS must not. Compare mean accuracy loss.
    let mut sa_loss = 0.0;
    let mut srs_loss = 0.0;
    let mut n = 0usize;
    for seed in 0..6 {
        let items = Mix::poisson_skewed(8_000.0).generate(4_000, seed);
        let exact = run_batched(
            &config(),
            BatchedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            items.clone(),
        );
        let sa = run_batched(
            &config().with_seed(seed),
            BatchedSystem::StreamApprox,
            &query(),
            &mut FixedFraction(0.2),
            items.clone(),
        );
        let srs = run_batched(
            &config().with_seed(seed),
            BatchedSystem::Srs,
            &query(),
            &mut FixedFraction(0.2),
            items,
        );
        for ((e, a), s) in exact.windows.iter().zip(&sa.windows).zip(&srs.windows) {
            if e.mean.value == 0.0 {
                continue;
            }
            sa_loss += accuracy_loss(a.mean.value, e.mean.value);
            srs_loss += accuracy_loss(s.mean.value, e.mean.value);
            n += 1;
        }
    }
    assert!(n > 0);
    assert!(
        sa_loss < srs_loss,
        "StreamApprox loss {} not below SRS loss {} on long-tail data",
        sa_loss / n as f64,
        srs_loss / n as f64
    );
}

#[test]
fn invalid_budgets_are_rejected_up_front() {
    for bad in [
        QueryBudget::SampleFraction(0.0),
        QueryBudget::SampleFraction(1.5),
        QueryBudget::SampleSize(0),
        QueryBudget::LatencyMillis(0),
        QueryBudget::ResourceTokens(0),
    ] {
        assert!(policy_for_budget(bad).is_err(), "{bad} accepted");
    }
}
