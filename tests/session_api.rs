//! The incremental session API: early window observability (the
//! unbounded-stream property the one-shot API could not express),
//! ordering enforcement, status reporting, the aggregated consumer-path
//! engine, and consumer-fed sessions.

use sa_aggregator::{replay_into, Consumer, Partitioner, Producer, Topic};
use sa_batched::Cluster;
use sa_types::{EventTime, SaError, SessionStatus, StratumId, StreamItem, WindowSpec};
use sa_workloads::Mix;
use streamapprox::{
    run_batched, AggregatedConfig, BatchedConfig, BatchedSystem, FixedFraction, PipelinedConfig,
    PipelinedSystem, Query, StreamApprox,
};

fn items(seed: u64) -> Vec<StreamItem<f64>> {
    Mix::gaussian([3_000.0, 800.0, 80.0]).generate(5_000, seed)
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_millis(2_000, 1_000))
}

fn batched_config() -> BatchedConfig {
    BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500)
}

/// The headline property: a window result is observable through
/// `poll_windows()` while the session still has input ahead of it — no
/// "wait for the whole Vec".
#[test]
fn windows_are_observable_before_the_stream_ends() {
    let stream = items(21);
    let total = stream.len();
    let mut policy = FixedFraction(0.4);
    let mut session = StreamApprox::new(query(), &mut policy)
        .batched(batched_config().with_system(BatchedSystem::StreamApprox))
        .start();

    // Push only items from the first ~2.1 seconds of the 5-second stream;
    // well over half of it is still unpushed, but the [0s,2s) window has
    // closed.
    let cutoff = EventTime::from_millis(2_100);
    let mut fed = 0usize;
    let mut early_windows = Vec::new();
    for item in &stream {
        if item.time >= cutoff {
            break;
        }
        session.push(*item).expect("in order");
        fed += 1;
        early_windows.extend(session.poll_windows());
    }
    assert!(fed < total / 2, "cutoff should leave most of the stream");
    assert!(
        !early_windows.is_empty(),
        "no window observable before end of input"
    );
    for w in &early_windows {
        assert!(w.window.end <= cutoff, "window {} not closed yet", w.window);
        let (lo, hi) = w.mean.interval();
        assert!(lo <= hi);
    }

    // Feeding the rest and finishing yields exactly the one-shot result.
    session
        .push_batch(stream.iter().skip(fed).cloned())
        .expect("in order");
    let late = session.finish();
    let mut all = early_windows;
    all.extend(late.windows);
    let oneshot = run_batched(
        &batched_config(),
        BatchedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.4),
        stream,
    );
    assert_eq!(all, oneshot.windows, "early polling changed the results");
    assert_eq!(late.items_ingested, oneshot.items_ingested);
    assert_eq!(late.items_aggregated, oneshot.items_aggregated);
}

/// The same unbounded-stream property on the pipelined engine, whose
/// stages run concurrently: windows surface while the source is open.
#[test]
fn pipelined_windows_surface_while_the_stream_is_open() {
    let stream = items(22);
    let mut policy = FixedFraction(0.5);
    let mut session = StreamApprox::new(query(), &mut policy)
        .pipelined(PipelinedConfig::new().with_system(PipelinedSystem::StreamApprox))
        .start();
    let cutoff = EventTime::from_millis(4_000);
    let mut pushed_all = true;
    for item in &stream {
        if item.time >= cutoff {
            pushed_all = false;
            break;
        }
        session.push(*item).expect("in order");
    }
    assert!(!pushed_all, "stream should extend past the cutoff");
    // The topology processes asynchronously: wait (bounded) for the first
    // closed window to cross the sink.
    let mut early = Vec::new();
    for _ in 0..2_000 {
        early.extend(session.poll_windows());
        if !early.is_empty() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(
        !early.is_empty(),
        "no pipelined window surfaced while input remained"
    );
    let _ = session.finish();
}

/// The aggregated consumer-path engine: incremental and chunked feeding
/// are bit-for-bit identical, and the sampled answer tracks the truth.
#[test]
fn aggregated_engine_is_chunk_invariant_and_accurate() {
    let stream = items(23);
    let run = |chunk: usize| {
        let mut policy = FixedFraction(0.3);
        let mut session = StreamApprox::new(query(), &mut policy)
            .aggregated(AggregatedConfig::new().with_seed(7u64))
            .start();
        let mut windows = Vec::new();
        for chunk in stream.chunks(chunk) {
            session.push_batch(chunk.iter().cloned()).expect("in order");
            windows.extend(session.poll_windows());
        }
        let out = session.finish();
        windows.extend(out.windows.clone());
        (windows, out.items_ingested, out.items_aggregated)
    };
    let (one, ingested_one, aggregated_one) = run(1);
    let (chunked, ingested_chunked, aggregated_chunked) = run(97);
    assert_eq!(one, chunked, "chunking changed aggregated-engine results");
    assert_eq!(ingested_one, ingested_chunked);
    assert_eq!(aggregated_one, aggregated_chunked);
    assert!(aggregated_one < ingested_one, "sampling actually happened");

    // Accuracy: compare against batched native ground truth per window.
    let exact = run_batched(
        &batched_config(),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        stream,
    );
    for w in &one {
        let truth = exact
            .windows
            .iter()
            .find(|e| e.window == w.window)
            .expect("window present in native run");
        if truth.mean.value != 0.0 {
            let loss = sa_estimate::accuracy_loss(w.mean.value, truth.mean.value);
            assert!(loss < 0.2, "{}: loss {loss}", w.window);
        }
    }
}

/// A session fed straight from an aggregator consumer — the deployment
/// loop that used to be ad-hoc glue (poll everything, sort, run one-shot)
/// — produces exactly the one-shot result.
#[test]
fn consumer_fed_session_matches_oneshot() {
    let mix = Mix::gaussian([1_000.0, 200.0, 20.0]);
    let substreams: Vec<_> = mix
        .substreams()
        .iter()
        .map(|s| s.generate(EventTime::from_millis(0), 2_000, 7))
        .collect();
    let merged = sa_aggregator::merge_by_time(substreams);
    let total = merged.len();

    // One partition: the aggregator's job in the paper is to combine the
    // sub-streams into a single time-ordered input stream (§2.1).
    let topic = Topic::new("input", 1);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    replay_into(merged.clone(), &mut producer, 200);

    let mut policy = FixedFraction(0.5);
    let mut session = StreamApprox::new(
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000)),
        &mut policy,
    )
    .batched(batched_config().with_system(BatchedSystem::StreamApprox))
    .start();
    let mut consumer = Consumer::whole_topic(topic);
    let mut windows = Vec::new();
    loop {
        let ingest = session
            .ingest_consumer(&mut consumer, 5)
            .expect("engine alive");
        assert_eq!(
            ingest.dropped_late, 0,
            "single-partition replay is time-ordered"
        );
        windows.extend(session.poll_windows());
        if ingest.ingested == 0 && consumer.is_caught_up() {
            break;
        }
    }
    let out = session.finish();
    assert_eq!(out.items_ingested, total as u64);
    windows.extend(out.windows);

    let oneshot = run_batched(
        &batched_config(),
        BatchedSystem::StreamApprox,
        &Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000)),
        &mut FixedFraction(0.5),
        merged,
    );
    assert_eq!(windows, oneshot.windows);
}

/// A consumer whose delivery interleaves partitions out of event-time
/// order cannot have its already-polled items retried, so the session
/// drops the late ones explicitly and keeps the rest — no silent loss of
/// in-order items, and the run completes.
#[test]
fn consumer_late_items_are_dropped_not_lost() {
    // Two partitions round-robin: per-item messages land alternately, so
    // a whole-topic consumer sees times interleaved out of order.
    let topic = Topic::new("ragged", 2);
    let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
    for ms in [0i64, 500, 100, 600, 200, 700] {
        producer.send(vec![StreamItem::new(
            StratumId(0),
            EventTime::from_millis(ms),
            1.0f64,
        )]);
    }
    let mut policy = FixedFraction(1.0);
    let mut session = StreamApprox::new(
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000)),
        &mut policy,
    )
    .start();
    let mut consumer = Consumer::whole_topic(topic);
    let mut total = sa_types::IngestCounters::default();
    loop {
        // One message per poll: the fair rotation alternates partitions,
        // so delivery interleaves 0, 500, 100, ... — the 100 is late.
        let ingest = session
            .ingest_consumer(&mut consumer, 1)
            .expect("engine alive");
        total.absorb(ingest);
        if ingest.ingested == 0 && consumer.is_caught_up() {
            break;
        }
    }
    assert_eq!(total.offered(), 6, "every polled item accounted for");
    assert!(
        total.dropped_late > 0,
        "interleaved partitions must produce late items"
    );
    // The per-call deltas and the session's run-wide accounting agree.
    assert_eq!(session.status().ingest, total);
    let out = session.finish();
    assert_eq!(out.items_ingested, total.ingested);
}

/// A single item with a far-future timestamp must cost O(1) work, not one
/// empty pane per elapsed interval — the live API accepts untrusted
/// timestamps, so a year-long event-time gap cannot hang the session or
/// flood it with empty windows. Incremental and one-shot stay identical.
#[test]
fn far_future_item_is_bounded_work_on_every_engine() {
    let mut stream: Vec<StreamItem<f64>> = (0..2_000)
        .map(|ms| StreamItem::new(StratumId(0), EventTime::from_millis(ms), 1.0))
        .collect();
    // ~32 years of event time later.
    stream.push(StreamItem::new(
        StratumId(0),
        EventTime::from_millis(1_000_000_000_000),
        5.0,
    ));

    // Batched: session == one-shot across the gap, few windows, fast.
    let mut policy = FixedFraction(0.5);
    let mut session = StreamApprox::new(query(), &mut policy)
        .batched(batched_config().with_system(BatchedSystem::StreamApprox))
        .start();
    session
        .push_batch(stream.iter().copied())
        .expect("in order");
    let out = session.finish();
    assert!(
        out.windows.len() < 20,
        "gap materialized {} windows",
        out.windows.len()
    );
    let oneshot = run_batched(
        &batched_config(),
        BatchedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.5),
        stream.clone(),
    );
    assert_eq!(out.windows, oneshot.windows);
    // The data at both edges of the gap is still answered.
    assert_eq!(out.items_ingested, 2_001);

    // Aggregated: same bounded behavior.
    let mut p2 = FixedFraction(0.5);
    let mut agg = StreamApprox::new(query(), &mut p2).start();
    agg.push_batch(stream.iter().copied()).expect("in order");
    let agg_out = agg.finish();
    assert!(agg_out.windows.len() < 20);
    assert_eq!(agg_out.items_ingested, 2_001);
}

/// Ordering is enforced uniformly at the session layer, for every engine.
/// `push_batch` drops late items and continues — one straggler no longer
/// aborts the rest of the batch — with the same accounting as
/// `ingest_consumer`, and the kept subsequence behaves exactly as if the
/// clean stream had been pushed alone.
#[test]
fn push_batch_drops_late_items_and_continues() {
    let at = |ms: i64, v: f64| StreamItem::new(StratumId(0), EventTime::from_millis(ms), v);
    // Two stragglers interleaved: 50 is behind 100, and 150 behind 200.
    let ragged = vec![
        at(0, 1.0),
        at(100, 2.0),
        at(50, -1.0),
        at(200, 3.0),
        at(150, -2.0),
        at(2_300, 4.0),
    ];
    let clean: Vec<_> = ragged.iter().copied().filter(|i| i.value > 0.0).collect();

    let run = |items: &[StreamItem<f64>]| {
        let mut policy = FixedFraction(1.0);
        let mut session = StreamApprox::new(query(), &mut policy).start();
        let delta = session
            .push_batch(items.iter().copied())
            .expect("engine up");
        (delta, session.status(), session.finish())
    };
    let (delta, status, out) = run(&ragged);
    assert_eq!(delta.ingested, 4);
    assert_eq!(delta.dropped_late, 2);
    assert_eq!(status.ingest, delta, "delta must equal run-wide accounting");
    assert_eq!(status.ingest.offered(), ragged.len() as u64);
    assert_eq!(status.watermark, Some(EventTime::from_millis(2_300)));

    let (clean_delta, clean_status, clean_out) = run(&clean);
    assert_eq!(clean_delta.ingested, 4);
    assert_eq!(clean_delta.dropped_late, 0);
    assert_eq!(clean_status.watermark, status.watermark);
    assert_eq!(
        out.windows, clean_out.windows,
        "dropped stragglers leaked into the windows"
    );

    // A fully late batch is a no-op, not an error, and the session stays
    // usable afterwards.
    let mut policy = FixedFraction(1.0);
    let mut session = StreamApprox::new(query(), &mut policy).start();
    session.push(at(1_000, 1.0)).expect("in order");
    let delta = session
        .push_batch(vec![at(10, 0.0), at(20, 0.0)])
        .expect("late is not an error");
    assert_eq!(delta.ingested, 0);
    assert_eq!(delta.dropped_late, 2);
    session.push(at(1_001, 1.0)).expect("still usable");
    let _ = session.finish();
}

#[test]
fn out_of_order_items_are_rejected_on_every_engine() {
    let late = StreamItem::new(StratumId(0), EventTime::from_millis(10), 1.0f64);
    let early = StreamItem::new(StratumId(0), EventTime::from_millis(5), 2.0f64);

    let mut p1 = FixedFraction(0.5);
    let mut batched = StreamApprox::new(query(), &mut p1)
        .batched(batched_config().with_system(BatchedSystem::StreamApprox))
        .start();
    batched.push(late).expect("in order");
    assert!(matches!(
        batched.push(early),
        Err(SaError::OutOfOrder { .. })
    ));
    let _ = batched.finish();

    let mut p2 = FixedFraction(0.5);
    let mut pipelined = StreamApprox::new(query(), &mut p2)
        .pipelined(PipelinedConfig::new().with_system(PipelinedSystem::StreamApprox))
        .start();
    pipelined.push(late).expect("in order");
    assert!(matches!(
        pipelined.push(early),
        Err(SaError::OutOfOrder { .. })
    ));
    let _ = pipelined.finish();

    let mut p3 = FixedFraction(0.5);
    let mut aggregated = StreamApprox::new(query(), &mut p3).start();
    aggregated.push(late).expect("in order");
    assert!(matches!(
        aggregated.push(early),
        Err(SaError::OutOfOrder { .. })
    ));
    let _ = aggregated.finish();
}

/// The status snapshot follows the session through its life.
#[test]
fn status_reflects_session_progress() {
    let mut policy = FixedFraction(1.0);
    let mut session = StreamApprox::new(
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000)),
        &mut policy,
    )
    .batched(batched_config().with_system(BatchedSystem::Native))
    .start();
    assert_eq!(
        session.status(),
        SessionStatus {
            items_pushed: 0,
            windows_completed: 0,
            watermark: None,
            ingest: sa_types::IngestCounters::default(),
            shards: Vec::new(),
            workers: Vec::new(),
            last_checkpoint_pane: None,
            items_since_checkpoint: 0,
            snapshot_bytes: 0,
            degraded_panes: 0,
            lost_items: 0,
        }
    );
    for ms in [0i64, 600, 1_200, 2_400] {
        session
            .push(StreamItem::new(
                StratumId(0),
                EventTime::from_millis(ms),
                1.0,
            ))
            .expect("in order");
    }
    let polled = session.poll_windows();
    let status = session.status();
    assert_eq!(status.items_pushed, 4);
    assert_eq!(status.watermark, Some(EventTime::from_millis(2_400)));
    assert_eq!(status.windows_completed, polled.len() as u64);
    assert!(!polled.is_empty());
    let _ = session.finish();
}

/// Debug coverage for the builder-facing configuration types, so test
/// failures can print them.
#[test]
fn configs_and_query_are_debuggable() {
    let q = format!("{:?}", query());
    assert!(q.contains("Query") && q.contains("window"));
    let b = format!("{:?}", batched_config());
    assert!(b.contains("BatchedConfig") && b.contains("batch_interval_ms"));
    let p = format!("{:?}", PipelinedConfig::new());
    assert!(p.contains("PipelinedConfig") && p.contains("expected_pane_items"));
    let a = format!("{:?}", AggregatedConfig::default());
    assert!(a.contains("AggregatedConfig") && a.contains("pane_interval_ms"));
    let mut policy = FixedFraction(0.5);
    let builder = StreamApprox::new(query(), &mut policy);
    assert!(format!("{builder:?}").contains("StreamApprox"));
}
