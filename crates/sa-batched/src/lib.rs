//! A batched stream-processing engine — the Apache Spark Streaming analogue
//! of the StreamApprox reproduction (§2.2, §4.1.1 of the paper).
//!
//! Three layers:
//!
//! * [`Cluster`] — a persistent worker pool with a `nodes × cores`
//!   topology; every stage is a real synchronization barrier.
//! * [`Pds`] — a partitioned dataset (RDD analogue) with narrow
//!   transformations, hash-shuffle wide transformations, and the sampling
//!   operators the paper benchmarks: Bernoulli `sample_fraction`,
//!   distributed-ScaSRS `sample_exact` (SRS baseline), and the
//!   groupBy-then-sort `sample_stratified_exact` (STS baseline).
//! * [`MicroBatcher`] — event-time micro-batch formation, the front door
//!   of the batched model.
//!
//! The division of labour with the `streamapprox` crate: this crate is the
//! *substrate* (it knows nothing about query budgets or error bounds);
//! StreamApprox's Spark-style runner samples items with OASRS **before**
//! handing them to [`Pds::from_vec`], while the baselines build the full
//! `Pds` first and sample inside the engine — reproducing exactly the
//! architectural difference the paper measures.
//!
//! # Example
//!
//! ```
//! use sa_batched::{Cluster, MicroBatcher, Pds};
//! use sa_types::{StreamItem, StratumId, EventTime};
//!
//! let cluster = Cluster::new(2);
//! let items: Vec<_> = (0..100)
//!     .map(|i| StreamItem::new(StratumId(0), EventTime::from_millis(i * 10), i as u64))
//!     .collect();
//! let mut total = 0u64;
//! for batch in MicroBatcher::new(items.into_iter(), 250) {
//!     let pds = Pds::from_vec(batch.items, 4);
//!     total += pds
//!         .map(&cluster, |it| it.value)
//!         .aggregate(&cluster, 0u64, |a, x| a + x, |a, b| a + b);
//! }
//! assert_eq!(total, (0..100).sum::<u64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod pds;
mod streaming;

pub use cluster::Cluster;
pub use pds::Pds;
pub use streaming::{completed_windows, MicroBatch, MicroBatcher};
