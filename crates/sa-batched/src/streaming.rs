//! Micro-batch formation: the batched stream-processing model (§2.2).
//!
//! "An input data stream is divided into small batches using a pre-defined
//! batch interval, and each such batch is processed via a distributed
//! data-parallel job." [`MicroBatcher`] performs the division by event time;
//! what job runs per batch is the caller's business (the StreamApprox
//! runners sample *before* forming the dataset, the baselines after).

use sa_types::{EventTime, StreamItem, Window, WindowSpec};

/// One micro-batch: the items whose event times fall in `[window.start,
/// window.end)` for a batch-interval-sized window.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroBatch<T> {
    /// The batch's time span (length = batch interval).
    pub window: Window,
    /// Items in event-time order.
    pub items: Vec<StreamItem<T>>,
}

impl<T> MicroBatch<T> {
    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the interval saw no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Splits a time-ordered item stream into contiguous micro-batches of
/// `batch_interval_ms`, emitting empty batches for quiet intervals so
/// downstream window bookkeeping sees every pane.
///
/// # Example
///
/// ```
/// use sa_batched::MicroBatcher;
/// use sa_types::{StreamItem, StratumId, EventTime};
///
/// let items = vec![
///     StreamItem::new(StratumId(0), EventTime::from_millis(100), 1u32),
///     StreamItem::new(StratumId(0), EventTime::from_millis(1_200), 2u32),
/// ];
/// let batches: Vec<_> = MicroBatcher::new(items.into_iter(), 500).collect();
/// // Batches [0,500) [500,1000) [1000,1500): the middle one is empty.
/// assert_eq!(batches.len(), 3);
/// assert_eq!(batches[0].len(), 1);
/// assert!(batches[1].is_empty());
/// assert_eq!(batches[2].len(), 1);
/// ```
#[derive(Debug)]
pub struct MicroBatcher<T, I: Iterator<Item = StreamItem<T>>> {
    input: std::iter::Peekable<I>,
    batch_interval_ms: i64,
    next_start: Option<EventTime>,
}

impl<T, I: Iterator<Item = StreamItem<T>>> MicroBatcher<T, I> {
    /// Creates a batcher over a time-ordered input stream.
    ///
    /// # Panics
    ///
    /// Panics if `batch_interval_ms` is not positive.
    pub fn new(input: I, batch_interval_ms: i64) -> Self {
        assert!(batch_interval_ms > 0, "batch interval must be positive");
        MicroBatcher {
            input: input.peekable(),
            batch_interval_ms,
            next_start: None,
        }
    }

    /// The batch interval in milliseconds.
    pub fn batch_interval_ms(&self) -> i64 {
        self.batch_interval_ms
    }

    fn batch_start_for(&self, t: EventTime) -> EventTime {
        let ms = t.as_millis().div_euclid(self.batch_interval_ms) * self.batch_interval_ms;
        EventTime::from_millis(ms)
    }
}

impl<T, I: Iterator<Item = StreamItem<T>>> Iterator for MicroBatcher<T, I> {
    type Item = MicroBatch<T>;

    fn next(&mut self) -> Option<MicroBatch<T>> {
        let start = match self.next_start {
            Some(s) => s,
            None => {
                // Align the first batch to the first item's interval.
                let first_time = self.input.peek()?.time;
                let s = self.batch_start_for(first_time);
                self.next_start = Some(s);
                s
            }
        };
        // If the input is exhausted and no batch is pending, stop.
        self.input.peek()?;
        let end = start + self.batch_interval_ms;
        let window = Window::new(start, end);
        let mut items = Vec::new();
        while let Some(peeked) = self.input.peek() {
            debug_assert!(
                peeked.time >= start,
                "input items must be in event-time order"
            );
            if peeked.time < end {
                items.push(self.input.next().expect("peeked item"));
            } else {
                break;
            }
        }
        self.next_start = Some(end);
        Some(MicroBatch { window, items })
    }
}

/// Enumerates the sliding windows of `spec` that are *complete* once every
/// batch up to `watermark` has been processed — i.e. windows whose end is
/// at or before the watermark and after `previous_watermark`.
pub fn completed_windows(
    spec: WindowSpec,
    previous_watermark: EventTime,
    watermark: EventTime,
) -> Vec<Window> {
    let slide = spec.slide_millis();
    let size = spec.size_millis();
    let mut out = Vec::new();
    // Window ends are at start + size where start is a multiple of slide.
    let first_end = {
        let prev = previous_watermark.as_millis();
        // Smallest end > prev.
        let k = (prev - size).div_euclid(slide) + 1;
        k.max(0) * slide + size
    };
    let mut end = first_end;
    while end <= watermark.as_millis() {
        let start = end - size;
        if start >= 0 {
            out.push(Window::new(
                EventTime::from_millis(start),
                EventTime::from_millis(end),
            ));
        }
        end += slide;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::StratumId;

    fn item(ms: i64) -> StreamItem<u32> {
        StreamItem::new(StratumId(0), EventTime::from_millis(ms), ms as u32)
    }

    #[test]
    fn batches_partition_the_stream() {
        let items: Vec<_> = (0..1_000).map(|i| item(i * 7)).collect();
        let batches: Vec<_> = MicroBatcher::new(items.into_iter(), 500).collect();
        let total: usize = batches.iter().map(MicroBatch::len).sum();
        assert_eq!(total, 1_000);
        for b in &batches {
            assert_eq!(b.window.len_millis(), 500);
            for it in &b.items {
                assert!(b.window.contains(it.time));
            }
        }
        // Batches are contiguous.
        for w in batches.windows(2) {
            assert_eq!(w[0].window.end, w[1].window.start);
        }
    }

    #[test]
    fn empty_input_yields_no_batches() {
        let batches: Vec<_> =
            MicroBatcher::new(std::iter::empty::<StreamItem<u32>>(), 100).collect();
        assert!(batches.is_empty());
    }

    #[test]
    fn quiet_intervals_become_empty_batches() {
        let items = vec![item(0), item(2_500)];
        let batches: Vec<_> = MicroBatcher::new(items.into_iter(), 1_000).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 1);
        assert!(batches[1].is_empty());
        assert_eq!(batches[2].len(), 1);
    }

    #[test]
    fn first_batch_aligns_to_interval_grid() {
        let items = vec![item(1_250), item(1_400)];
        let batches: Vec<_> = MicroBatcher::new(items.into_iter(), 500).collect();
        assert_eq!(batches[0].window.start, EventTime::from_millis(1_000));
    }

    #[test]
    #[should_panic(expected = "batch interval must be positive")]
    fn zero_interval_rejected() {
        let _ = MicroBatcher::new(std::iter::empty::<StreamItem<u32>>(), 0);
    }

    #[test]
    fn completed_windows_progress_with_watermark() {
        let spec = WindowSpec::sliding_secs(10, 5);
        // Watermark moves 0 → 10s: the [0,10) window completes.
        let w1 = completed_windows(spec, EventTime::from_secs(0), EventTime::from_secs(10));
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].start, EventTime::from_secs(0));
        // 10s → 20s: [5,15) and [10,20) complete.
        let w2 = completed_windows(spec, EventTime::from_secs(10), EventTime::from_secs(20));
        assert_eq!(w2.len(), 2);
        assert_eq!(w2[0].start, EventTime::from_secs(5));
        assert_eq!(w2[1].start, EventTime::from_secs(10));
    }

    #[test]
    fn completed_windows_no_duplicates_across_calls() {
        let spec = WindowSpec::sliding_secs(10, 5);
        let mut all = Vec::new();
        let mut prev = EventTime::from_secs(0);
        for s in [7i64, 13, 18, 25, 40] {
            let wm = EventTime::from_secs(s);
            all.extend(completed_windows(spec, prev, wm));
            prev = wm;
        }
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all, dedup);
        // Windows arrive in order.
        for w in all.windows(2) {
            assert!(w[0].end <= w[1].end);
        }
    }
}
