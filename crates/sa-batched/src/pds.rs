//! `Pds` — a partitioned dataset, the engine's RDD analogue.
//!
//! A [`Pds<T>`] holds its data as owned partitions and executes
//! transformations as parallel stages on a [`Cluster`]. Narrow
//! transformations (`map`, `filter`, `map_partitions`) run one task per
//! partition with no data movement; wide transformations (`group_by_key`,
//! `reduce_by_key`) perform a real hash shuffle with a stage barrier, and
//! charge a simulated serialization cost (clone + drop) for records that
//! cross node boundaries — the synchronization the paper blames for
//! Spark-based STS's poor scaling (§4.1.1, §5.2).
//!
//! Lineage tracking and fault tolerance are out of scope: the paper's
//! evaluation never kills workers, so recomputation machinery would be dead
//! weight in every measurement.

use crate::cluster::Cluster;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_sampling::{scasrs_sample, scasrs_thresholds, SCASRS_DELTA};
use sa_types::{StratifiedSample, StratumId, StratumSample};
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::Arc;

/// A partitioned dataset executed on a [`Cluster`].
///
/// # Example
///
/// ```
/// use sa_batched::{Cluster, Pds};
///
/// let cluster = Cluster::new(4);
/// let pds = Pds::from_vec((0..1_000).collect::<Vec<u32>>(), 8);
/// let total: u64 = pds
///     .map(&cluster, |x| u64::from(x) * 2)
///     .collect()
///     .into_iter()
///     .sum();
/// assert_eq!(total, 999_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pds<T> {
    partitions: Vec<Vec<T>>,
}

impl<T: Send + 'static> Pds<T> {
    /// Splits a vector into `num_partitions` contiguous chunks.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions` is zero.
    pub fn from_vec(data: Vec<T>, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "dataset needs at least one partition");
        let n = data.len();
        let chunk = n.div_ceil(num_partitions).max(1);
        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(num_partitions);
        let mut data = data.into_iter();
        for _ in 0..num_partitions {
            partitions.push(data.by_ref().take(chunk).collect());
        }
        Pds { partitions }
    }

    /// Wraps pre-partitioned data.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        assert!(
            !partitions.is_empty(),
            "dataset needs at least one partition"
        );
        Pds { partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of elements (local metadata, no job).
    pub fn count(&self) -> u64 {
        self.partitions.iter().map(|p| p.len() as u64).sum()
    }

    /// Concatenates all partitions on the driver.
    pub fn collect(self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.count() as usize);
        for p in self.partitions {
            out.extend(p);
        }
        out
    }

    /// Borrows the partitions (for tests and window bookkeeping).
    pub fn partitions(&self) -> &[Vec<T>] {
        &self.partitions
    }

    /// Narrow transformation: applies `f` to every element, in parallel per
    /// partition.
    pub fn map<U, F>(self, cluster: &Cluster, f: F) -> Pds<U>
    where
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let partitions = cluster.run(self.partitions, move |_, part| {
            part.into_iter().map(|x| f(x)).collect::<Vec<U>>()
        });
        Pds { partitions }
    }

    /// Narrow transformation: keeps elements satisfying `pred`.
    pub fn filter<F>(self, cluster: &Cluster, pred: F) -> Pds<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let pred = Arc::new(pred);
        let partitions = cluster.run(self.partitions, move |_, part: Vec<T>| {
            part.into_iter().filter(|x| pred(x)).collect::<Vec<T>>()
        });
        Pds { partitions }
    }

    /// Narrow transformation over whole partitions: `f` receives the
    /// partition index and its elements.
    pub fn map_partitions<U, F>(self, cluster: &Cluster, f: F) -> Pds<U>
    where
        U: Send + 'static,
        F: Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let partitions = cluster.run(self.partitions, move |i, part| f(i, part));
        Pds { partitions }
    }

    /// Parallel fold-then-reduce: folds each partition with `fold`, then
    /// combines the per-partition accumulators with `combine` on the driver.
    pub fn aggregate<A, FF, CF>(self, cluster: &Cluster, init: A, fold: FF, combine: CF) -> A
    where
        A: Send + Sync + Clone + 'static,
        FF: Fn(A, T) -> A + Send + Sync + 'static,
        CF: Fn(A, A) -> A,
    {
        let fold = Arc::new(fold);
        let seed = init.clone();
        let partials = cluster.run(self.partitions, move |_, part: Vec<T>| {
            part.into_iter().fold(seed.clone(), |acc, x| fold(acc, x))
        });
        partials.into_iter().fold(init, combine)
    }

    /// Bernoulli sampling per partition — Spark's `sample(withReplacement =
    /// false, fraction)`: one narrow pass, no synchronization, random
    /// output size.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn sample_fraction(self, cluster: &Cluster, fraction: f64, seed: u64) -> Pds<T> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "sampling fraction must be in (0, 1]"
        );
        let partitions = cluster.run(self.partitions, move |i, part: Vec<T>| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37));
            part.into_iter()
                .filter(|_| rng.gen::<f64>() < fraction)
                .collect::<Vec<T>>()
        });
        Pds { partitions }
    }

    /// Exact-size simple random sample — the distributed ScaSRS behind
    /// Spark's `takeSample` and the paper's SRS baseline (§4.1.1): every
    /// partition assigns random keys and applies the two thresholds in
    /// parallel; the surviving wait-list is then **collected to the driver
    /// and sorted** — the synchronization point and sort bottleneck the
    /// paper describes.
    ///
    /// Returns the sampled items repartitioned over the original partition
    /// count.
    pub fn sample_exact(self, cluster: &Cluster, total: usize, seed: u64) -> Pds<T> {
        let n = self.count() as usize;
        let parts = self.num_partitions();
        if total >= n {
            return self;
        }
        if total == 0 {
            return Pds::from_partitions(vec![Vec::new()]);
        }
        let (low, high) = scasrs_thresholds(total, n, SCASRS_DELTA);
        // Map stage: threshold locally.
        let mapped = cluster.run(self.partitions, move |i, part: Vec<T>| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xA511));
            let mut accepted = Vec::new();
            let mut waitlist: Vec<(f64, T)> = Vec::new();
            for item in part {
                let key: f64 = rng.gen();
                if key < low {
                    accepted.push(item);
                } else if key <= high {
                    waitlist.push((key, item));
                }
            }
            (accepted, waitlist)
        });
        // Driver: merge, sort the wait-list, fill up to `total`.
        let mut accepted = Vec::new();
        let mut waitlist = Vec::new();
        for (a, w) in mapped {
            accepted.extend(a);
            waitlist.extend(w);
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1D1);
        if accepted.len() < total {
            waitlist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
            let need = total - accepted.len();
            accepted.extend(waitlist.into_iter().take(need).map(|(_, t)| t));
        } else {
            while accepted.len() > total {
                let victim = rng.gen_range(0..accepted.len());
                accepted.swap_remove(victim);
            }
        }
        Pds::from_vec(accepted, parts)
    }
}

impl<T: Send + Clone + 'static> Pds<T> {
    /// Re-chunks the data into `num_partitions` partitions (full shuffle).
    pub fn repartition(self, cluster: &Cluster, num_partitions: usize) -> Pds<T> {
        let data = self.collect();
        let _ = cluster;
        Pds::from_vec(data, num_partitions)
    }
}

/// Simulates the serialization a Spark shuffle applies to every record it
/// moves (shuffle data is written serialized regardless of destination
/// locality): clone the record and drop the original, costing an
/// allocation/copy proportional to the payload. Cross-node moves pay it
/// twice (write + read over the wire).
fn simulate_transfer<T: Clone>(items: Vec<T>, hops: usize) -> Vec<T> {
    let mut moved = items;
    for _ in 0..hops {
        moved = moved.to_vec();
    }
    moved
}

impl<K, V> Pds<(K, V)>
where
    K: Hash + Eq + Clone + Send + 'static,
    V: Send + Clone + 'static,
{
    /// Wide transformation: groups values by key via a hash shuffle.
    ///
    /// Stage 1 hash-partitions every input partition's records into one
    /// bucket per output partition; the stage barrier is the workers'
    /// synchronization point. Stage 2 concatenates each output partition's
    /// buckets (paying a simulated shuffle serialization per record) and
    /// groups locally. Each key ends up wholly inside one partition.
    pub fn group_by_key(self, cluster: &Cluster) -> Pds<(K, Vec<V>)> {
        let out_parts = self.num_partitions();
        let buckets = self.shuffle_buckets(cluster, out_parts);
        let partitions = cluster.run(buckets, |_, shards: Vec<Vec<(K, V)>>| {
            let mut groups: HashMap<K, Vec<V>, BuildHasherDefault<DefaultHasher>> =
                HashMap::default();
            for shard in shards {
                for (k, v) in shard {
                    groups.entry(k).or_default().push(v);
                }
            }
            groups.into_iter().collect::<Vec<(K, Vec<V>)>>()
        });
        Pds { partitions }
    }

    /// Wide transformation: merges values per key with `f`, combining
    /// map-side first (so the shuffle moves one record per key per
    /// partition, not one per item — the optimization Spark applies and
    /// `group_by_key` lacks).
    pub fn reduce_by_key<F>(self, cluster: &Cluster, f: F) -> Pds<(K, V)>
    where
        F: Fn(V, V) -> V + Send + Sync + 'static,
    {
        let out_parts = self.num_partitions();
        let f = Arc::new(f);
        let f_map = Arc::clone(&f);
        // Map-side combine.
        let combined = cluster.run(self.partitions, move |_, part: Vec<(K, V)>| {
            let mut acc: HashMap<K, V, BuildHasherDefault<DefaultHasher>> = HashMap::default();
            for (k, v) in part {
                match acc.remove(&k) {
                    Some(prev) => {
                        let merged = f_map(prev, v);
                        acc.insert(k, merged);
                    }
                    None => {
                        acc.insert(k, v);
                    }
                }
            }
            acc.into_iter().collect::<Vec<(K, V)>>()
        });
        let combined = Pds {
            partitions: combined,
        };
        let buckets = combined.shuffle_buckets(cluster, out_parts);
        let f_reduce = f;
        let partitions = cluster.run(buckets, move |_, shards: Vec<Vec<(K, V)>>| {
            let mut acc: HashMap<K, V, BuildHasherDefault<DefaultHasher>> = HashMap::default();
            for shard in shards {
                for (k, v) in shard {
                    match acc.remove(&k) {
                        Some(prev) => {
                            let merged = f_reduce(prev, v);
                            acc.insert(k, merged);
                        }
                        None => {
                            acc.insert(k, v);
                        }
                    }
                }
            }
            acc.into_iter().collect::<Vec<(K, V)>>()
        });
        Pds { partitions }
    }

    /// The shuffle core: hash-partition map-side, transpose, and charge
    /// cross-node transfers. Returns, per output partition, the shards
    /// received from every input partition.
    fn shuffle_buckets(self, cluster: &Cluster, out_parts: usize) -> Vec<Vec<Vec<(K, V)>>> {
        let hasher = BuildHasherDefault::<DefaultHasher>::default();
        // Stage 1 (map side): bucket by key hash.
        let bucketed: Vec<Vec<Vec<(K, V)>>> =
            cluster.run(self.partitions, move |_, part: Vec<(K, V)>| {
                let mut buckets: Vec<Vec<(K, V)>> = (0..out_parts).map(|_| Vec::new()).collect();
                for (k, v) in part {
                    let b = (hasher.hash_one(&k) % out_parts as u64) as usize;
                    buckets[b].push((k, v));
                }
                buckets
            });
        // Barrier reached. Transpose buckets to their destination
        // partitions: every shuffled record pays one serialization (as in
        // Spark's shuffle write), and a second when it crosses nodes.
        let mut inbox: Vec<Vec<Vec<(K, V)>>> = (0..out_parts).map(|_| Vec::new()).collect();
        for (src, buckets) in bucketed.into_iter().enumerate() {
            for (dst, bucket) in buckets.into_iter().enumerate() {
                let src_node = cluster.node_of_partition(src);
                let dst_node = cluster.node_of_partition(dst);
                let hops = if src_node != dst_node { 2 } else { 1 };
                inbox[dst].push(simulate_transfer(bucket, hops));
            }
        }
        inbox
    }
}

impl<T: Send + Clone + 'static> Pds<(StratumId, T)> {
    /// The paper's Spark-based STS baseline (§4.1.1): `groupBy(strata)`
    /// (full shuffle) followed by per-stratum exact SRS via the random-sort
    /// method, keeping each stratum's sample proportional to its size.
    /// Returns the weighted stratified sample on the driver.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn sample_stratified_exact(
        self,
        cluster: &Cluster,
        fraction: f64,
        seed: u64,
    ) -> StratifiedSample<T> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "sampling fraction must be in (0, 1]"
        );
        let grouped = self.group_by_key(cluster);
        let sampled = cluster.run(
            grouped.partitions,
            move |i, groups: Vec<(StratumId, Vec<T>)>| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xBEE5));
                groups
                    .into_iter()
                    .map(|(stratum, items)| {
                        let population = items.len() as u64;
                        let target =
                            ((population as f64 * fraction).ceil() as usize).min(items.len());
                        let selected = scasrs_sample(items, target, &mut rng);
                        StratumSample::new(stratum, selected, population, target.max(1))
                    })
                    .collect::<Vec<StratumSample<T>>>()
            },
        );
        sampled.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(4)
    }

    #[test]
    fn from_vec_partitions_evenly() {
        let pds = Pds::from_vec((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(pds.num_partitions(), 3);
        assert_eq!(pds.count(), 10);
        let sizes: Vec<usize> = pds.partitions().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn from_vec_more_partitions_than_items() {
        let pds = Pds::from_vec(vec![1, 2], 5);
        assert_eq!(pds.num_partitions(), 5);
        assert_eq!(pds.count(), 2);
    }

    #[test]
    fn map_filter_roundtrip() {
        let c = cluster();
        let out = Pds::from_vec((0..100).collect::<Vec<i32>>(), 7)
            .map(&c, |x| x * 3)
            .filter(&c, |x| x % 2 == 0)
            .collect();
        let expected: Vec<i32> = (0..100).map(|x| x * 3).filter(|x| x % 2 == 0).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_partitions_sees_partition_index() {
        let c = cluster();
        let out = Pds::from_vec(vec![0u32; 6], 3)
            .map_partitions(&c, |i, part| part.into_iter().map(|_| i).collect())
            .collect();
        assert_eq!(out, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn aggregate_sums() {
        let c = cluster();
        let total = Pds::from_vec((1..=100).collect::<Vec<u64>>(), 8).aggregate(
            &c,
            0u64,
            |acc, x| acc + x,
            |a, b| a + b,
        );
        assert_eq!(total, 5_050);
    }

    #[test]
    fn group_by_key_collects_all_values_per_key() {
        let c = cluster();
        let data: Vec<(u32, u32)> = (0..100).map(|i| (i % 5, i)).collect();
        let grouped = Pds::from_vec(data, 8).group_by_key(&c);
        let mut out = grouped.collect();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 5);
        for (k, mut vals) in out {
            vals.sort_unstable();
            let expected: Vec<u32> = (0..100).filter(|i| i % 5 == k).collect();
            assert_eq!(vals, expected, "key {k}");
        }
    }

    #[test]
    fn group_by_key_keeps_keys_whole() {
        let c = cluster();
        let data: Vec<(u32, u32)> = (0..1_000).map(|i| (i % 17, i)).collect();
        let grouped = Pds::from_vec(data, 6).group_by_key(&c);
        // Every key appears in exactly one partition.
        let mut seen: HashMap<u32, usize> = HashMap::new();
        for (p, part) in grouped.partitions().iter().enumerate() {
            for (k, _) in part {
                if let Some(prev) = seen.insert(*k, p) {
                    assert_eq!(prev, p, "key {k} split across partitions");
                }
            }
        }
        assert_eq!(seen.len(), 17);
    }

    #[test]
    fn reduce_by_key_matches_group_then_fold() {
        let c = cluster();
        let data: Vec<(u32, u64)> = (0..500).map(|i| (i % 7, u64::from(i))).collect();
        let mut reduced = Pds::from_vec(data.clone(), 5)
            .reduce_by_key(&c, |a, b| a + b)
            .collect();
        reduced.sort_by_key(|(k, _)| *k);
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for (k, v) in data {
            *expected.entry(k).or_default() += v;
        }
        let mut expected: Vec<(u32, u64)> = expected.into_iter().collect();
        expected.sort_by_key(|(k, _)| *k);
        assert_eq!(reduced, expected);
    }

    #[test]
    fn sample_fraction_is_roughly_proportional() {
        let c = cluster();
        let out = Pds::from_vec((0..100_000).collect::<Vec<u32>>(), 8)
            .sample_fraction(&c, 0.3, 42)
            .collect();
        let y = out.len() as f64;
        assert!((y - 30_000.0).abs() < 1_500.0, "sampled {y}");
    }

    #[test]
    fn sample_exact_hits_exact_size() {
        let c = cluster();
        for &(n, s) in &[
            (10_000usize, 100usize),
            (10_000, 5_000),
            (100, 100),
            (100, 150),
        ] {
            let out = Pds::from_vec((0..n).collect::<Vec<usize>>(), 8)
                .sample_exact(&c, s, 7)
                .collect();
            assert_eq!(out.len(), s.min(n), "n={n} s={s}");
        }
    }

    #[test]
    fn sample_exact_zero_is_empty() {
        let c = cluster();
        let out = Pds::from_vec((0..50).collect::<Vec<u32>>(), 4)
            .sample_exact(&c, 0, 7)
            .collect();
        assert!(out.is_empty());
    }

    #[test]
    fn stratified_exact_is_proportional_per_stratum() {
        let c = cluster();
        let mut data: Vec<(StratumId, u32)> = Vec::new();
        for i in 0..1_000 {
            data.push((StratumId(0), i));
        }
        for i in 0..100 {
            data.push((StratumId(1), i));
        }
        let sample = Pds::from_vec(data, 8).sample_stratified_exact(&c, 0.2, 3);
        assert_eq!(sample.stratum(StratumId(0)).unwrap().sample_size(), 200);
        assert_eq!(sample.stratum(StratumId(1)).unwrap().sample_size(), 20);
        assert_eq!(sample.stratum(StratumId(0)).unwrap().population, 1_000);
    }

    #[test]
    fn cross_node_shuffle_preserves_data() {
        let c = Cluster::with_topology(3, 2);
        let data: Vec<(u32, u32)> = (0..300).map(|i| (i % 11, i)).collect();
        let grouped = Pds::from_vec(data, 6).group_by_key(&c);
        let total: usize = grouped.collect().iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = Pds::from_vec(vec![1], 0);
    }
}
