//! A persistent worker pool modelling a small cluster: `nodes × cores`
//! workers executing stage tasks, with partition-to-node placement used by
//! the shuffle layer to charge cross-node transfers.

use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads shared by every stage of a batched job.
///
/// The pool is the reproduction's stand-in for the paper's 4-worker-node
/// Spark cluster (§6.1): `nodes` groups of `cores_per_node` workers. The
/// topology matters to the engine in two ways: total parallelism, and which
/// partitions live on which node (cross-node shuffle traffic pays a
/// simulated serialization cost).
///
/// # Example
///
/// ```
/// use sa_batched::Cluster;
///
/// let cluster = Cluster::with_topology(2, 4); // 2 nodes × 4 cores
/// let doubled = cluster.run((0..8).collect(), |_, x: i32| x * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8, 10, 12, 14]);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    nodes: usize,
    cores_per_node: usize,
    /// `None` only during teardown.
    sender: Option<Sender<Job>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Closing the channel makes every worker's `recv` fail and exit;
        // then reap the threads. Errors (a panicked worker) are ignored —
        // destructors must not fail.
        self.sender = None;
        for handle in self.handles.get_mut().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Cluster {
    /// A single-node cluster with `cores` workers.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        Self::with_topology(1, cores)
    }

    /// A cluster of `nodes` nodes with `cores_per_node` workers each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_topology(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(
            cores_per_node > 0,
            "cluster needs at least one core per node"
        );
        let (sender, receiver) = unbounded::<Job>();
        let total = nodes * cores_per_node;
        let handles: Vec<JoinHandle<()>> = (0..total)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("sa-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // Isolate task panics: the worker must survive a
                            // failing task so the pool keeps its capacity;
                            // the failure surfaces on the driver via the
                            // task's unwritten result slot.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawning worker thread")
            })
            .collect();
        Cluster {
            inner: Arc::new(Inner {
                nodes,
                cores_per_node,
                sender: Some(sender),
                handles: Mutex::new(handles),
            }),
        }
    }

    /// Number of nodes in the simulated topology.
    pub fn num_nodes(&self) -> usize {
        self.inner.nodes
    }

    /// Workers per node.
    pub fn cores_per_node(&self) -> usize {
        self.inner.cores_per_node
    }

    /// Total worker count (`nodes × cores_per_node`).
    pub fn num_workers(&self) -> usize {
        self.inner.nodes * self.inner.cores_per_node
    }

    /// The node a partition is placed on (round-robin placement).
    pub fn node_of_partition(&self, partition: usize) -> usize {
        partition % self.inner.nodes
    }

    /// Runs one task per input element in parallel on the pool, returning
    /// the results in input order. The task receives `(index, element)`.
    ///
    /// This is the engine's "stage": every call is a synchronization barrier
    /// — it returns only when all tasks finished, exactly like a Spark stage
    /// boundary.
    pub fn run<T, R, F>(&self, inputs: Vec<T>, task: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        // Run short stages inline: dispatch overhead would dominate.
        let task = Arc::new(task);
        if n == 1 {
            let mut inputs = inputs;
            return vec![task(0, inputs.pop().expect("one input"))];
        }
        let slots: Arc<Vec<Mutex<Option<R>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let wg = WaitGroup::new();
        for (i, input) in inputs.into_iter().enumerate() {
            let task = Arc::clone(&task);
            let slots = Arc::clone(&slots);
            let wg = wg.clone();
            self.inner
                .sender
                .as_ref()
                .expect("pool is alive while a Cluster handle exists")
                .send(Box::new(move || {
                    let r = task(i, input);
                    *slots[i].lock() = Some(r);
                    // Release the slot table before signalling completion so
                    // the waiter can observe a unique Arc.
                    drop(slots);
                    drop(task);
                    drop(wg);
                }))
                .expect("worker pool alive");
        }
        wg.wait();
        slots
            .iter()
            .enumerate()
            .map(|(i, m)| {
                m.lock()
                    .take()
                    .unwrap_or_else(|| panic!("stage task {i} panicked"))
            })
            .collect()
    }
}

impl Default for Cluster {
    /// A cluster sized to the host: one node, one worker per available
    /// core (at least 2).
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(2);
        Cluster::new(cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let cluster = Cluster::new(4);
        let out = cluster.run((0..100).collect(), |i, x: usize| {
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_stage_is_noop() {
        let cluster = Cluster::new(2);
        let out: Vec<i32> = cluster.run(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_task_runs_inline() {
        let cluster = Cluster::new(2);
        let out = cluster.run(vec![41], |_, x: i32| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn tasks_actually_run_concurrently() {
        // All workers must be used: tasks that wait for each other would
        // deadlock a serial executor but finish on a pool of 4.
        let cluster = Cluster::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let out = cluster.run((0..4).collect(), move |_, _x: usize| {
            c2.fetch_add(1, Ordering::SeqCst);
            // Wait until every sibling has started.
            while c2.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
            1
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn topology_placement_is_round_robin() {
        let cluster = Cluster::with_topology(3, 2);
        assert_eq!(cluster.num_workers(), 6);
        assert_eq!(cluster.node_of_partition(0), 0);
        assert_eq!(cluster.node_of_partition(4), 1);
        assert_eq!(cluster.node_of_partition(5), 2);
    }

    #[test]
    fn many_stages_reuse_the_pool() {
        let cluster = Cluster::new(3);
        for round in 0..50 {
            let out = cluster.run(vec![round; 5], |_, x: usize| x + 1);
            assert_eq!(out, vec![round + 1; 5]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Cluster::with_topology(0, 1);
    }
}
