//! Property-based tests for the batched engine: every transformation must
//! agree with its sequential reference implementation for arbitrary data,
//! partitioning and cluster shapes.

use proptest::prelude::*;
use sa_batched::{Cluster, MicroBatcher, Pds};
use sa_types::{EventTime, StratumId, StreamItem};
use std::collections::HashMap;

fn cluster() -> Cluster {
    // Small but parallel; shapes with more workers are exercised in unit
    // tests (property iterations dominate runtime here).
    Cluster::new(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// map on the engine == map on a Vec, independent of partitioning.
    #[test]
    fn map_matches_sequential(
        data in proptest::collection::vec(any::<i32>(), 0..500),
        parts in 1usize..9,
    ) {
        let c = cluster();
        let expected: Vec<i64> = data.iter().map(|&x| i64::from(x) * 3 - 1).collect();
        let got = if data.is_empty() {
            // from_vec requires ≥1 partition; empty data still works.
            Pds::from_vec(data.clone(), parts).map(&c, |x| i64::from(x) * 3 - 1).collect()
        } else {
            Pds::from_vec(data.clone(), parts).map(&c, |x| i64::from(x) * 3 - 1).collect()
        };
        prop_assert_eq!(got, expected);
    }

    /// filter keeps exactly the matching elements in order.
    #[test]
    fn filter_matches_sequential(
        data in proptest::collection::vec(any::<u16>(), 0..500),
        parts in 1usize..6,
        modulus in 2u16..7,
    ) {
        let c = cluster();
        let expected: Vec<u16> = data.iter().copied().filter(|x| x % modulus == 0).collect();
        let got = Pds::from_vec(data, parts)
            .filter(&c, move |x| x % modulus == 0)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// aggregate computes the same fold as a plain iterator.
    #[test]
    fn aggregate_matches_fold(
        data in proptest::collection::vec(-1000i64..1000, 0..400),
        parts in 1usize..5,
    ) {
        let c = cluster();
        let expected: i64 = data.iter().sum();
        let got = Pds::from_vec(data, parts).aggregate(&c, 0i64, |a, x| a + x, |a, b| a + b);
        prop_assert_eq!(got, expected);
    }

    /// group_by_key partitions the multiset exactly: no key lost, no value
    /// duplicated, regardless of cluster topology.
    #[test]
    fn group_by_key_is_a_partition(
        data in proptest::collection::vec((0u32..12, any::<i32>()), 0..400),
        parts in 1usize..6,
        nodes in 1usize..4,
    ) {
        let c = Cluster::with_topology(nodes, 2);
        let mut expected: HashMap<u32, Vec<i32>> = HashMap::new();
        for &(k, v) in &data {
            expected.entry(k).or_default().push(v);
        }
        let grouped = Pds::from_vec(data, parts).group_by_key(&c).collect();
        prop_assert_eq!(grouped.len(), expected.len());
        for (k, mut vals) in grouped {
            let mut want = expected.remove(&k).expect("key existed in input");
            vals.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(vals, want, "key {}", k);
        }
    }

    /// reduce_by_key equals group_by_key + fold for an associative op.
    #[test]
    fn reduce_by_key_matches_grouped_fold(
        data in proptest::collection::vec((0u32..8, 0u64..1000), 0..400),
        parts in 1usize..5,
    ) {
        let c = cluster();
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for &(k, v) in &data {
            *expected.entry(k).or_default() += v;
        }
        let mut got = Pds::from_vec(data, parts)
            .reduce_by_key(&c, |a, b| a + b)
            .collect();
        got.sort_unstable();
        let mut want: Vec<(u32, u64)> = expected.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// sample_exact returns exactly min(k, n) distinct elements of the
    /// input.
    #[test]
    fn sample_exact_size_and_membership(
        n in 0usize..2000,
        k in 0usize..600,
        parts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let c = cluster();
        let mut got = Pds::from_vec((0..n).collect::<Vec<_>>(), parts)
            .sample_exact(&c, k, seed)
            .collect();
        prop_assert_eq!(got.len(), k.min(n));
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got.len(), k.min(n));
        prop_assert!(got.iter().all(|&x| x < n));
    }

    /// Micro-batches tile the stream: contiguous, ordered, non-overlapping,
    /// and every item lands in the batch containing its timestamp.
    #[test]
    fn micro_batches_tile_the_stream(
        gaps in proptest::collection::vec(0i64..600, 1..300),
        interval in 1i64..1000,
    ) {
        // Build a time-ordered stream from cumulative gaps.
        let mut t = 0i64;
        let items: Vec<StreamItem<i64>> = gaps
            .iter()
            .map(|&g| {
                t += g;
                StreamItem::new(StratumId(0), EventTime::from_millis(t), t)
            })
            .collect();
        let total = items.len();
        let batches: Vec<_> = MicroBatcher::new(items.into_iter(), interval).collect();
        let mut count = 0usize;
        for pair in batches.windows(2) {
            prop_assert_eq!(pair[0].window.end, pair[1].window.start);
        }
        for b in &batches {
            prop_assert_eq!(b.window.len_millis(), interval);
            for item in &b.items {
                prop_assert!(b.window.contains(item.time));
                count += 1;
            }
        }
        prop_assert_eq!(count, total);
    }
}

/// A panicking task must not deadlock the pool; the stage reports the
/// failure by panicking on the driver thread.
#[test]
fn panicking_task_fails_the_stage_not_the_pool() {
    let c = Cluster::new(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.run(vec![0u32, 1, 2, 3], |_, x| {
            assert!(x != 2, "injected failure");
            x
        })
    }));
    assert!(result.is_err(), "stage with a panicking task must fail");
    // The pool survives for subsequent stages.
    let ok = c.run(vec![10u32, 20], |_, x| x + 1);
    assert_eq!(ok, vec![11, 21]);
}
