//! Property-based tests for the pipelined engine: multiset preservation,
//! routing invariants, and watermark-driven window correctness across
//! arbitrary stream shapes and topologies.

use proptest::prelude::*;
use sa_pipelined::{Exchange, Flow, Identity, Map, Operator};
use sa_types::{EventTime, StratumId, StreamItem};
use std::collections::BTreeMap;

fn stream(values: &[(u32, i64)]) -> Vec<StreamItem<u32>> {
    // values: (stratum, time-gap) pairs turned into an ordered stream.
    let mut t = 0i64;
    values
        .iter()
        .enumerate()
        .map(|(i, &(s, gap))| {
            t += gap;
            StreamItem::new(StratumId(s % 5), EventTime::from_millis(t), i as u32)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the parallelism and exchange, every item reaches the sink
    /// exactly once.
    #[test]
    fn multiset_preserved_through_any_stage(
        values in proptest::collection::vec((0u32..5, 0i64..50), 0..400),
        parallelism in 1usize..5,
        exchange_sel in 0u8..3,
        wm_interval in 1i64..500,
    ) {
        let exchange = match exchange_sel {
            0 => Exchange::Forward,
            1 => Exchange::Rebalance,
            _ => Exchange::KeyByStratum,
        };
        let input = stream(&values);
        let n = input.len();
        let out = Flow::source(input, wm_interval)
            .then(parallelism, exchange, |_| Identity)
            .collect();
        let mut ids: Vec<u32> = out.iter().map(|i| i.value).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }

    /// Two chained stages compose like function composition.
    #[test]
    fn stages_compose(
        values in proptest::collection::vec((0u32..5, 0i64..50), 0..300),
        p1 in 1usize..4,
        p2 in 1usize..4,
    ) {
        let input = stream(&values);
        let expected: i64 = input.iter().map(|i| (i64::from(i.value) + 7) * 3).sum();
        let out = Flow::source(input, 100)
            .then(p1, Exchange::Rebalance, |_| Map::new(|v: u32| i64::from(v) + 7))
            .then(p2, Exchange::Rebalance, |_| Map::new(|v: i64| v * 3))
            .collect();
        let got: i64 = out.iter().map(|i| i.value).sum();
        prop_assert_eq!(got, expected);
    }

    /// KeyByStratum never splits a stratum across instances.
    #[test]
    fn key_by_keeps_strata_whole(
        values in proptest::collection::vec((0u32..5, 0i64..30), 1..300),
        parallelism in 1usize..5,
    ) {
        struct Tag(usize);
        impl Operator<u32, (usize, u32)> for Tag {
            fn on_item(
                &mut self,
                item: StreamItem<u32>,
                out: &mut dyn FnMut(StreamItem<(usize, u32)>),
            ) {
                let tag = self.0;
                out(item.map(|v| (tag, v)));
            }
        }
        let out = Flow::source(stream(&values), 50)
            .then(parallelism, Exchange::KeyByStratum, Tag)
            .collect();
        let mut homes: BTreeMap<StratumId, usize> = BTreeMap::new();
        for item in &out {
            let (instance, _) = item.value;
            if let Some(prev) = homes.insert(item.stratum, instance) {
                prop_assert_eq!(prev, instance, "stratum {} split", item.stratum);
            }
        }
    }

    /// A tumbling-window counter over the pipeline counts every item
    /// exactly once, for any watermark cadence.
    #[test]
    fn windowed_counts_are_exhaustive(
        values in proptest::collection::vec((0u32..5, 0i64..40), 1..400),
        wm_interval in 1i64..300,
        window_ms in 1i64..500,
    ) {
        struct Counter {
            window_ms: i64,
            counts: BTreeMap<i64, u64>,
        }
        impl Operator<u32, (i64, u64)> for Counter {
            fn on_item(
                &mut self,
                item: StreamItem<u32>,
                _out: &mut dyn FnMut(StreamItem<(i64, u64)>),
            ) {
                let w = item.time.as_millis().div_euclid(self.window_ms);
                *self.counts.entry(w).or_default() += 1;
            }
            fn on_watermark(
                &mut self,
                wm: EventTime,
                out: &mut dyn FnMut(StreamItem<(i64, u64)>),
            ) {
                let due: Vec<i64> = self
                    .counts
                    .keys()
                    .copied()
                    .filter(|w| (w + 1) * self.window_ms <= wm.as_millis()
                        || wm == EventTime::MAX)
                    .collect();
                for w in due {
                    let c = self.counts.remove(&w).expect("listed");
                    out(StreamItem::new(
                        StratumId(0),
                        EventTime::from_millis(((w + 1) * self.window_ms).min(i64::MAX - 1)),
                        (w, c),
                    ));
                }
            }
        }
        let input = stream(&values);
        let n = input.len() as u64;
        let window_ms_copy = window_ms;
        let out = Flow::source(input, wm_interval)
            .then(1, Exchange::Forward, move |_| Counter {
                window_ms: window_ms_copy,
                counts: BTreeMap::new(),
            })
            .collect();
        let total: u64 = out.iter().map(|i| i.value.1).sum();
        prop_assert_eq!(total, n);
        // No window reported twice.
        let mut windows: Vec<i64> = out.iter().map(|i| i.value.0).collect();
        let len = windows.len();
        windows.sort_unstable();
        windows.dedup();
        prop_assert_eq!(windows.len(), len);
    }

    /// Parallel sources merge correctly: the sink sees both streams in
    /// full, with watermarks aligned on the slower one.
    #[test]
    fn parallel_sources_merge(
        a_len in 0usize..200,
        b_len in 0usize..200,
    ) {
        let a: Vec<StreamItem<u32>> = (0..a_len)
            .map(|i| StreamItem::new(StratumId(0), EventTime::from_millis(i as i64 * 3), i as u32))
            .collect();
        let b: Vec<StreamItem<u32>> = (0..b_len)
            .map(|i| {
                StreamItem::new(
                    StratumId(1),
                    EventTime::from_millis(i as i64 * 7),
                    (10_000 + i) as u32,
                )
            })
            .collect();
        let out = Flow::source_parallel(vec![a, b], 20)
            .then(2, Exchange::Rebalance, |_| Identity)
            .collect();
        prop_assert_eq!(out.len(), a_len + b_len);
    }
}
