//! A pipelined stream-processing engine — the Apache Flink analogue of the
//! StreamApprox reproduction (§2.2, §4.1.2 of the paper).
//!
//! Items stream operator-to-operator one at a time over bounded channels
//! (no batch formation), each operator instance owns a thread and its
//! state, and event-time progress travels as watermarks aligned on the
//! minimum across producers — the properties that let the paper's
//! Flink-based StreamApprox out-run the batched variant.
//!
//! * [`Signal`] / [`Tagged`] — channel protocol (items, watermarks, end).
//! * [`Operator`] — the operator trait; [`Map`], [`Filter`], [`Identity`]
//!   are the stock stateless ones. Stateful operators (OASRS sampling,
//!   windowed estimation) are built by the `streamapprox` crate on top of
//!   this trait.
//! * [`Flow`] — topology builder: `source → then(…) → … → collect()`, with
//!   [`Exchange`] strategies `Forward`, `Rebalance` and `KeyByStratum`.
//!   Live ingestion uses [`Flow::source_push`] (a [`PushSource`] feeding
//!   the running dataflow) and [`Flow::into_handle`] (a [`FlowHandle`]
//!   draining results while execution proceeds) — the substrate of the
//!   `streamapprox` crate's incremental sessions.
//!
//! # Example
//!
//! ```
//! use sa_pipelined::{Exchange, Flow, Map};
//! use sa_types::{StreamItem, StratumId, EventTime};
//!
//! let input: Vec<_> = (0..1_000)
//!     .map(|i| StreamItem::new(StratumId(i % 2), EventTime::from_millis(i as i64), i as u64))
//!     .collect();
//! let squared = Flow::source(input, 100)
//!     .then(4, Exchange::Rebalance, |_| Map::new(|v: u64| v * v))
//!     .collect();
//! assert_eq!(squared.len(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod message;
mod operator;

pub use flow::{Exchange, Flow, FlowHandle, PushSource, DEFAULT_CHANNEL_CAPACITY, RECORD_BUFFER};
pub use message::{Signal, Tagged};
pub use operator::{Filter, Identity, Map, Operator};
