//! Topology construction and execution: operator instances on threads,
//! bounded channels, watermark alignment and exchanges.

use crate::message::{Signal, Tagged};
use crate::operator::Operator;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use sa_types::{EventTime, SaError, StreamItem};
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::thread::JoinHandle;

/// Default capacity of inter-operator channels. Bounded channels give the
/// pipeline natural backpressure: a slow operator stalls its producers
/// instead of buffering unboundedly.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 256;

/// Records per network buffer (the Flink-style record batch amortizing
/// channel synchronization; watermarks flush partial buffers immediately).
pub const RECORD_BUFFER: usize = 64;

/// How an upstream stage's output is distributed over the next stage's
/// instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exchange {
    /// Instance `i` feeds instance `i % downstream_parallelism` — no
    /// redistribution cost, preserves per-instance order.
    Forward,
    /// Round-robin over downstream instances, balancing load.
    Rebalance,
    /// Hash-partition by stratum: all items of one sub-stream reach the
    /// same downstream instance (Flink's `keyBy`).
    KeyByStratum,
}

struct Routing<T> {
    senders: Vec<Sender<Tagged<T>>>,
    /// One record buffer per downstream target.
    buffers: Vec<Vec<StreamItem<T>>>,
    exchange: Exchange,
    producer_idx: usize,
    rr_next: usize,
    /// Set once any downstream receiver is gone (operator death), so
    /// producers can stop instead of feeding a dead pipeline forever.
    dead: bool,
}

impl<T> Routing<T> {
    fn new(senders: Vec<Sender<Tagged<T>>>, exchange: Exchange, producer_idx: usize) -> Self {
        let rr_next = if senders.is_empty() {
            0
        } else {
            producer_idx % senders.len()
        };
        let buffers = senders.iter().map(|_| Vec::new()).collect();
        Routing {
            senders,
            buffers,
            exchange,
            producer_idx,
            rr_next,
            dead: false,
        }
    }

    /// Whether some downstream receiver has disappeared. A source that
    /// observes this should stop: its own feed channel then closes, which
    /// is how `PushSource::push` learns the flow is gone.
    fn is_dead(&self) -> bool {
        self.dead
    }

    fn send_item(&mut self, item: StreamItem<T>) {
        let n = self.senders.len();
        let target = match self.exchange {
            Exchange::Forward => self.producer_idx % n,
            Exchange::Rebalance => {
                let t = self.rr_next;
                self.rr_next = (self.rr_next + 1) % n;
                t
            }
            Exchange::KeyByStratum => {
                let hasher = BuildHasherDefault::<DefaultHasher>::default();
                (hasher.hash_one(item.stratum) % n as u64) as usize
            }
        };
        let buffer = &mut self.buffers[target];
        buffer.push(item);
        if buffer.len() >= RECORD_BUFFER {
            let batch = std::mem::take(buffer);
            // A closed receiver means downstream shut down (a panicked
            // operator or a dropped sink); drop the batch and remember.
            if self.senders[target]
                .send((self.producer_idx, Signal::Items(batch)))
                .is_err()
            {
                self.dead = true;
            }
        }
    }

    /// Flushes every partial buffer (watermarks and end-of-stream must not
    /// overtake buffered records).
    fn flush(&mut self) {
        let mut died = false;
        for (target, buffer) in self.buffers.iter_mut().enumerate() {
            if !buffer.is_empty() {
                let batch = std::mem::take(buffer);
                if self.senders[target]
                    .send((self.producer_idx, Signal::Items(batch)))
                    .is_err()
                {
                    died = true;
                }
            }
        }
        self.dead |= died;
    }

    fn broadcast_watermark(&mut self, wm: EventTime) {
        self.flush();
        for s in &self.senders {
            if s.send((self.producer_idx, Signal::Watermark(wm))).is_err() {
                self.dead = true;
            }
        }
    }

    fn broadcast_end(&mut self) {
        self.flush();
        for s in &self.senders {
            let _ = s.send((self.producer_idx, Signal::End));
        }
    }
}

/// The per-instance event loop: aligns watermarks across producers (the
/// effective watermark is the minimum over live producers), drives the
/// operator, and forwards progress downstream.
fn instance_loop<I, O, Op>(
    rx: Receiver<Tagged<I>>,
    num_producers: usize,
    mut op: Op,
    mut routing: Routing<O>,
) where
    Op: Operator<I, O>,
{
    let mut wms = vec![EventTime::MIN; num_producers];
    let mut ended = vec![false; num_producers];
    let mut ended_count = 0usize;
    let mut current_wm = EventTime::MIN;
    while ended_count < num_producers {
        let (p, signal) = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        match signal {
            Signal::Items(batch) => {
                let routing_ref = &mut routing;
                for item in batch {
                    op.on_item(item, &mut |out| routing_ref.send_item(out));
                }
            }
            Signal::Watermark(wm) => {
                if wm > wms[p] {
                    wms[p] = wm;
                    let effective = *wms.iter().min().expect("at least one producer");
                    if effective > current_wm {
                        current_wm = effective;
                        let routing_ref = &mut routing;
                        op.on_watermark(effective, &mut |out| routing_ref.send_item(out));
                        routing.broadcast_watermark(effective);
                    }
                }
            }
            Signal::End => {
                if !ended[p] {
                    ended[p] = true;
                    ended_count += 1;
                    wms[p] = EventTime::MAX;
                    let effective = *wms.iter().min().expect("at least one producer");
                    if effective > current_wm {
                        current_wm = effective;
                        let routing_ref = &mut routing;
                        op.on_watermark(effective, &mut |out| routing_ref.send_item(out));
                        routing.broadcast_watermark(effective);
                    }
                }
            }
        }
    }
    let routing_ref = &mut routing;
    op.on_end(&mut |out| routing_ref.send_item(out));
    routing.broadcast_end();
}

type SpawnFn<T> = Box<dyn FnOnce(Vec<Sender<Tagged<T>>>, Exchange) -> Vec<JoinHandle<()>> + Send>;

/// The shared source loop: watermark whenever event time advances by
/// `watermark_interval_ms`, then forward the item. Used by both the
/// vector-backed sources and the push source, so a pushed stream produces
/// bit-for-bit the same signal sequence as the same stream replayed from a
/// `Vec`.
fn drive_source<T>(
    items: impl Iterator<Item = StreamItem<T>>,
    watermark_interval_ms: i64,
    routing: &mut Routing<T>,
) {
    let mut last_wm = EventTime::MIN;
    for item in items {
        if last_wm == EventTime::MIN || item.time.millis_since(last_wm) >= watermark_interval_ms {
            last_wm = item.time;
            routing.broadcast_watermark(item.time);
        }
        routing.send_item(item);
        // A dead downstream cannot recover; exiting closes this source's
        // feed channel, surfacing the failure to the feeder (a live
        // PushSource gets `Disconnected` instead of silently-ignored
        // pushes).
        if routing.is_dead() {
            break;
        }
    }
    routing.broadcast_watermark(EventTime::MAX);
    routing.broadcast_end();
}

/// The feeding half of a push-driven source stage (see
/// [`Flow::source_push`]): items pushed here enter the dataflow live, with
/// the same watermarking a vector-backed source applies.
///
/// Dropping the handle (or calling [`PushSource::finish`]) ends the
/// stream: the source emits a final `EventTime::MAX` watermark and
/// end-of-stream, flushing every window still open downstream.
#[derive(Debug)]
pub struct PushSource<T> {
    tx: Sender<StreamItem<T>>,
}

impl<T> PushSource<T> {
    /// Feeds one item into the dataflow. Blocks while the pipeline is
    /// saturated (bounded channels give the push path backpressure).
    ///
    /// Items must be pushed in non-decreasing event-time order — the
    /// source trusts its caller exactly as it trusts a pre-sorted `Vec`.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] if the dataflow has shut down (e.g. a
    /// downstream operator panicked — the source notices its dead
    /// downstream and exits, closing this feed). Detection is prompt but
    /// asynchronous: the few pushes in flight when the operator dies may
    /// still return `Ok`.
    pub fn push(&self, item: StreamItem<T>) -> Result<(), SaError> {
        self.tx
            .send(item)
            .map_err(|_| SaError::Disconnected("pipelined push source"))
    }

    /// Ends the stream. Equivalent to dropping the handle; provided so
    /// call sites can make the end-of-stream explicit.
    pub fn finish(self) {}
}

/// A running dataflow's sink side, produced by [`Flow::into_handle`]:
/// drains emitted items incrementally while the pipeline executes.
///
/// The sink channel is unbounded so a caller that polls lazily never
/// stalls the pipeline — results are small aggregates, the firehose of raw
/// items stays behind the bounded inter-operator channels.
#[derive(Debug)]
pub struct FlowHandle<T> {
    rx: Receiver<Tagged<T>>,
    handles: Vec<JoinHandle<()>>,
    producers: usize,
    ended: usize,
}

impl<T> FlowHandle<T> {
    /// Takes every item emitted since the last drain, without blocking.
    pub fn try_drain(&mut self) -> Vec<StreamItem<T>> {
        let mut out = Vec::new();
        loop {
            match self.rx.try_recv() {
                Ok((_, Signal::Items(batch))) => out.extend(batch),
                Ok((_, Signal::Watermark(_))) => {}
                Ok((_, Signal::End)) => self.ended += 1,
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        out
    }

    /// Whether every producer has signalled end-of-stream.
    pub fn is_ended(&self) -> bool {
        self.ended >= self.producers
    }

    /// Blocks until the dataflow completes, returning the remaining items
    /// and joining every operator thread.
    ///
    /// End the sources first — drop the [`PushSource`] of a push-driven
    /// flow — or this blocks forever waiting for an end-of-stream that
    /// cannot come.
    pub fn drain_to_end(mut self) -> Vec<StreamItem<T>> {
        let mut out = Vec::new();
        while self.ended < self.producers {
            match self.rx.recv() {
                Ok((_, Signal::Items(batch))) => out.extend(batch),
                Ok((_, Signal::Watermark(_))) => {}
                Ok((_, Signal::End)) => self.ended += 1,
                Err(_) => break,
            }
        }
        for h in self.handles {
            let _ = h.join();
        }
        out
    }
}

/// A dataflow under construction, typed by the items its last stage emits.
///
/// Stages spawn as the topology is built (each `then` call wires and starts
/// the upstream stage); [`Flow::collect`] attaches a sink and drains it.
/// Bounded channels keep memory finite while construction races execution.
///
/// # Example
///
/// ```
/// use sa_pipelined::{Exchange, Flow, Map};
/// use sa_types::{StreamItem, StratumId, EventTime};
///
/// let items: Vec<_> = (0..100u32)
///     .map(|i| StreamItem::new(StratumId(i % 3), EventTime::from_millis(i as i64), i))
///     .collect();
/// let out = Flow::source(items, 10)
///     .then(2, Exchange::Rebalance, |_| Map::new(|v: u32| u64::from(v) * 2))
///     .collect();
/// let sum: u64 = out.iter().map(|i| i.value).sum();
/// assert_eq!(sum, (0..100u64).map(|v| v * 2).sum::<u64>());
/// ```
pub struct Flow<T> {
    spawn: SpawnFn<T>,
    parallelism: usize,
    channel_capacity: usize,
}

impl<T: Send + 'static> Flow<T> {
    /// A single-instance source reading a time-ordered item vector,
    /// emitting a watermark whenever event time advances by
    /// `watermark_interval_ms` (and a final `EventTime::MAX` watermark).
    ///
    /// # Panics
    ///
    /// Panics if `watermark_interval_ms` is not positive.
    pub fn source(items: Vec<StreamItem<T>>, watermark_interval_ms: i64) -> Flow<T> {
        Self::source_parallel(vec![items], watermark_interval_ms)
    }

    /// A parallel source: one instance per element of `parts`, each
    /// time-ordered.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or `watermark_interval_ms` is not
    /// positive.
    pub fn source_parallel(parts: Vec<Vec<StreamItem<T>>>, watermark_interval_ms: i64) -> Flow<T> {
        assert!(!parts.is_empty(), "source needs at least one instance");
        assert!(
            watermark_interval_ms > 0,
            "watermark interval must be positive"
        );
        let parallelism = parts.len();
        Flow {
            parallelism,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            spawn: Box::new(move |senders, exchange| {
                parts
                    .into_iter()
                    .enumerate()
                    .map(|(idx, items)| {
                        let mut routing = Routing::new(senders.clone(), exchange, idx);
                        std::thread::Builder::new()
                            .name(format!("sa-source-{idx}"))
                            .spawn(move || {
                                drive_source(
                                    items.into_iter(),
                                    watermark_interval_ms,
                                    &mut routing,
                                );
                            })
                            .expect("spawning source thread")
                    })
                    .collect()
            }),
        }
    }

    /// A single-instance source fed live through the returned
    /// [`PushSource`] handle instead of a pre-recorded vector, with the
    /// same event-time watermarking as [`Flow::source`]: pushing a stream
    /// item by item produces exactly the signals replaying it from a `Vec`
    /// would.
    ///
    /// The internal feed channel is bounded at
    /// [`DEFAULT_CHANNEL_CAPACITY`], so pushes block (backpressure) while
    /// the pipeline is saturated rather than buffering unboundedly.
    ///
    /// # Panics
    ///
    /// Panics if `watermark_interval_ms` is not positive.
    pub fn source_push(watermark_interval_ms: i64) -> (PushSource<T>, Flow<T>) {
        assert!(
            watermark_interval_ms > 0,
            "watermark interval must be positive"
        );
        let (tx, rx) = bounded::<StreamItem<T>>(DEFAULT_CHANNEL_CAPACITY);
        let flow = Flow {
            parallelism: 1,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            spawn: Box::new(move |senders, exchange| {
                let mut routing = Routing::new(senders, exchange, 0);
                vec![std::thread::Builder::new()
                    .name("sa-source-push".into())
                    .spawn(move || {
                        drive_source(
                            std::iter::from_fn(|| rx.recv().ok()),
                            watermark_interval_ms,
                            &mut routing,
                        );
                    })
                    .expect("spawning push source thread")]
            }),
        };
        (PushSource { tx }, flow)
    }

    /// Overrides the inter-stage channel capacity for stages added after
    /// this call.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        self.channel_capacity = capacity;
        self
    }

    /// Parallelism of the most recently added stage.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Appends a stage of `parallelism` operator instances fed through
    /// `exchange`; `make(i)` builds the operator for instance `i`. The
    /// upstream stage starts executing immediately.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn then<O, Op, Mk>(self, parallelism: usize, exchange: Exchange, make: Mk) -> Flow<O>
    where
        O: Send + 'static,
        Op: Operator<T, O> + 'static,
        Mk: FnMut(usize) -> Op + Send + 'static,
    {
        assert!(parallelism > 0, "stage parallelism must be positive");
        let cap = self.channel_capacity;
        type Channels<T> = (Vec<Sender<Tagged<T>>>, Vec<Receiver<Tagged<T>>>);
        let (txs, rxs): Channels<T> = (0..parallelism).map(|_| bounded(cap)).unzip();
        let upstream_handles = (self.spawn)(txs, exchange);
        let num_producers = self.parallelism;
        Flow {
            parallelism,
            channel_capacity: cap,
            spawn: Box::new(move |down_senders, down_exchange| {
                let mut handles = upstream_handles;
                let mut make = make;
                for (q, rx) in rxs.into_iter().enumerate() {
                    let op = make(q);
                    let routing = Routing::new(down_senders.clone(), down_exchange, q);
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("sa-op-{q}"))
                            .spawn(move || instance_loop(rx, num_producers, op, routing))
                            .expect("spawning operator thread"),
                    );
                }
                handles
            }),
        }
    }

    /// Attaches a sink and starts the dataflow, returning a [`FlowHandle`]
    /// that drains emitted items incrementally while execution proceeds.
    pub fn into_handle(self) -> FlowHandle<T> {
        let (tx, rx) = unbounded();
        let producers = self.parallelism;
        let handles = (self.spawn)(vec![tx], Exchange::Rebalance);
        FlowHandle {
            rx,
            handles,
            producers,
            ended: 0,
        }
    }

    /// Attaches a sink, runs the dataflow to completion, and returns every
    /// emitted item in arrival order at the sink.
    pub fn collect(self) -> Vec<StreamItem<T>> {
        self.into_handle().drain_to_end()
    }
}

impl<T> std::fmt::Debug for Flow<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flow")
            .field("parallelism", &self.parallelism)
            .field("channel_capacity", &self.channel_capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Filter, Identity, Map};
    use sa_types::StratumId;
    use std::collections::BTreeMap;

    fn items(n: u32) -> Vec<StreamItem<u32>> {
        (0..n)
            .map(|i| StreamItem::new(StratumId(i % 4), EventTime::from_millis(i as i64), i))
            .collect()
    }

    #[test]
    fn source_to_sink_roundtrip() {
        let out = Flow::source(items(500), 50).collect();
        let mut vals: Vec<u32> = out.iter().map(|i| i.value).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn map_filter_chain() {
        let out = Flow::source(items(100), 10)
            .then(1, Exchange::Forward, |_| {
                Filter::new(|i: &StreamItem<u32>| i.value % 2 == 0)
            })
            .then(1, Exchange::Forward, |_| Map::new(|v: u32| v * 10))
            .collect();
        let mut vals: Vec<u32> = out.iter().map(|i| i.value).collect();
        vals.sort_unstable();
        let expected: Vec<u32> = (0..100).filter(|v| v % 2 == 0).map(|v| v * 10).collect();
        assert_eq!(vals, expected);
    }

    #[test]
    fn rebalance_preserves_multiset_across_parallel_stage() {
        let out = Flow::source(items(1_000), 100)
            .then(4, Exchange::Rebalance, |_| Identity)
            .collect();
        let mut vals: Vec<u32> = out.iter().map(|i| i.value).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..1_000).collect::<Vec<_>>());
    }

    /// An operator that stamps each item with its instance index, to
    /// observe routing decisions.
    struct TagInstance(usize);
    impl Operator<u32, (usize, u32)> for TagInstance {
        fn on_item(
            &mut self,
            item: StreamItem<u32>,
            out: &mut dyn FnMut(StreamItem<(usize, u32)>),
        ) {
            let idx = self.0;
            out(item.map(|v| (idx, v)));
        }
    }

    #[test]
    fn key_by_stratum_routes_consistently() {
        let out = Flow::source(items(400), 50)
            .then(3, Exchange::KeyByStratum, TagInstance)
            .collect();
        // All items of one stratum must carry the same instance tag.
        let mut seen: BTreeMap<StratumId, usize> = BTreeMap::new();
        for item in &out {
            let (instance, _) = item.value;
            if let Some(prev) = seen.insert(item.stratum, instance) {
                assert_eq!(prev, instance, "stratum {} split", item.stratum);
            }
        }
        assert_eq!(seen.len(), 4);
    }

    /// A windowed counter: counts items per tumbling second, emits
    /// `(window_start_s, count)` when the watermark passes the window end.
    struct SecondCounter {
        counts: BTreeMap<i64, u64>,
    }
    impl SecondCounter {
        fn new() -> Self {
            SecondCounter {
                counts: BTreeMap::new(),
            }
        }
    }
    impl Operator<u32, (i64, u64)> for SecondCounter {
        fn on_item(&mut self, item: StreamItem<u32>, _out: &mut dyn FnMut(StreamItem<(i64, u64)>)) {
            let sec = item.time.as_millis().div_euclid(1_000);
            *self.counts.entry(sec).or_default() += 1;
        }
        fn on_watermark(&mut self, wm: EventTime, out: &mut dyn FnMut(StreamItem<(i64, u64)>)) {
            let due: Vec<i64> = self
                .counts
                .keys()
                .copied()
                .filter(|s| (s + 1) * 1_000 <= wm.as_millis())
                .collect();
            for s in due {
                let count = self.counts.remove(&s).expect("key listed");
                out(StreamItem::new(
                    StratumId(0),
                    EventTime::from_millis((s + 1) * 1_000),
                    (s, count),
                ));
            }
        }
    }

    #[test]
    fn watermarks_drive_window_emission() {
        // 10 items per second over 5 seconds.
        let stream: Vec<StreamItem<u32>> = (0..50)
            .map(|i| StreamItem::new(StratumId(0), EventTime::from_millis(i * 100), i as u32))
            .collect();
        let out = Flow::source(stream, 100)
            .then(1, Exchange::Forward, |_| SecondCounter::new())
            .collect();
        let windows: Vec<(i64, u64)> = out.iter().map(|i| i.value).collect();
        assert_eq!(windows, vec![(0, 10), (1, 10), (2, 10), (3, 10), (4, 10)]);
    }

    #[test]
    fn watermarks_align_on_minimum_across_producers() {
        // Two source instances with very different time ranges; the counter
        // downstream must only see windows closed by the *slower* source.
        let fast: Vec<StreamItem<u32>> = (0..20)
            .map(|i| StreamItem::new(StratumId(0), EventTime::from_millis(i * 100), 0))
            .collect();
        let slow: Vec<StreamItem<u32>> = (0..20)
            .map(|i| StreamItem::new(StratumId(1), EventTime::from_millis(i * 10), 0))
            .collect();
        let out = Flow::source_parallel(vec![fast, slow], 10)
            .then(1, Exchange::Rebalance, |_| SecondCounter::new())
            .collect();
        // All 40 items are counted exactly once across emitted windows.
        let total: u64 = out.iter().map(|i| i.value.1).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn forward_exchange_maps_instances() {
        let out = Flow::source_parallel(vec![items(10), items(10)], 5)
            .then(2, Exchange::Forward, TagInstance)
            .collect();
        // Each source instance feeds exactly one operator instance.
        let tags: std::collections::BTreeSet<usize> = out.iter().map(|i| i.value.0).collect();
        assert_eq!(tags.len(), 2);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn push_source_matches_vector_source() {
        // The same stream pushed item by item must reach the sink as the
        // same multiset the vector source delivers.
        let stream = items(300);
        let from_vec = Flow::source(stream.clone(), 50)
            .then(2, Exchange::Rebalance, |_| Identity)
            .collect();
        let (push, flow) = Flow::source_push(50);
        let handle = flow
            .then(2, Exchange::Rebalance, |_| Identity)
            .into_handle();
        for item in stream {
            push.push(item).expect("pipeline alive");
        }
        push.finish();
        let from_push = handle.drain_to_end();
        let mut a: Vec<u32> = from_vec.iter().map(|i| i.value).collect();
        let mut b: Vec<u32> = from_push.iter().map(|i| i.value).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn handle_drains_incrementally_before_end() {
        let (push, flow) = Flow::source_push(10);
        let mut handle = flow.then(1, Exchange::Forward, |_| Identity).into_handle();
        for item in items(100) {
            push.push(item).expect("pipeline alive");
        }
        // The pipeline runs concurrently; wait (bounded) for some output
        // to arrive before the stream has ended.
        let mut early = Vec::new();
        for _ in 0..1_000 {
            early.extend(handle.try_drain());
            if !early.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(!early.is_empty(), "no output while the stream is open");
        assert!(!handle.is_ended());
        push.finish();
        let rest = handle.drain_to_end();
        assert_eq!(early.len() + rest.len(), 100);
    }

    #[test]
    fn operator_death_eventually_surfaces_to_push() {
        /// An operator that dies on its first item.
        struct Exploder;
        impl Operator<u32, u32> for Exploder {
            fn on_item(&mut self, _item: StreamItem<u32>, _out: &mut dyn FnMut(StreamItem<u32>)) {
                panic!("operator died (expected in this test)");
            }
        }
        let (push, flow) = Flow::source_push(10);
        let _handle = flow.then(1, Exchange::Forward, |_| Exploder).into_handle();
        let mut got_err = false;
        for i in 0..1_000_000i64 {
            let item = StreamItem::new(StratumId(0), EventTime::from_millis(i), 1u32);
            if push.push(item).is_err() {
                got_err = true;
                break;
            }
        }
        assert!(got_err, "push never reported the dead pipeline");
    }

    #[test]
    fn push_into_dead_pipeline_reports_disconnect() {
        // A source whose feed receiver is gone (the source thread died)
        // must surface as a Disconnected error, not a panic.
        let (tx, rx) = crossbeam::channel::bounded::<StreamItem<u32>>(4);
        drop(rx);
        let push = PushSource { tx };
        let err = push
            .push(StreamItem::new(
                StratumId(0),
                EventTime::from_millis(0),
                1u32,
            ))
            .unwrap_err();
        assert!(matches!(err, sa_types::SaError::Disconnected(_)));
    }

    #[test]
    #[should_panic(expected = "stage parallelism must be positive")]
    fn zero_parallelism_rejected() {
        let _ = Flow::source(items(1), 10).then(0, Exchange::Forward, |_| Identity);
    }

    #[test]
    #[should_panic(expected = "watermark interval must be positive")]
    fn zero_watermark_interval_rejected() {
        let _ = Flow::source(items(1), 0);
    }
}
