//! Signals flowing on the channels between operator instances.

use sa_types::{EventTime, StreamItem};

/// One message on an inter-operator channel.
///
/// Data travels as small *record batches*, mirroring Flink's network
/// buffers: records are forwarded as soon as a buffer fills (or a
/// watermark forces a flush), never waiting for a whole dataset — the
/// defining property of the pipelined model (§2.2) — while amortizing the
/// channel synchronization over a few records. Watermarks carry event-time
/// progress; `End` closes a producer's contribution.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal<T> {
    /// A buffer of data items, in the producer's emission order.
    Items(Vec<StreamItem<T>>),
    /// Every future item from this producer has `time >= watermark`.
    Watermark(EventTime),
    /// The producer is done; no more signals will follow from it.
    End,
}

/// A signal tagged with the index of the upstream instance that sent it,
/// so consumers can align watermarks across their producers.
pub type Tagged<T> = (usize, Signal<T>);

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::StratumId;

    #[test]
    fn signals_compare_by_payload() {
        let a: Signal<u32> = Signal::Watermark(EventTime::from_millis(5));
        let b: Signal<u32> = Signal::Watermark(EventTime::from_millis(5));
        assert_eq!(a, b);
        let items = Signal::Items(vec![StreamItem::new(
            StratumId(1),
            EventTime::from_millis(3),
            9u32,
        )]);
        assert_ne!(items, Signal::End);
    }
}
