//! The operator abstraction and the stock stateless operators.

use sa_types::{EventTime, StreamItem};

/// A streaming operator instance: receives items and watermarks, emits
/// output items through the provided callback.
///
/// Operators are single-threaded by construction (each instance runs on its
/// own thread and owns its state), so implementations need no internal
/// locking — the same execution model as a Flink task.
pub trait Operator<I, O>: Send {
    /// Handles one arriving item, emitting any number of outputs.
    fn on_item(&mut self, item: StreamItem<I>, out: &mut dyn FnMut(StreamItem<O>));

    /// Handles an advance of the effective (producer-aligned) watermark.
    /// Windowed operators emit completed windows here. The watermark itself
    /// is forwarded downstream by the runtime after this returns.
    fn on_watermark(&mut self, watermark: EventTime, out: &mut dyn FnMut(StreamItem<O>)) {
        let _ = (watermark, out);
    }

    /// Called once after every producer ended and the final
    /// `Watermark(EventTime::MAX)` was delivered; flush any residual state.
    fn on_end(&mut self, out: &mut dyn FnMut(StreamItem<O>)) {
        let _ = out;
    }
}

/// A stateless element-wise operator from a closure.
///
/// # Example
///
/// ```
/// use sa_pipelined::{Map, Operator};
/// use sa_types::{StreamItem, StratumId, EventTime};
///
/// let mut op = Map::new(|x: u32| x * 2);
/// let mut seen = Vec::new();
/// op.on_item(
///     StreamItem::new(StratumId(0), EventTime::from_millis(0), 21),
///     &mut |item| seen.push(item.value),
/// );
/// assert_eq!(seen, vec![42]);
/// ```
#[derive(Debug)]
pub struct Map<F> {
    f: F,
}

impl<F> Map<F> {
    /// Wraps the mapping function.
    pub fn new(f: F) -> Self {
        Map { f }
    }
}

impl<I, O, F> Operator<I, O> for Map<F>
where
    F: FnMut(I) -> O + Send,
{
    fn on_item(&mut self, item: StreamItem<I>, out: &mut dyn FnMut(StreamItem<O>)) {
        out(item.map(&mut self.f));
    }
}

/// A stateless filter operator from a predicate.
#[derive(Debug)]
pub struct Filter<F> {
    pred: F,
}

impl<F> Filter<F> {
    /// Wraps the predicate.
    pub fn new(pred: F) -> Self {
        Filter { pred }
    }
}

impl<T, F> Operator<T, T> for Filter<F>
where
    F: FnMut(&StreamItem<T>) -> bool + Send,
{
    fn on_item(&mut self, item: StreamItem<T>, out: &mut dyn FnMut(StreamItem<T>)) {
        if (self.pred)(&item) {
            out(item);
        }
    }
}

/// The identity operator (used by sinks and tests).
#[derive(Debug, Default)]
pub struct Identity;

impl<T> Operator<T, T> for Identity {
    fn on_item(&mut self, item: StreamItem<T>, out: &mut dyn FnMut(StreamItem<T>)) {
        out(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::StratumId;

    fn item(v: i32) -> StreamItem<i32> {
        StreamItem::new(StratumId(0), EventTime::from_millis(v as i64), v)
    }

    #[test]
    fn map_transforms_payload_only() {
        let mut op = Map::new(|x: i32| x + 1);
        let mut out = Vec::new();
        op.on_item(item(1), &mut |i| out.push(i));
        assert_eq!(out[0].value, 2);
        assert_eq!(out[0].time, EventTime::from_millis(1));
    }

    #[test]
    fn filter_drops_nonmatching() {
        let mut op = Filter::new(|i: &StreamItem<i32>| i.value % 2 == 0);
        let mut out = Vec::new();
        for v in 0..6 {
            op.on_item(item(v), &mut |i| out.push(i.value));
        }
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut op = Identity;
        let mut out: Vec<StreamItem<i32>> = Vec::new();
        Operator::<i32, i32>::on_watermark(&mut op, EventTime::from_millis(5), &mut |i| {
            out.push(i)
        });
        Operator::<i32, i32>::on_end(&mut op, &mut |i| out.push(i));
        assert!(out.is_empty());
    }
}
