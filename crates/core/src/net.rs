//! The distributed tier: a TCP coordinator/worker aggregation service.
//!
//! The paper deploys StreamApprox as *one* logical computation over many
//! machines: workers sample their partitions of the stream close to the
//! data, and only the compact mergeable sampler state travels to the node
//! that finalizes windows (the architecture of §4, fed by the aggregator
//! of §2.1). This module is that deployment shape over real sockets,
//! speaking the `sa-net` framed protocol:
//!
//! * [`DistributedSession`] — the coordinator, started through
//!   [`crate::StreamApprox::distributed`]: binds a listener, assigns the
//!   full run configuration to each joining worker, collects one
//!   [`sa_net::Digest`] per worker per closed pane, merges each pane's
//!   digests in canonical worker-id order through the same [`ShardSet`]
//!   path the in-process sharded engine uses, and finalizes windows with
//!   estimation-layer error bounds.
//! * [`DigestEngine`] (built by [`connect_worker`]) — one worker: a local
//!   [`Engine`] that samples its shard of the stream with full-capacity
//!   OASRS and ships the pane's sampler state at every pane close instead
//!   of estimating locally. Wrap it in
//!   [`crate::ApproxSession::from_engine`] for the ordinary push/poll
//!   session API.
//!
//! Determinism survives the wire: worker `w` builds exactly the sampler
//! [`ShardSet::rearm`] would hand shard `w`, digests merge in ascending
//! worker id, and each pane's merge RNG is seeded by
//! [`crate::pane_merge_seed`] from the run seed and the pane's *start
//! time* — so a distributed run reproduces, bit for bit, the
//! single-process merge of the same per-shard samplers (§3.2's merge
//! soundness, verified end-to-end in `tests/distributed.rs`).
//!
//! Failure semantics are typed, never hangs: a socket that closes without
//! a [`sa_net::Message::Shutdown`] is a worker failure and surfaces as
//! [`SaError::Disconnected`] from the coordinator's `poll_windows` /
//! `finish`; hostile or malformed frames surface as [`SaError::Wire`].

use crate::cost::SizingDirective;
use crate::engine::Engine;
use crate::output::{RunOutput, WindowResult};
use crate::runtime::{
    pane_merge_seed, sampler_sizing, IntervalWorker, PaneCursor, ShardSet, WindowFinalizer,
    WorkerPane,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_net::frame::{read_message, write_message};
use sa_net::{Digest, DigestPayload, Directive, Message, WindowResultMsg};
use sa_types::{
    Confidence, EventTime, IngestCounters, RunSeed, SaError, SessionStatus, StratifiedSample,
    StratumSample, StreamItem, Window, WindowSpec, WorkerStatus,
};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a distributed coordinator session.
///
/// Mirrors [`crate::ShardedConfig`] — the distributed tier is the sharded
/// engine with processes for threads and frames for channels — plus the
/// transport knobs a real service needs: a bind address and a straggler
/// timeout.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Number of workers that will join; also the shard count of the
    /// canonical merge.
    pub workers: u32,
    /// Address the coordinator listens on. Defaults to `127.0.0.1:0`
    /// (loopback, OS-assigned port — read it back with
    /// [`DistributedSession::addr`]).
    pub bind_addr: String,
    /// Pane length in milliseconds; `None` uses the window slide, which
    /// is the minimum pane count (fewer digests per window).
    pub pane_interval_ms: Option<i64>,
    /// Seed of the run: workers derive their shard-local sampler seeds
    /// from it, and every pane merge draws from an RNG derived from it.
    pub seed: RunSeed,
    /// Expected items per pane across all workers; sizes a fraction
    /// directive's first-interval reservoirs.
    pub expected_pane_items: usize,
    /// How long `finish` waits for missing workers or outstanding digests
    /// before declaring the run disconnected.
    pub timeout: Duration,
}

impl DistributedConfig {
    /// A loopback configuration for `workers` workers with a 30-second
    /// straggler timeout.
    pub fn new(workers: u32) -> Self {
        DistributedConfig {
            workers,
            bind_addr: "127.0.0.1:0".to_string(),
            pane_interval_ms: None,
            seed: RunSeed::DEFAULT,
            expected_pane_items: 1_000,
            timeout: Duration::from_secs(30),
        }
    }

    /// Sets the bind address.
    #[must_use]
    pub fn with_bind_addr(mut self, addr: impl Into<String>) -> Self {
        self.bind_addr = addr.into();
        self
    }

    /// Sets an explicit pane interval.
    #[must_use]
    pub fn with_pane_interval_ms(mut self, interval: i64) -> Self {
        self.pane_interval_ms = Some(interval);
        self
    }

    /// Sets the run seed.
    #[must_use]
    pub fn with_seed(mut self, seed: RunSeed) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the expected items per pane (reservoir pre-sizing).
    #[must_use]
    pub fn with_expected_pane_items(mut self, expected: usize) -> Self {
        self.expected_pane_items = expected;
        self
    }

    /// Sets the straggler timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

fn directive_to_wire(directive: SizingDirective) -> Directive {
    match directive {
        SizingDirective::Fraction(f) => Directive::Fraction(f),
        SizingDirective::PerStratum(n) => Directive::PerStratum(n),
        SizingDirective::SharedTotal(n) => Directive::SharedTotal(n),
        SizingDirective::Everything => Directive::Everything,
    }
}

fn directive_from_wire(directive: Directive) -> SizingDirective {
    match directive {
        Directive::Fraction(f) => SizingDirective::Fraction(f),
        Directive::PerStratum(n) => SizingDirective::PerStratum(n),
        Directive::SharedTotal(n) => SizingDirective::SharedTotal(n),
        Directive::Everything => SizingDirective::Everything,
    }
}

fn result_to_wire(result: &WindowResult) -> WindowResultMsg {
    WindowResultMsg {
        window: result.window,
        sum: result.sum,
        mean: result.mean,
        sum_by_stratum: result.sum_by_stratum.clone(),
        mean_by_stratum: result.mean_by_stratum.clone(),
    }
}

fn result_from_wire(msg: WindowResultMsg) -> WindowResult {
    WindowResult {
        window: msg.window,
        sum: msg.sum,
        mean: msg.mean,
        sum_by_stratum: msg.sum_by_stratum,
        mean_by_stratum: msg.mean_by_stratum,
    }
}

/// Everything the coordinator tells each joining worker, identical for
/// all of them except the confirmed worker id.
#[derive(Clone, Copy)]
struct AssignTemplate {
    num_workers: u32,
    seed: RunSeed,
    directive: Directive,
    pane_interval_ms: i64,
    expected_pane_items: u64,
    window: WindowSpec,
    confidence: Confidence,
}

impl AssignTemplate {
    fn for_worker(self, worker: u32) -> Message {
        Message::HelloAssign {
            worker,
            num_workers: self.num_workers,
            seed: self.seed,
            directive: self.directive,
            pane_interval_ms: self.pane_interval_ms,
            expected_pane_items: self.expected_pane_items,
            window: self.window,
            confidence: self.confidence,
        }
    }
}

/// What the acceptor and reader threads report to the session.
enum Event {
    Joined {
        worker: u32,
        results: Option<TcpStream>,
    },
    Digest(Box<Digest>),
    Heartbeat {
        worker: u32,
        ingest: IngestCounters,
        watermark: Option<EventTime>,
        lag: u64,
        last_checkpoint_pane: Option<i64>,
        items_since_checkpoint: u64,
        snapshot_bytes: u64,
    },
    Done {
        worker: u32,
    },
    Failed(SaError),
}

/// One connected worker, as the coordinator sees it.
struct WorkerPeer {
    status: WorkerStatus,
    done: bool,
    results: Option<TcpStream>,
}

fn reader_loop(mut stream: TcpStream, worker: u32, events: Sender<Event>) {
    loop {
        let event = match read_message(&mut stream) {
            Ok(Some(Message::PaneDigest(digest))) => {
                if digest.worker != worker {
                    Event::Failed(SaError::Wire(format!(
                        "digest claims worker {} on worker {worker}'s connection",
                        digest.worker
                    )))
                } else {
                    Event::Digest(Box::new(digest))
                }
            }
            Ok(Some(Message::Heartbeat {
                worker: w,
                ingest,
                watermark,
                lag,
                last_checkpoint_pane,
                items_since_checkpoint,
                snapshot_bytes,
            })) if w == worker => Event::Heartbeat {
                worker,
                ingest,
                watermark,
                lag,
                last_checkpoint_pane,
                items_since_checkpoint,
                snapshot_bytes,
            },
            Ok(Some(Message::Shutdown { .. })) => Event::Done { worker },
            Ok(Some(_)) => Event::Failed(SaError::Wire(format!(
                "unexpected message from worker {worker}"
            ))),
            Ok(None) => Event::Failed(SaError::Disconnected("worker closed without shutdown")),
            Err(error) => Event::Failed(error),
        };
        let terminal = !matches!(event, Event::Digest(_) | Event::Heartbeat { .. });
        if events.send(event).is_err() || terminal {
            return;
        }
    }
}

fn acceptor_loop(listener: TcpListener, assign: AssignTemplate, events: Sender<Event>) {
    let mut joined = vec![false; assign.num_workers as usize];
    let mut remaining = assign.num_workers;
    while remaining > 0 {
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                let _ = events.send(Event::Failed(SaError::Wire(format!("accept failed: {e}"))));
                return;
            }
        };
        let (worker, wants_results) = match read_message(&mut stream) {
            Ok(Some(Message::HelloJoin {
                worker,
                wants_results,
            })) => (worker, wants_results),
            Ok(_) => {
                let _ = events.send(Event::Failed(SaError::Wire(
                    "connection did not open with a join".to_string(),
                )));
                return;
            }
            Err(error) => {
                let _ = events.send(Event::Failed(error));
                return;
            }
        };
        if worker >= assign.num_workers || joined[worker as usize] {
            let _ = events.send(Event::Failed(SaError::Wire(format!(
                "worker {worker} is not joinable (of {}, duplicates rejected)",
                assign.num_workers
            ))));
            return;
        }
        if let Err(error) = write_message(&mut stream, &assign.for_worker(worker)) {
            let _ = events.send(Event::Failed(error));
            return;
        }
        let results = if wants_results {
            stream.try_clone().ok()
        } else {
            None
        };
        joined[worker as usize] = true;
        remaining -= 1;
        if events.send(Event::Joined { worker, results }).is_err() {
            return;
        }
        let reader_events = events.clone();
        thread::spawn(move || reader_loop(stream, worker, reader_events));
    }
}

/// A running coordinator: the distributed counterpart of
/// [`crate::ApproxSession`], started through
/// [`crate::StreamApprox::distributed`].
///
/// The session is passive between calls — digests queue on a channel fed
/// by per-connection reader threads, and merging happens on the caller's
/// thread inside [`poll_windows`](DistributedSession::poll_windows) and
/// [`finish`](DistributedSession::finish). A pane is merged once every
/// worker has either delivered it, provably advanced past it (its
/// watermark reached the pane end), or shut down cleanly; merges happen
/// in pane order so windows still finalize in watermark order.
///
/// Transport failures are sticky: once a worker connection breaks without
/// a clean shutdown, every subsequent poll and the final `finish` return
/// the typed error instead of silently under-merged windows.
pub struct DistributedSession {
    addr: SocketAddr,
    events: Receiver<Event>,
    num_workers: u32,
    interval_ms: i64,
    seed: RunSeed,
    directive: SizingDirective,
    shard_set: ShardSet<f64>,
    finalizer: WindowFinalizer,
    pending: BTreeMap<i64, BTreeMap<u32, Digest>>,
    workers: BTreeMap<u32, WorkerPeer>,
    ready: Vec<WindowResult>,
    error: Option<SaError>,
    completed: u64,
    aggregated: u64,
    merged_watermark: Option<EventTime>,
    timeout: Duration,
    started: Instant,
}

impl DistributedSession {
    /// Binds the listener and starts the accept service. Called through
    /// [`crate::StreamApprox::distributed`], which supplies the query and
    /// policy parts.
    pub(crate) fn start(
        window: WindowSpec,
        confidence: Confidence,
        directive: SizingDirective,
        config: DistributedConfig,
    ) -> Result<Self, SaError> {
        if config.workers == 0 {
            return Err(SaError::InvalidConfig(
                "a distributed session needs at least one worker".to_string(),
            ));
        }
        if let SizingDirective::Fraction(f) = directive {
            if !(f > 0.0 && f <= 1.0) {
                return Err(SaError::InvalidConfig(format!(
                    "sampling fraction {f} outside (0, 1]"
                )));
            }
        }
        let interval_ms = config.pane_interval_ms.unwrap_or(window.slide_millis());
        if interval_ms <= 0 {
            return Err(SaError::InvalidConfig(format!(
                "non-positive pane interval {interval_ms}"
            )));
        }
        let listener = TcpListener::bind(&config.bind_addr).map_err(|e| {
            SaError::InvalidConfig(format!("cannot bind {}: {e}", config.bind_addr))
        })?;
        let addr = listener.local_addr().map_err(|e| {
            SaError::InvalidConfig(format!("cannot resolve the bound address: {e}"))
        })?;
        // Digests carry values already projected to f64, so the
        // coordinator-side merge runs under the identity projection;
        // reservoir merging never looks at values, only counters and the
        // RNG, which is what makes this bit-identical to merging the
        // unprojected per-shard samplers.
        let mut shard_set = ShardSet::new(config.workers as usize, config.seed, Arc::new(|v| *v));
        let _ = shard_set.rearm(directive, config.expected_pane_items);
        let assign = AssignTemplate {
            num_workers: config.workers,
            seed: config.seed,
            directive: directive_to_wire(directive),
            pane_interval_ms: interval_ms,
            expected_pane_items: config.expected_pane_items as u64,
            window,
            confidence,
        };
        let (tx, rx) = channel();
        thread::spawn(move || acceptor_loop(listener, assign, tx));
        Ok(DistributedSession {
            addr,
            events: rx,
            num_workers: config.workers,
            interval_ms,
            seed: config.seed,
            directive,
            shard_set,
            finalizer: WindowFinalizer::new(window, confidence),
            pending: BTreeMap::new(),
            workers: BTreeMap::new(),
            ready: Vec::new(),
            error: None,
            completed: 0,
            aggregated: 0,
            merged_watermark: None,
            timeout: config.timeout,
            started: Instant::now(),
        })
    }

    /// The address workers should [`connect_worker`] to — useful with the
    /// default `127.0.0.1:0` bind, where the OS picks the port.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn fail(&mut self, error: SaError) {
        if self.error.is_none() {
            self.error = Some(error);
        }
    }

    fn absorb(&mut self, event: Event) {
        match event {
            Event::Joined { worker, results } => {
                self.workers.insert(
                    worker,
                    WorkerPeer {
                        status: WorkerStatus {
                            worker,
                            ingest: IngestCounters::default(),
                            watermark: None,
                            lag: 0,
                            last_checkpoint_pane: None,
                            items_since_checkpoint: 0,
                            snapshot_bytes: 0,
                        },
                        done: false,
                        results,
                    },
                );
            }
            Event::Digest(digest) => self.absorb_digest(*digest),
            Event::Heartbeat {
                worker,
                ingest,
                watermark,
                lag,
                last_checkpoint_pane,
                items_since_checkpoint,
                snapshot_bytes,
            } => {
                if let Some(peer) = self.workers.get_mut(&worker) {
                    peer.status.ingest = ingest;
                    peer.status.watermark = watermark.max(peer.status.watermark);
                    peer.status.lag = lag;
                    peer.status.last_checkpoint_pane = last_checkpoint_pane;
                    peer.status.items_since_checkpoint = items_since_checkpoint;
                    peer.status.snapshot_bytes = snapshot_bytes;
                }
            }
            Event::Done { worker } => {
                if let Some(peer) = self.workers.get_mut(&worker) {
                    peer.done = true;
                }
            }
            Event::Failed(error) => self.fail(error),
        }
    }

    fn absorb_digest(&mut self, digest: Digest) {
        let start = digest.pane.start.as_millis();
        let end = digest.pane.end.as_millis();
        if start.rem_euclid(self.interval_ms) != 0 || end != start + self.interval_ms {
            return self.fail(SaError::Wire(format!(
                "digest pane {} is not a {}ms pane",
                digest.pane, self.interval_ms
            )));
        }
        let exact = self.directive == SizingDirective::Everything;
        if exact != matches!(digest.payload, DigestPayload::Exact(_)) {
            return self.fail(SaError::Wire(format!(
                "worker {} digest payload does not match the run directive",
                digest.worker
            )));
        }
        if let Some(merged) = self.merged_watermark {
            if start < merged.as_millis() {
                return self.fail(SaError::Wire(format!(
                    "worker {} digest for already-merged pane {}",
                    digest.worker, digest.pane
                )));
            }
        }
        if let Some(peer) = self.workers.get_mut(&digest.worker) {
            peer.status.ingest = digest.counters;
            peer.status.watermark = digest.watermark.max(peer.status.watermark);
            peer.status.lag = digest.lag;
            peer.status.last_checkpoint_pane = digest.last_checkpoint_pane;
            peer.status.items_since_checkpoint = digest.items_since_checkpoint;
            peer.status.snapshot_bytes = digest.snapshot_bytes;
        }
        let worker = digest.worker;
        if self
            .pending
            .entry(start)
            .or_default()
            .insert(worker, digest)
            .is_some()
        {
            self.fail(SaError::Wire(format!(
                "worker {worker} sent two digests for one pane"
            )));
        }
    }

    fn drain_pending_events(&mut self) {
        while let Ok(event) = self.events.try_recv() {
            self.absorb(event);
        }
    }

    /// Whether every worker has accounted for the pane starting at
    /// `start`: delivered a digest, watermarked past its end, or shut
    /// down for good.
    fn pane_ready(&self, start: i64) -> bool {
        let end = start + self.interval_ms;
        let digests = self.pending.get(&start);
        (0..self.num_workers).all(|w| {
            let Some(peer) = self.workers.get(&w) else {
                return false; // not yet joined
            };
            peer.done
                || digests.is_some_and(|d| d.contains_key(&w))
                || peer.status.watermark.is_some_and(|t| t.as_millis() >= end)
        })
    }

    fn merge_ready_panes(&mut self) {
        while self.error.is_none() {
            let Some((&start, _)) = self.pending.iter().next() else {
                break;
            };
            if !self.pane_ready(start) {
                break;
            }
            self.merge_pane(start);
        }
    }

    fn merge_pane(&mut self, start: i64) {
        let end = start + self.interval_ms;
        let mut digests = self.pending.remove(&start).unwrap_or_default();
        let exact = self.directive == SizingDirective::Everything;
        // A worker with no digest for a ready pane skipped it over a quiet
        // gap; its contribution is the same empty close an idle in-process
        // shard would have produced.
        let panes: Vec<WorkerPane<f64>> = (0..self.num_workers)
            .map(|w| match digests.remove(&w).map(|d| d.payload) {
                Some(DigestPayload::Sampled(sample)) => WorkerPane::Sampled(sample),
                Some(DigestPayload::Exact(stats)) => WorkerPane::Exact(stats),
                None if exact => WorkerPane::Exact(Vec::new()),
                None => WorkerPane::Sampled(StratifiedSample::new()),
            })
            .collect();
        let mut rng = SmallRng::seed_from_u64(pane_merge_seed(self.seed, start));
        let payload = self.shard_set.merge_panes(panes, &mut rng);
        self.aggregated += payload.sampled();
        let pane = Window::new(EventTime::from_millis(start), EventTime::from_millis(end));
        self.finalizer.ingest_interval(pane, payload);
        self.finalizer.close_interval(EventTime::from_millis(end));
        self.merged_watermark = Some(EventTime::from_millis(end));
        self.publish_finalized();
    }

    fn publish_finalized(&mut self) {
        let done = self.finalizer.drain_windows();
        if done.is_empty() {
            return;
        }
        self.completed += done.len() as u64;
        for peer in self.workers.values_mut() {
            if let Some(stream) = &mut peer.results {
                let delivered = done.iter().all(|w| {
                    write_message(stream, &Message::WindowResult(result_to_wire(w))).is_ok()
                });
                if !delivered {
                    // A subscriber that went away only loses its copy; the
                    // run's results live on the coordinator.
                    peer.results = None;
                }
            }
        }
        self.ready.extend(done);
    }

    /// Takes the windows finalized since the last poll, in watermark
    /// order, without blocking: only digests already received are merged.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] once any worker connection has broken
    /// without a clean shutdown (the error is sticky), [`SaError::Wire`]
    /// on protocol violations.
    pub fn poll_windows(&mut self) -> Result<Vec<WindowResult>, SaError> {
        self.drain_pending_events();
        self.merge_ready_panes();
        if let Some(error) = &self.error {
            return Err(error.clone());
        }
        Ok(std::mem::take(&mut self.ready))
    }

    /// A snapshot of the run's progress: per-worker ingest counters,
    /// watermarks and lag (as of each worker's last digest or heartbeat)
    /// on [`SessionStatus::workers`], plus the merged totals.
    pub fn status(&self) -> SessionStatus {
        let mut ingest = IngestCounters::default();
        let mut items_since_checkpoint = 0u64;
        let mut snapshot_bytes = 0u64;
        for peer in self.workers.values() {
            ingest.absorb(peer.status.ingest);
            items_since_checkpoint += peer.status.items_since_checkpoint;
            snapshot_bytes += peer.status.snapshot_bytes;
        }
        SessionStatus {
            items_pushed: ingest.ingested,
            windows_completed: self.completed,
            watermark: self.merged_watermark,
            ingest,
            shards: Vec::new(),
            workers: self.workers.values().map(|p| p.status).collect(),
            // Checkpointing is worker-local in the distributed tier: the
            // coordinator has no session-wide checkpoint pane, and the
            // exposure totals below sum the workers' reports.
            last_checkpoint_pane: None,
            items_since_checkpoint,
            snapshot_bytes,
        }
    }

    fn all_done(&self) -> bool {
        self.workers.len() == self.num_workers as usize && self.workers.values().all(|p| p.done)
    }

    /// Waits for every worker to shut down cleanly, merges the remaining
    /// panes, and returns the completed run. Results not drained through
    /// [`poll_windows`](DistributedSession::poll_windows) are in the
    /// output's `windows`, exactly like a local session's `finish`.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] if a worker connection broke without a
    /// shutdown, or if workers are still missing when the configured
    /// timeout runs out; [`SaError::Wire`] on protocol violations.
    pub fn finish(mut self) -> Result<RunOutput, SaError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            self.drain_pending_events();
            self.merge_ready_panes();
            if let Some(error) = self.error.take() {
                return Err(error);
            }
            if self.all_done() {
                break;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(SaError::Disconnected("timed out waiting for workers"));
            };
            match self.events.recv_timeout(remaining) {
                Ok(event) => self.absorb(event),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(SaError::Disconnected("timed out waiting for workers"));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(SaError::Disconnected("coordinator service threads died"));
                }
            }
        }
        self.merge_ready_panes();
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.finalizer.finish();
        self.publish_finalized();
        let status = self.status();
        Ok(RunOutput {
            windows: std::mem::take(&mut self.ready),
            items_ingested: status.ingest.ingested,
            items_aggregated: self.aggregated,
            elapsed: self.started.elapsed(),
        })
    }
}

impl std::fmt::Debug for DistributedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedSession")
            .field("addr", &self.addr)
            .field("num_workers", &self.num_workers)
            .field("joined", &self.workers.len())
            .field("windows_completed", &self.completed)
            .field("watermark", &self.merged_watermark)
            .finish()
    }
}

fn project_sample<R>(
    sample: StratifiedSample<R>,
    proj: &(dyn Fn(&R) -> f64 + Send + Sync),
) -> StratifiedSample<f64> {
    sample
        .into_strata()
        .into_iter()
        .map(|s| StratumSample {
            stratum: s.stratum,
            items: s.items.iter().map(proj).collect(),
            population: s.population,
            capacity: s.capacity,
        })
        .collect()
}

/// The worker side of the distributed tier: a local [`Engine`] that
/// samples its shard of the stream and ships one digest per closed pane
/// to the coordinator, built by [`connect_worker`].
///
/// The engine holds worker `w`'s full-capacity shard sampler — the exact
/// sampler [`ShardSet::rearm`] hands shard `w` in the in-process sharded
/// engine — so the coordinator's canonical merge of all workers' digests
/// is bit-identical to the single-process merge of the same shards.
///
/// `poll_windows` is always empty on a worker: estimation happens on the
/// coordinator. A worker that joined with `wants_results` receives the
/// finalized windows back in [`Engine::finish`]'s `RunOutput` once the
/// coordinator completes the run.
pub struct DigestEngine<R> {
    stream: TcpStream,
    worker: u32,
    wants_results: bool,
    cursor: PaneCursor,
    sampler: IntervalWorker<R>,
    proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    watermark: Option<EventTime>,
    lag: Arc<AtomicU64>,
    started: Instant,
    alive: bool,
    /// Checkpoint exposure the session reports through
    /// [`Engine::note_checkpoint`], mirrored onto every digest and
    /// heartbeat so the coordinator's [`WorkerStatus`] shows it.
    last_checkpoint_pane: Option<i64>,
    items_at_checkpoint: u64,
    snapshot_bytes: u64,
}

/// Joins a coordinator as worker `worker`: connects, performs the
/// join/assign handshake, and builds the worker's [`DigestEngine`] from
/// the assigned run configuration (seed, directive, pane interval,
/// window — workers need no local configuration beyond the address, their
/// id, and the projection from their record type).
///
/// Wrap the engine in [`crate::ApproxSession::from_engine`] for the
/// push/poll session API; with `wants_results` the finalized windows come
/// back in the session's `finish` output.
///
/// # Errors
///
/// [`SaError::InvalidConfig`] when the coordinator is unreachable,
/// [`SaError::Wire`] / [`SaError::Disconnected`] when the handshake is
/// malformed or cut short.
pub fn connect_worker<R>(
    addr: impl ToSocketAddrs,
    worker: u32,
    wants_results: bool,
    proj: impl Fn(&R) -> f64 + Send + Sync + 'static,
) -> Result<DigestEngine<R>, SaError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| SaError::InvalidConfig(format!("cannot reach the coordinator: {e}")))?;
    write_message(
        &mut stream,
        &Message::HelloJoin {
            worker,
            wants_results,
        },
    )?;
    let Some(reply) = read_message(&mut stream)? else {
        return Err(SaError::Disconnected("coordinator hung up mid-handshake"));
    };
    let Message::HelloAssign {
        worker: assigned,
        num_workers,
        seed,
        directive,
        pane_interval_ms,
        expected_pane_items,
        window,
        confidence: _,
    } = reply
    else {
        return Err(SaError::Wire(
            "coordinator did not answer the join with an assignment".to_string(),
        ));
    };
    if assigned != worker {
        return Err(SaError::Wire(format!(
            "coordinator assigned id {assigned} to worker {worker}"
        )));
    }
    let proj: Arc<dyn Fn(&R) -> f64 + Send + Sync> = Arc::new(proj);
    // Exactly the sampler ShardSet::rearm builds for shard `worker`, so
    // the coordinator's merge sees the same per-shard state a
    // single-process sharded run would.
    let sizing = sampler_sizing(
        directive_from_wire(directive),
        expected_pane_items as usize,
        num_workers as usize,
    );
    let sampler = IntervalWorker::for_shard(sizing, seed, worker as usize, Arc::clone(&proj));
    Ok(DigestEngine {
        stream,
        worker,
        wants_results,
        cursor: PaneCursor::new(pane_interval_ms, window),
        sampler,
        proj,
        watermark: None,
        lag: Arc::new(AtomicU64::new(0)),
        started: Instant::now(),
        alive: true,
        last_checkpoint_pane: None,
        items_at_checkpoint: 0,
        snapshot_bytes: 0,
    })
}

impl<R> DigestEngine<R> {
    /// A handle for reporting this worker's source lag (outstanding items
    /// in its replay log); the engine stamps the latest value onto every
    /// digest and heartbeat. The handle stays valid after the engine is
    /// boxed into an [`crate::ApproxSession`].
    pub fn lag_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.lag)
    }

    /// Sends a liveness heartbeat: running ingest counters, watermark and
    /// lag, without closing a pane. Useful while a source is quiet.
    ///
    /// # Errors
    ///
    /// [`SaError::Wire`] when the coordinator connection is gone.
    pub fn heartbeat(&mut self) -> Result<(), SaError> {
        let (ingested, _) = self.sampler.counters();
        write_message(
            &mut self.stream,
            &Message::Heartbeat {
                worker: self.worker,
                ingest: IngestCounters {
                    ingested,
                    dropped_late: 0,
                },
                watermark: self.watermark,
                lag: self.lag.load(Ordering::Relaxed),
                last_checkpoint_pane: self.last_checkpoint_pane,
                items_since_checkpoint: ingested.saturating_sub(self.items_at_checkpoint),
                snapshot_bytes: self.snapshot_bytes,
            },
        )
    }

    fn close_pane(&mut self) -> Result<(), SaError> {
        let (start, end) = self.cursor.pane().expect("close follows an open pane");
        let payload = match self.sampler.close_interval_parts() {
            WorkerPane::Sampled(sample) => {
                DigestPayload::Sampled(project_sample(sample, self.proj.as_ref()))
            }
            WorkerPane::Exact(stats) => DigestPayload::Exact(stats),
        };
        let (ingested, _) = self.sampler.counters();
        let digest = Digest {
            worker: self.worker,
            pane: Window::new(EventTime::from_millis(start), EventTime::from_millis(end)),
            counters: IngestCounters {
                ingested,
                dropped_late: 0,
            },
            watermark: self.watermark,
            lag: self.lag.load(Ordering::Relaxed),
            last_checkpoint_pane: self.last_checkpoint_pane,
            items_since_checkpoint: ingested.saturating_sub(self.items_at_checkpoint),
            snapshot_bytes: self.snapshot_bytes,
            payload,
        };
        let sent = write_message(&mut self.stream, &Message::PaneDigest(digest));
        if sent.is_err() {
            self.alive = false;
        }
        sent
    }
}

impl<R> Engine<R> for DigestEngine<R> {
    fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError> {
        if !self.alive {
            return Err(SaError::Disconnected("digest worker lost its coordinator"));
        }
        let t = item.time.as_millis();
        while self.cursor.needs_close(t) {
            self.close_pane()?;
            self.cursor.next(t);
        }
        self.watermark = Some(item.time);
        self.sampler.observe(item.stratum, item.value);
        Ok(())
    }

    fn poll_windows(&mut self) -> Vec<WindowResult> {
        Vec::new()
    }

    fn note_checkpoint(&mut self, pane: Option<i64>, snapshot_bytes: u64) {
        let (ingested, _) = self.sampler.counters();
        self.last_checkpoint_pane = pane;
        self.items_at_checkpoint = ingested;
        self.snapshot_bytes = snapshot_bytes;
    }

    fn finish(self: Box<Self>) -> RunOutput {
        let mut this = *self;
        let mut windows = Vec::new();
        if this.alive {
            let flushed = this.cursor.pane().is_none() || this.close_pane().is_ok();
            let goodbye = flushed
                && write_message(
                    &mut this.stream,
                    &Message::Shutdown {
                        worker: this.worker,
                    },
                )
                .is_ok();
            if goodbye && this.wants_results {
                // The coordinator streams results as windows finalize and
                // closes the connection once the run is over; bound the
                // drain so a stuck coordinator cannot hang the worker.
                let _ = this.stream.set_read_timeout(Some(Duration::from_secs(30)));
                while let Ok(Some(msg)) = read_message(&mut this.stream) {
                    if let Message::WindowResult(result) = msg {
                        windows.push(result_from_wire(result));
                    }
                }
            }
        }
        let (ingested, sampled) = this.sampler.counters();
        RunOutput {
            windows,
            items_ingested: ingested,
            items_aggregated: sampled,
            elapsed: this.started.elapsed(),
        }
    }
}

impl<R> std::fmt::Debug for DigestEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DigestEngine")
            .field("worker", &self.worker)
            .field("wants_results", &self.wants_results)
            .field("watermark", &self.watermark)
            .field("alive", &self.alive)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FixedPerStratum;
    use crate::query::Query;
    use crate::session::StreamApprox;
    use sa_types::StratumId;

    fn query() -> Query<f64> {
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
    }

    #[test]
    fn zero_workers_rejected() {
        let mut policy = FixedPerStratum(8);
        let err = StreamApprox::new(query(), &mut policy)
            .distributed(DistributedConfig::new(0))
            .unwrap_err();
        assert!(matches!(err, SaError::InvalidConfig(_)));
    }

    #[test]
    fn unreachable_coordinator_is_a_typed_error() {
        // Port 1 on loopback is essentially never listening.
        let err = connect_worker("127.0.0.1:1", 0, false, |v: &f64| *v).unwrap_err();
        assert!(matches!(err, SaError::InvalidConfig(_)));
    }

    #[test]
    fn directive_conversion_roundtrips() {
        for d in [
            SizingDirective::Fraction(0.25),
            SizingDirective::PerStratum(7),
            SizingDirective::SharedTotal(64),
            SizingDirective::Everything,
        ] {
            assert_eq!(directive_from_wire(directive_to_wire(d)), d);
        }
    }

    #[test]
    fn loopback_single_worker_round_trip() {
        let mut policy = FixedPerStratum(16);
        let coordinator = StreamApprox::new(query(), &mut policy)
            .distributed(
                DistributedConfig::new(1)
                    .with_seed(RunSeed::new(11))
                    .with_timeout(Duration::from_secs(10)),
            )
            .expect("bind loopback");
        let addr = coordinator.addr();
        let handle = thread::spawn(move || {
            let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("join");
            let mut session = crate::session::ApproxSession::from_engine(Box::new(engine));
            for i in 0..3_000i64 {
                let item = StreamItem::new(
                    StratumId((i % 2) as u32),
                    EventTime::from_millis(i),
                    f64::from(i as u32 % 10),
                );
                session.push(item).expect("in order");
            }
            session.finish()
        });
        let worker_out = handle.join().expect("worker thread");
        let out = coordinator.finish().expect("clean run");
        assert_eq!(out.items_ingested, 3_000);
        assert_eq!(worker_out.items_ingested, 3_000);
        assert_eq!(out.windows.len(), 3);
        for w in &out.windows {
            let (lo, hi) = w.mean.interval();
            assert!(lo <= w.mean.value && w.mean.value <= hi);
        }
    }

    #[test]
    fn status_reports_per_worker_progress() {
        let mut policy = FixedPerStratum(8);
        let mut coordinator = StreamApprox::new(query(), &mut policy)
            .distributed(DistributedConfig::new(1).with_timeout(Duration::from_secs(10)))
            .expect("bind loopback");
        let addr = coordinator.addr();
        let handle = thread::spawn(move || {
            let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("join");
            let lag = engine.lag_handle();
            lag.store(42, Ordering::Relaxed);
            let mut session = crate::session::ApproxSession::from_engine(Box::new(engine));
            for i in 0..2_500i64 {
                session
                    .push(StreamItem::new(
                        StratumId(0),
                        EventTime::from_millis(i),
                        1.0,
                    ))
                    .expect("in order");
            }
            session.finish()
        });
        let _ = handle.join().expect("worker thread");
        // Drain events so the status below sees the worker's digests.
        let _ = coordinator.poll_windows().expect("no failure");
        let status = coordinator.status();
        assert_eq!(status.workers.len(), 1);
        assert_eq!(status.workers[0].worker, 0);
        assert_eq!(status.workers[0].lag, 42);
        assert!(status.workers[0].ingest.ingested > 0);
        let out = coordinator.finish().expect("clean run");
        assert_eq!(out.items_ingested, 2_500);
    }
}
