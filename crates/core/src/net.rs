//! The distributed tier: a self-healing TCP coordinator/worker
//! aggregation service.
//!
//! The paper deploys StreamApprox as *one* logical computation over many
//! machines: workers sample their partitions of the stream close to the
//! data, and only the compact mergeable sampler state travels to the node
//! that finalizes windows (the architecture of §4, fed by the aggregator
//! of §2.1). This module is that deployment shape over real sockets,
//! speaking the `sa-net` framed protocol:
//!
//! * [`DistributedSession`] — the coordinator, started through
//!   [`crate::StreamApprox::distributed`]: binds a listener, assigns the
//!   full run configuration to each joining worker, collects one
//!   [`sa_net::Digest`] per worker per closed pane, merges each pane's
//!   digests in canonical worker-id order through the same [`ShardSet`]
//!   path the in-process sharded engine uses, and finalizes windows with
//!   estimation-layer error bounds.
//! * [`DigestEngine`] (built by [`connect_worker`] or [`rejoin_worker`]) —
//!   one worker: a local [`Engine`] that samples its shard of the stream
//!   with full-capacity OASRS and ships the pane's sampler state at every
//!   pane close instead of estimating locally, heartbeating automatically
//!   in the background. Wrap it in
//!   [`crate::ApproxSession::from_engine`] for the ordinary push/poll
//!   session API.
//!
//! Determinism survives the wire: worker `w` builds exactly the sampler
//! [`ShardSet::rearm`] would hand shard `w`, digests merge in ascending
//! worker id, and each pane's merge RNG is seeded by
//! [`crate::pane_merge_seed`] from the run seed and the pane's *start
//! time* — so a fault-free distributed run reproduces, bit for bit, the
//! single-process merge of the same per-shard samplers (§3.2's merge
//! soundness, verified end-to-end in `tests/distributed.rs`).
//!
//! # Surviving worker failure
//!
//! Each worker shard is supervised through a five-state lifecycle, driven
//! by the [`FaultPolicy`] on [`DistributedConfig`]:
//!
//! ```text
//!              HelloJoin                    Shutdown
//!   Empty ────────────────▶ Live ────────────────────▶ Done
//!                           │  ▲
//!          connection lost, │  │ rejoin adopts the shard
//!          or heartbeats    │  │ (generation + 1, at most
//!          missed for       │  │ `max_respawn` times)
//!          `dead_after()`   ▼  │
//!                           Dead ──────────────────▶ Retired
//!                                 no replacement within
//!                                 `backoff`
//! ```
//!
//! * **Liveness.** Workers heartbeat automatically every
//!   `heartbeat_interval` (the cadence is assigned in the join
//!   handshake). The coordinator tracks each worker's last sign of life —
//!   heartbeat, digest, or checkpoint slice, in any phase of the run —
//!   and declares a worker `Dead` after `miss_budget` consecutive missed
//!   heartbeats, or immediately when its connection drops without a clean
//!   [`sa_net::Message::Shutdown`]. A late heartbeat from a worker that
//!   was declared dead but never replaced revives it.
//! * **Degraded merges.** A pane blocked on a dead or straggling worker
//!   for longer than `pane_timeout` (and every pane a `Retired` worker
//!   can no longer serve) merges from the digests that did arrive. The
//!   missing shards' mass is estimated from the present digests,
//!   populations are inflated Horvitz–Thompson-style
//!   ([`widen_for_shortfall`]) so confidence intervals widen to cover the
//!   loss, and every window touching the pane is stamped
//!   [`WindowResult::degraded`] with the summed
//!   [`WindowResult::lost_items`]. The watermark keeps advancing; a run
//!   degrades, it does not hang.
//! * **Rejoin and handoff.** Workers publish their sealed session
//!   snapshots to the coordinator at every checkpoint
//!   ([`Engine::publish_checkpoint`] →
//!   [`sa_net::Message::SnapshotSlice`]). A replacement process calls
//!   [`rejoin_worker`]: the coordinator hands it the first dead shard
//!   (generation-tagged, so frames from the dead predecessor are
//!   ignored), together with that shard's last snapshot. Resuming via
//!   [`crate::ApproxSession::resume_from_engine`] replays the shard's
//!   source from the recorded consumer offsets, so recovery loses at most
//!   the checkpoint exposure budget; digests for panes the coordinator
//!   already merged, and duplicates of digests the dead predecessor
//!   delivered, are dropped so nothing is double-counted.
//! * **Bounded waits.** Every coordinator wait is bounded: the acceptor
//!   accepts in a dedicated thread forever (a connection that wedges
//!   before its `HelloJoin` only stalls its own handshake thread, for at
//!   most `pane_timeout`), pane collection is bounded by `pane_timeout`,
//!   and [`DistributedSession::finish`] by the configured run timeout.
//!
//! Failure semantics stay typed at the session boundary: a worker that
//! can never be excused (it never joined, or the fault policy windows
//! have not elapsed when the run timeout expires) surfaces as
//! [`SaError::Disconnected`]; hostile or malformed frames on a worker's
//! connection kill that connection (and only it), while protocol
//! violations that reach the merge layer — misaligned panes, payloads
//! contradicting the run directive, duplicate first-generation digests —
//! surface as [`SaError::Wire`].

use crate::checkpoint::{open_session_snapshot, RecordCodec};
use crate::combine::PanePayload;
use crate::cost::SizingDirective;
use crate::engine::Engine;
use crate::output::{RunOutput, WindowResult};
use crate::runtime::{
    pane_merge_seed, sampler_sizing, IntervalWorker, PaneCursor, ShardSet, WindowFinalizer,
    WorkerPane,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_estimate::widen_for_shortfall;
use sa_net::frame::{read_message, write_message};
use sa_net::{Digest, DigestPayload, Directive, Message, WindowResultMsg};
use sa_types::wire::{WireDecode, WireEncode, WireReader};
use sa_types::{
    Confidence, EngineSnapshot, EventTime, FaultPolicy, IngestCounters, RunSeed, SaError,
    SessionSnapshot, SessionStatus, StratifiedSample, StratumSample, StreamItem, Window,
    WindowSpec, WorkerHealth, WorkerStatus,
};
use std::collections::BTreeMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of a distributed coordinator session.
///
/// Mirrors [`crate::ShardedConfig`] — the distributed tier is the sharded
/// engine with processes for threads and frames for channels — plus the
/// transport knobs a real service needs: a bind address, a run timeout,
/// and the [`FaultPolicy`] governing failure detection and self-healing.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Number of workers that will join; also the shard count of the
    /// canonical merge.
    pub workers: u32,
    /// Address the coordinator listens on. Defaults to `127.0.0.1:0`
    /// (loopback, OS-assigned port — read it back with
    /// [`DistributedSession::addr`]).
    pub bind_addr: String,
    /// Pane length in milliseconds; `None` uses the window slide, which
    /// is the minimum pane count (fewer digests per window).
    pub pane_interval_ms: Option<i64>,
    /// Seed of the run: workers derive their shard-local sampler seeds
    /// from it, and every pane merge draws from an RNG derived from it.
    pub seed: RunSeed,
    /// Expected items per pane across all workers; sizes a fraction
    /// directive's first-interval reservoirs.
    pub expected_pane_items: usize,
    /// How long `finish` waits for missing workers or outstanding digests
    /// before declaring the run disconnected.
    pub timeout: Duration,
    /// Failure detection and self-healing: heartbeat cadence, miss
    /// budget, pane straggler timeout, respawn cap and retirement
    /// backoff. The defaults never trip on a healthy loopback run.
    pub fault: FaultPolicy,
}

impl DistributedConfig {
    /// A loopback configuration for `workers` workers with a 30-second
    /// straggler timeout and the default [`FaultPolicy`].
    pub fn new(workers: u32) -> Self {
        DistributedConfig {
            workers,
            bind_addr: "127.0.0.1:0".to_string(),
            pane_interval_ms: None,
            seed: RunSeed::DEFAULT,
            expected_pane_items: 1_000,
            timeout: Duration::from_secs(30),
            fault: FaultPolicy::default(),
        }
    }

    /// Sets the bind address.
    #[must_use]
    pub fn with_bind_addr(mut self, addr: impl Into<String>) -> Self {
        self.bind_addr = addr.into();
        self
    }

    /// Sets an explicit pane interval.
    #[must_use]
    pub fn with_pane_interval_ms(mut self, interval: i64) -> Self {
        self.pane_interval_ms = Some(interval);
        self
    }

    /// Sets the run seed.
    #[must_use]
    pub fn with_seed(mut self, seed: RunSeed) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the expected items per pane (reservoir pre-sizing).
    #[must_use]
    pub fn with_expected_pane_items(mut self, expected: usize) -> Self {
        self.expected_pane_items = expected;
        self
    }

    /// Sets the run timeout `finish` waits under.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the failure-detection and self-healing policy.
    #[must_use]
    pub fn with_fault_policy(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }
}

fn directive_to_wire(directive: SizingDirective) -> Directive {
    match directive {
        SizingDirective::Fraction(f) => Directive::Fraction(f),
        SizingDirective::PerStratum(n) => Directive::PerStratum(n),
        SizingDirective::SharedTotal(n) => Directive::SharedTotal(n),
        SizingDirective::Everything => Directive::Everything,
    }
}

fn directive_from_wire(directive: Directive) -> SizingDirective {
    match directive {
        Directive::Fraction(f) => SizingDirective::Fraction(f),
        Directive::PerStratum(n) => SizingDirective::PerStratum(n),
        Directive::SharedTotal(n) => SizingDirective::SharedTotal(n),
        Directive::Everything => SizingDirective::Everything,
    }
}

fn result_to_wire(result: &WindowResult) -> WindowResultMsg {
    WindowResultMsg {
        window: result.window,
        sum: result.sum,
        mean: result.mean,
        sum_by_stratum: result.sum_by_stratum.clone(),
        mean_by_stratum: result.mean_by_stratum.clone(),
        degraded: result.degraded,
        lost_items: result.lost_items,
    }
}

fn result_from_wire(msg: WindowResultMsg) -> WindowResult {
    WindowResult {
        window: msg.window,
        sum: msg.sum,
        mean: msg.mean,
        sum_by_stratum: msg.sum_by_stratum,
        mean_by_stratum: msg.mean_by_stratum,
        degraded: msg.degraded,
        lost_items: msg.lost_items,
    }
}

/// Total item population a digest accounts for, across all its strata —
/// the per-shard mass the lost-contribution estimate extrapolates from.
fn digest_population(digest: &Digest) -> u64 {
    match &digest.payload {
        DigestPayload::Sampled(sample) => sample.iter().map(|s| s.population).sum(),
        DigestPayload::Exact(stats) => stats.iter().map(|s| s.population).sum(),
    }
}

/// Everything the coordinator tells each joining worker, identical for
/// all of them except the confirmed worker id.
#[derive(Clone, Copy)]
struct AssignTemplate {
    num_workers: u32,
    seed: RunSeed,
    directive: Directive,
    pane_interval_ms: i64,
    expected_pane_items: u64,
    window: WindowSpec,
    confidence: Confidence,
    heartbeat_interval_ms: u64,
}

impl AssignTemplate {
    fn for_worker(self, worker: u32) -> Message {
        Message::HelloAssign {
            worker,
            num_workers: self.num_workers,
            seed: self.seed,
            directive: self.directive,
            pane_interval_ms: self.pane_interval_ms,
            expected_pane_items: self.expected_pane_items,
            window: self.window,
            confidence: self.confidence,
            heartbeat_interval_ms: self.heartbeat_interval_ms,
        }
    }
}

/// Supervision state of one worker shard's slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    /// No worker has ever claimed the shard.
    Empty,
    /// A worker (of the slot's current generation) owns the shard.
    Live,
    /// The owner failed; the shard is open for adoption.
    Dead,
    /// The shard died and no replacement arrived within the backoff; its
    /// remaining panes merge degraded.
    Retired,
    /// The owner shut down cleanly; the shard's stream is complete.
    Done,
}

/// One shard's supervision slot, shared between the session, the
/// acceptor's handshake threads (which claim slots) and the reader
/// threads (which store checkpoint slices).
struct Slot {
    state: SlotState,
    /// Bumped on every adoption; events from older generations are stale.
    gen: u32,
    /// Times the shard has been re-adopted.
    respawns: u32,
    /// The owner's last sealed session snapshot (empty until the first
    /// checkpoint is published) — the handoff a replacement resumes from.
    snapshot: Vec<u8>,
    snapshot_pane: Option<i64>,
}

struct SlotTable {
    slots: Vec<Slot>,
    /// Set when the session shuts down; stops the acceptor and refuses
    /// late handshakes.
    closed: bool,
}

/// Poison-tolerant lock: supervision state stays usable even if a
/// service thread panicked while holding it.
fn lock(table: &Mutex<SlotTable>) -> MutexGuard<'_, SlotTable> {
    table
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What the acceptor, handshake and reader threads report to the
/// session. Every worker-scoped event is generation-tagged so frames
/// from a replaced worker's lingering connection are ignored.
enum Event {
    Joined {
        worker: u32,
        gen: u32,
        respawns: u32,
        results: Option<TcpStream>,
    },
    Digest {
        gen: u32,
        digest: Box<Digest>,
    },
    Heartbeat {
        worker: u32,
        gen: u32,
        ingest: IngestCounters,
        watermark: Option<EventTime>,
        lag: u64,
        last_checkpoint_pane: Option<i64>,
        items_since_checkpoint: u64,
        snapshot_bytes: u64,
    },
    /// A sign of life that carries no progress report (a checkpoint
    /// slice was stored).
    Alive {
        worker: u32,
        gen: u32,
    },
    Done {
        worker: u32,
        gen: u32,
    },
    /// The worker's connection is gone or spoke garbage — fatal to the
    /// connection (the worker is declared dead and its shard opened for
    /// adoption), never to the session.
    ConnLost {
        worker: u32,
        gen: u32,
        error: SaError,
    },
    /// The accept service itself failed — fatal to the session.
    Failed(SaError),
}

/// One connected worker, as the coordinator sees it.
struct WorkerPeer {
    status: WorkerStatus,
    done: bool,
    results: Option<TcpStream>,
    gen: u32,
    last_seen: Instant,
    died_at: Option<Instant>,
}

fn reader_loop(
    mut stream: TcpStream,
    worker: u32,
    gen: u32,
    fault: FaultPolicy,
    table: Arc<Mutex<SlotTable>>,
    events: Sender<Event>,
) {
    // Bound the read so a socket that wedges open without traffic cannot
    // pin this thread forever: any live worker heartbeats well inside
    // twice the declared-dead window.
    let read_timeout = (fault.dead_after() * 2).max(Duration::from_secs(1));
    let _ = stream.set_read_timeout(Some(read_timeout));
    loop {
        let event = match read_message(&mut stream) {
            Ok(Some(Message::PaneDigest(digest))) => {
                if digest.worker != worker {
                    Event::ConnLost {
                        worker,
                        gen,
                        error: SaError::Wire(format!(
                            "digest claims worker {} on worker {worker}'s connection",
                            digest.worker
                        )),
                    }
                } else {
                    Event::Digest {
                        gen,
                        digest: Box::new(digest),
                    }
                }
            }
            Ok(Some(Message::Heartbeat {
                worker: w,
                ingest,
                watermark,
                lag,
                last_checkpoint_pane,
                items_since_checkpoint,
                snapshot_bytes,
            })) if w == worker => Event::Heartbeat {
                worker,
                gen,
                ingest,
                watermark,
                lag,
                last_checkpoint_pane,
                items_since_checkpoint,
                snapshot_bytes,
            },
            Ok(Some(Message::SnapshotSlice {
                worker: w,
                pane,
                sealed,
            })) if w == worker => {
                let mut t = lock(&table);
                let slot = &mut t.slots[worker as usize];
                if slot.gen == gen {
                    slot.snapshot = sealed;
                    slot.snapshot_pane = pane;
                }
                drop(t);
                Event::Alive { worker, gen }
            }
            Ok(Some(Message::Shutdown { .. })) => Event::Done { worker, gen },
            Ok(Some(_)) => Event::ConnLost {
                worker,
                gen,
                error: SaError::Wire(format!("unexpected message from worker {worker}")),
            },
            Ok(None) => Event::ConnLost {
                worker,
                gen,
                error: SaError::Disconnected("worker closed without shutdown"),
            },
            Err(error) => Event::ConnLost { worker, gen, error },
        };
        let terminal = !matches!(
            event,
            Event::Digest { .. } | Event::Heartbeat { .. } | Event::Alive { .. }
        );
        if events.send(event).is_err() || terminal {
            return;
        }
    }
}

/// Performs one connection's join handshake: claims a slot, replies with
/// the assignment (and the handoff snapshot on a rejoin), and announces
/// the worker to the session. Any violation — unknown shard, duplicate
/// claim, malformed hello, handshake timeout — drops this connection and
/// nothing else.
fn handshake(
    mut stream: TcpStream,
    assign: AssignTemplate,
    fault: FaultPolicy,
    table: &Arc<Mutex<SlotTable>>,
    events: &Sender<Event>,
) -> Option<(TcpStream, u32, u32)> {
    let _ = stream.set_read_timeout(Some(fault.pane_timeout));
    let _ = stream.set_write_timeout(Some(fault.pane_timeout));
    let hello = read_message(&mut stream).ok()??;
    let (worker, gen, respawns, wants_results, handoff) = match hello {
        Message::HelloJoin {
            worker,
            wants_results,
        } => {
            if worker >= assign.num_workers {
                return None;
            }
            let mut t = lock(table);
            if t.closed {
                return None;
            }
            let slot = &mut t.slots[worker as usize];
            match slot.state {
                SlotState::Empty => {
                    slot.state = SlotState::Live;
                    (worker, slot.gen, slot.respawns, wants_results, None)
                }
                // Joining a dead shard by id restarts it fresh; state
                // adoption goes through `HelloRejoin`.
                SlotState::Dead if slot.respawns < fault.max_respawn => {
                    slot.gen += 1;
                    slot.respawns += 1;
                    slot.state = SlotState::Live;
                    (worker, slot.gen, slot.respawns, wants_results, None)
                }
                _ => return None,
            }
        }
        Message::HelloRejoin { wants_results } => {
            // Wait (bounded) for a shard to need adopting: the session
            // may not have noticed the death yet when the replacement
            // dials in.
            let deadline = Instant::now() + fault.pane_timeout;
            loop {
                {
                    let mut t = lock(table);
                    if t.closed {
                        return None;
                    }
                    let found = t
                        .slots
                        .iter()
                        .position(|s| s.state == SlotState::Dead && s.respawns < fault.max_respawn);
                    if let Some(idx) = found {
                        let slot = &mut t.slots[idx];
                        slot.gen += 1;
                        slot.respawns += 1;
                        slot.state = SlotState::Live;
                        break (
                            idx as u32,
                            slot.gen,
                            slot.respawns,
                            wants_results,
                            Some(slot.snapshot.clone()),
                        );
                    }
                }
                if Instant::now() >= deadline {
                    return None;
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
        _ => return None,
    };
    let replied = write_message(&mut stream, &assign.for_worker(worker)).is_ok()
        && match &handoff {
            Some(snapshot) => write_message(
                &mut stream,
                &Message::Reassign {
                    worker,
                    respawns,
                    snapshot: snapshot.clone(),
                },
            )
            .is_ok(),
            None => true,
        };
    if !replied {
        // The claim never completed; reopen the slot for the next taker.
        let mut t = lock(table);
        let slot = &mut t.slots[worker as usize];
        if slot.gen == gen {
            slot.state = if gen == 0 {
                SlotState::Empty
            } else {
                SlotState::Dead
            };
        }
        return None;
    }
    let results = if wants_results {
        stream.try_clone().ok()
    } else {
        None
    };
    if events
        .send(Event::Joined {
            worker,
            gen,
            respawns,
            results,
        })
        .is_err()
    {
        return None;
    }
    Some((stream, worker, gen))
}

/// Accepts forever; each connection handshakes on its own thread, so a
/// client that wedges before its hello cannot stall other joins or the
/// run. The session stops the loop by setting `closed` and dialing a
/// poison-pill connection to unblock `accept`.
fn acceptor_loop(
    listener: TcpListener,
    assign: AssignTemplate,
    fault: FaultPolicy,
    table: Arc<Mutex<SlotTable>>,
    events: Sender<Event>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if lock(&table).closed {
                    return;
                }
                let _ = events.send(Event::Failed(SaError::Wire(format!("accept failed: {e}"))));
                return;
            }
        };
        if lock(&table).closed {
            return;
        }
        let table = Arc::clone(&table);
        let events = events.clone();
        thread::spawn(move || {
            if let Some((stream, worker, gen)) = handshake(stream, assign, fault, &table, &events) {
                reader_loop(stream, worker, gen, fault, table, events);
            }
        });
    }
}

/// A running coordinator: the distributed counterpart of
/// [`crate::ApproxSession`], started through
/// [`crate::StreamApprox::distributed`].
///
/// The session is passive between calls — digests queue on a channel fed
/// by per-connection reader threads, and merging, liveness checking and
/// retirement happen on the caller's thread inside
/// [`poll_windows`](DistributedSession::poll_windows) and
/// [`finish`](DistributedSession::finish). A pane is merged once every
/// worker has either delivered it, provably advanced past it (its
/// watermark reached the pane end), shut down cleanly, or been retired —
/// or once the pane has been blocked for the fault policy's
/// `pane_timeout`, in which case it merges degraded from the digests at
/// hand. Merges happen in pane order so windows still finalize in
/// watermark order.
///
/// The module-level docs in `net.rs` draw the worker lifecycle state
/// machine behind all of this.
pub struct DistributedSession {
    addr: SocketAddr,
    events: Receiver<Event>,
    num_workers: u32,
    interval_ms: i64,
    seed: RunSeed,
    directive: SizingDirective,
    shard_set: ShardSet<f64>,
    finalizer: WindowFinalizer,
    pending: BTreeMap<i64, BTreeMap<u32, Digest>>,
    /// When each pending pane first saw a digest — the straggler clock
    /// `pane_timeout` measures against.
    pending_since: BTreeMap<i64, Instant>,
    workers: BTreeMap<u32, WorkerPeer>,
    table: Arc<Mutex<SlotTable>>,
    fault: FaultPolicy,
    ready: Vec<WindowResult>,
    error: Option<SaError>,
    completed: u64,
    aggregated: u64,
    degraded_panes: u64,
    lost_items: u64,
    /// Why the most recently failed worker connection died — diagnostic
    /// only (connection loss degrades, it does not error the session).
    last_conn_error: Option<(u32, SaError)>,
    merged_watermark: Option<EventTime>,
    timeout: Duration,
    started: Instant,
}

impl DistributedSession {
    /// Binds the listener and starts the accept service. Called through
    /// [`crate::StreamApprox::distributed`], which supplies the query and
    /// policy parts.
    pub(crate) fn start(
        window: WindowSpec,
        confidence: Confidence,
        directive: SizingDirective,
        config: DistributedConfig,
    ) -> Result<Self, SaError> {
        if config.workers == 0 {
            return Err(SaError::InvalidConfig(
                "a distributed session needs at least one worker".to_string(),
            ));
        }
        if let SizingDirective::Fraction(f) = directive {
            if !(f > 0.0 && f <= 1.0) {
                return Err(SaError::InvalidConfig(format!(
                    "sampling fraction {f} outside (0, 1]"
                )));
            }
        }
        let fault = config.fault;
        if fault.heartbeat_interval.is_zero()
            || fault.miss_budget == 0
            || fault.pane_timeout.is_zero()
        {
            return Err(SaError::InvalidConfig(
                "the fault policy needs a positive heartbeat interval, miss budget and pane \
                 timeout"
                    .to_string(),
            ));
        }
        let interval_ms = config.pane_interval_ms.unwrap_or(window.slide_millis());
        if interval_ms <= 0 {
            return Err(SaError::InvalidConfig(format!(
                "non-positive pane interval {interval_ms}"
            )));
        }
        let listener = TcpListener::bind(&config.bind_addr).map_err(|e| {
            SaError::InvalidConfig(format!("cannot bind {}: {e}", config.bind_addr))
        })?;
        let addr = listener.local_addr().map_err(|e| {
            SaError::InvalidConfig(format!("cannot resolve the bound address: {e}"))
        })?;
        // Digests carry values already projected to f64, so the
        // coordinator-side merge runs under the identity projection;
        // reservoir merging never looks at values, only counters and the
        // RNG, which is what makes this bit-identical to merging the
        // unprojected per-shard samplers.
        let mut shard_set = ShardSet::new(config.workers as usize, config.seed, Arc::new(|v| *v));
        let _ = shard_set.rearm(directive, config.expected_pane_items);
        let assign = AssignTemplate {
            num_workers: config.workers,
            seed: config.seed,
            directive: directive_to_wire(directive),
            pane_interval_ms: interval_ms,
            expected_pane_items: config.expected_pane_items as u64,
            window,
            confidence,
            heartbeat_interval_ms: fault.heartbeat_interval.as_millis() as u64,
        };
        let table = Arc::new(Mutex::new(SlotTable {
            slots: (0..config.workers)
                .map(|_| Slot {
                    state: SlotState::Empty,
                    gen: 0,
                    respawns: 0,
                    snapshot: Vec::new(),
                    snapshot_pane: None,
                })
                .collect(),
            closed: false,
        }));
        let (tx, rx) = channel();
        let acceptor_table = Arc::clone(&table);
        thread::spawn(move || acceptor_loop(listener, assign, fault, acceptor_table, tx));
        Ok(DistributedSession {
            addr,
            events: rx,
            num_workers: config.workers,
            interval_ms,
            seed: config.seed,
            directive,
            shard_set,
            finalizer: WindowFinalizer::new(window, confidence),
            pending: BTreeMap::new(),
            pending_since: BTreeMap::new(),
            workers: BTreeMap::new(),
            table,
            fault,
            ready: Vec::new(),
            error: None,
            completed: 0,
            aggregated: 0,
            degraded_panes: 0,
            lost_items: 0,
            last_conn_error: None,
            merged_watermark: None,
            timeout: config.timeout,
            started: Instant::now(),
        })
    }

    /// The address workers should [`connect_worker`] to — useful with the
    /// default `127.0.0.1:0` bind, where the OS picks the port.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn fail(&mut self, error: SaError) {
        if self.error.is_none() {
            self.error = Some(error);
        }
    }

    fn set_slot_state(&mut self, worker: u32, gen: u32, state: SlotState) {
        let mut t = lock(&self.table);
        let slot = &mut t.slots[worker as usize];
        if slot.gen == gen {
            slot.state = state;
        }
    }

    /// Declares a worker dead: its shard opens for adoption and its panes
    /// stop being waited on once the fault windows elapse.
    fn mark_dead(&mut self, worker: u32) {
        let Some(peer) = self.workers.get_mut(&worker) else {
            return;
        };
        if peer.done
            || matches!(
                peer.status.health,
                WorkerHealth::Dead | WorkerHealth::Retired
            )
        {
            return;
        }
        peer.status.health = WorkerHealth::Dead;
        peer.died_at = Some(Instant::now());
        let gen = peer.gen;
        self.set_slot_state(worker, gen, SlotState::Dead);
    }

    /// Applies the fault policy's clocks: heartbeat misses demote workers
    /// to `Suspect` then `Dead`, and dead shards with no replacement
    /// inside the backoff retire for good.
    fn check_liveness(&mut self) {
        let dead_after = self.fault.dead_after();
        let suspect_after = self.fault.heartbeat_interval * 2;
        let mut to_kill = Vec::new();
        let mut to_retire = Vec::new();
        for (&worker, peer) in &mut self.workers {
            if peer.done {
                continue;
            }
            match peer.status.health {
                WorkerHealth::Done | WorkerHealth::Retired => {}
                WorkerHealth::Dead => {
                    if peer
                        .died_at
                        .is_some_and(|died| died.elapsed() >= self.fault.backoff)
                    {
                        peer.status.health = WorkerHealth::Retired;
                        to_retire.push((worker, peer.gen));
                    }
                }
                WorkerHealth::Healthy | WorkerHealth::Suspect => {
                    let idle = peer.last_seen.elapsed();
                    if idle >= dead_after {
                        to_kill.push(worker);
                    } else if idle >= suspect_after {
                        peer.status.health = WorkerHealth::Suspect;
                    }
                }
            }
        }
        for worker in to_kill {
            self.mark_dead(worker);
        }
        for (worker, gen) in to_retire {
            self.set_slot_state(worker, gen, SlotState::Retired);
        }
    }

    /// A sign of life from the worker's current generation.
    fn note_alive(&mut self, worker: u32, gen: u32) -> bool {
        let Some(peer) = self.workers.get_mut(&worker) else {
            return false;
        };
        if peer.gen != gen {
            return false;
        }
        peer.last_seen = Instant::now();
        match peer.status.health {
            WorkerHealth::Suspect => peer.status.health = WorkerHealth::Healthy,
            // A worker declared dead on missed heartbeats whose frames
            // resume before a replacement claims its shard was only
            // paused: revive it.
            WorkerHealth::Dead => {
                peer.status.health = WorkerHealth::Healthy;
                peer.died_at = None;
                self.set_slot_state(worker, gen, SlotState::Live);
            }
            _ => {}
        }
        true
    }

    fn absorb(&mut self, event: Event) {
        match event {
            Event::Joined {
                worker,
                gen,
                respawns,
                results,
            } => {
                let peer = self.workers.entry(worker).or_insert_with(|| WorkerPeer {
                    status: WorkerStatus {
                        worker,
                        ingest: IngestCounters::default(),
                        watermark: None,
                        lag: 0,
                        last_checkpoint_pane: None,
                        items_since_checkpoint: 0,
                        snapshot_bytes: 0,
                        health: WorkerHealth::Healthy,
                        respawns: 0,
                    },
                    done: false,
                    results: None,
                    gen: 0,
                    last_seen: Instant::now(),
                    died_at: None,
                });
                peer.status.health = WorkerHealth::Healthy;
                peer.status.respawns = respawns;
                peer.done = false;
                peer.results = results;
                peer.gen = gen;
                peer.last_seen = Instant::now();
                peer.died_at = None;
            }
            Event::Digest { gen, digest } => {
                if self.note_alive(digest.worker, gen) {
                    self.absorb_digest(*digest, gen > 0);
                }
            }
            Event::Heartbeat {
                worker,
                gen,
                ingest,
                watermark,
                lag,
                last_checkpoint_pane,
                items_since_checkpoint,
                snapshot_bytes,
            } => {
                if self.note_alive(worker, gen) {
                    let peer = self.workers.get_mut(&worker).expect("noted alive");
                    peer.status.ingest = ingest;
                    peer.status.watermark = watermark.max(peer.status.watermark);
                    peer.status.lag = lag;
                    peer.status.last_checkpoint_pane = last_checkpoint_pane;
                    peer.status.items_since_checkpoint = items_since_checkpoint;
                    peer.status.snapshot_bytes = snapshot_bytes;
                }
            }
            Event::Alive { worker, gen } => {
                let _ = self.note_alive(worker, gen);
            }
            Event::Done { worker, gen } => {
                if let Some(peer) = self.workers.get_mut(&worker) {
                    if peer.gen == gen {
                        peer.done = true;
                        peer.status.health = WorkerHealth::Done;
                        self.set_slot_state(worker, gen, SlotState::Done);
                    }
                }
            }
            Event::ConnLost { worker, gen, error } => {
                let stale = self
                    .workers
                    .get(&worker)
                    .map_or(true, |peer| peer.gen != gen || peer.done);
                if !stale {
                    self.last_conn_error = Some((worker, error));
                    self.mark_dead(worker);
                }
            }
            Event::Failed(error) => self.fail(error),
        }
    }

    fn absorb_digest(&mut self, digest: Digest, respawned: bool) {
        let start = digest.pane.start.as_millis();
        let end = digest.pane.end.as_millis();
        if start.rem_euclid(self.interval_ms) != 0 || end != start + self.interval_ms {
            return self.fail(SaError::Wire(format!(
                "digest pane {} is not a {}ms pane",
                digest.pane, self.interval_ms
            )));
        }
        let exact = self.directive == SizingDirective::Everything;
        if exact != matches!(digest.payload, DigestPayload::Exact(_)) {
            return self.fail(SaError::Wire(format!(
                "worker {} digest payload does not match the run directive",
                digest.worker
            )));
        }
        if let Some(peer) = self.workers.get_mut(&digest.worker) {
            peer.status.ingest = digest.counters;
            peer.status.watermark = digest.watermark.max(peer.status.watermark);
            peer.status.lag = digest.lag;
            peer.status.last_checkpoint_pane = digest.last_checkpoint_pane;
            peer.status.items_since_checkpoint = digest.items_since_checkpoint;
            peer.status.snapshot_bytes = digest.snapshot_bytes;
        }
        if let Some(merged) = self.merged_watermark {
            if start < merged.as_millis() {
                // The pane was already merged — by straggler timeout or a
                // degraded close — and a replacement replaying its log
                // legitimately re-derives it. Dropping (never
                // re-merging) is what keeps recovery exactly-once at
                // pane granularity.
                return;
            }
        }
        let worker = digest.worker;
        let slot = self.pending.entry(start).or_default();
        if slot.contains_key(&worker) {
            if respawned {
                // First delivery wins: the dead predecessor's digest for
                // this pane already counts its items.
                return;
            }
            return self.fail(SaError::Wire(format!(
                "worker {worker} sent two digests for one pane"
            )));
        }
        slot.insert(worker, digest);
        self.pending_since.entry(start).or_insert_with(Instant::now);
    }

    fn drain_pending_events(&mut self) {
        while let Ok(event) = self.events.try_recv() {
            self.absorb(event);
        }
    }

    /// Whether every worker has accounted for the pane starting at
    /// `start`: delivered a digest, watermarked past its end, shut down
    /// for good, or been retired. Dead-but-not-retired workers still
    /// hold panes back — their replacement may yet refill them — until
    /// the pane's own timeout forces a degraded merge.
    fn pane_ready(&self, start: i64) -> bool {
        let end = start + self.interval_ms;
        let digests = self.pending.get(&start);
        (0..self.num_workers).all(|w| {
            let Some(peer) = self.workers.get(&w) else {
                return false; // not yet joined
            };
            peer.done
                || peer.status.health == WorkerHealth::Retired
                || digests.is_some_and(|d| d.contains_key(&w))
                || peer.status.watermark.is_some_and(|t| t.as_millis() >= end)
        })
    }

    fn merge_ready_panes(&mut self) {
        while self.error.is_none() {
            let Some((&start, _)) = self.pending.iter().next() else {
                break;
            };
            if self.pane_ready(start) {
                self.merge_pane(start);
                continue;
            }
            // The straggler clock: a pane blocked past the policy's
            // timeout merges from whatever arrived, so one wedged worker
            // cannot stall the watermark.
            let waited = self
                .pending_since
                .get(&start)
                .map(|since| since.elapsed())
                .unwrap_or_default();
            if waited >= self.fault.pane_timeout {
                self.merge_pane(start);
                continue;
            }
            break;
        }
    }

    fn merge_pane(&mut self, start: i64) {
        let end = start + self.interval_ms;
        self.pending_since.remove(&start);
        let mut digests = self.pending.remove(&start).unwrap_or_default();
        let exact = self.directive == SizingDirective::Everything;
        // Workers with no digest and no excuse (clean shutdown, watermark
        // past the pane) are the degraded merge's missing shards. On the
        // healthy path this is empty and the merge below is bit-identical
        // to the in-process shard merge.
        let missing: Vec<u32> = (0..self.num_workers)
            .filter(|w| {
                let excused = match self.workers.get(w) {
                    None => false,
                    Some(peer) => {
                        peer.done
                            || digests.contains_key(w)
                            || peer.status.watermark.is_some_and(|t| t.as_millis() >= end)
                    }
                };
                !excused
            })
            .collect();
        let lost = if missing.is_empty() {
            0
        } else {
            // Hash routing spreads every stratum uniformly over shards,
            // so the present shards' mean pane population is an unbiased
            // estimate of each missing shard's contribution.
            let present: Vec<u64> = digests.values().map(digest_population).collect();
            if present.is_empty() {
                0
            } else {
                let total: u128 = present.iter().map(|&p| u128::from(p)).sum();
                (total * missing.len() as u128 / present.len() as u128) as u64
            }
        };
        // A worker with no digest for a ready pane skipped it over a quiet
        // gap; its contribution is the same empty close an idle in-process
        // shard would have produced.
        let panes: Vec<WorkerPane<f64>> = (0..self.num_workers)
            .map(|w| match digests.remove(&w).map(|d| d.payload) {
                Some(DigestPayload::Sampled(sample)) => WorkerPane::Sampled(sample),
                Some(DigestPayload::Exact(stats)) => WorkerPane::Exact(stats),
                None if exact => WorkerPane::Exact(Vec::new()),
                None => WorkerPane::Sampled(StratifiedSample::new()),
            })
            .collect();
        let mut rng = SmallRng::seed_from_u64(pane_merge_seed(self.seed, start));
        let mut payload = self.shard_set.merge_panes(panes, &mut rng);
        self.aggregated += payload.sampled();
        if !missing.is_empty() {
            for &w in &missing {
                if let Some(peer) = self.workers.get_mut(&w) {
                    if peer.status.health == WorkerHealth::Healthy {
                        peer.status.health = WorkerHealth::Suspect;
                    }
                }
            }
            self.degraded_panes += 1;
            self.lost_items += lost;
            if let PanePayload::Stratified(stats) = &mut payload {
                widen_for_shortfall(stats, lost);
            }
            self.finalizer.note_degraded_pane(start, lost);
        }
        let pane = Window::new(EventTime::from_millis(start), EventTime::from_millis(end));
        self.finalizer.ingest_interval(pane, payload);
        self.finalizer.close_interval(EventTime::from_millis(end));
        self.merged_watermark = Some(EventTime::from_millis(end));
        self.publish_finalized();
    }

    fn publish_finalized(&mut self) {
        let done = self.finalizer.drain_windows();
        if done.is_empty() {
            return;
        }
        self.completed += done.len() as u64;
        for peer in self.workers.values_mut() {
            if let Some(stream) = &mut peer.results {
                let delivered = done.iter().all(|w| {
                    write_message(stream, &Message::WindowResult(result_to_wire(w))).is_ok()
                });
                if !delivered {
                    // A subscriber that went away only loses its copy; the
                    // run's results live on the coordinator.
                    peer.results = None;
                }
            }
        }
        self.ready.extend(done);
    }

    /// Takes the windows finalized since the last poll, in watermark
    /// order, without blocking: only digests already received are merged.
    /// Liveness checks run here too — a session that polls regularly
    /// notices dead workers and force-merges timed-out panes promptly.
    ///
    /// # Errors
    ///
    /// [`SaError::Wire`] on protocol violations that reach the merge
    /// layer, [`SaError::Disconnected`] if the accept service died
    /// (worker connection failures do **not** error here — they degrade;
    /// watch [`SessionStatus::workers`] for health).
    pub fn poll_windows(&mut self) -> Result<Vec<WindowResult>, SaError> {
        self.drain_pending_events();
        self.check_liveness();
        self.merge_ready_panes();
        if let Some(error) = &self.error {
            return Err(error.clone());
        }
        Ok(std::mem::take(&mut self.ready))
    }

    /// A snapshot of the run's progress: per-worker ingest counters,
    /// watermarks, lag, health and respawn counts (as of each worker's
    /// last digest or heartbeat) on [`SessionStatus::workers`], plus the
    /// merged totals and the degraded-merge ledger.
    pub fn status(&self) -> SessionStatus {
        let mut ingest = IngestCounters::default();
        let mut items_since_checkpoint = 0u64;
        let mut snapshot_bytes = 0u64;
        for peer in self.workers.values() {
            ingest.absorb(peer.status.ingest);
            items_since_checkpoint += peer.status.items_since_checkpoint;
            snapshot_bytes += peer.status.snapshot_bytes;
        }
        SessionStatus {
            items_pushed: ingest.ingested,
            windows_completed: self.completed,
            watermark: self.merged_watermark,
            ingest,
            shards: Vec::new(),
            workers: self.workers.values().map(|p| p.status).collect(),
            // Checkpointing is worker-local in the distributed tier: the
            // coordinator has no session-wide checkpoint pane, and the
            // exposure totals below sum the workers' reports.
            last_checkpoint_pane: None,
            items_since_checkpoint,
            snapshot_bytes,
            degraded_panes: self.degraded_panes,
            lost_items: self.lost_items,
        }
    }

    /// Every shard's stream is over: its worker shut down cleanly, or
    /// the shard was retired after its fault windows elapsed.
    fn all_done(&self) -> bool {
        (0..self.num_workers).all(|w| {
            self.workers
                .get(&w)
                .is_some_and(|p| p.done || p.status.health == WorkerHealth::Retired)
        })
    }

    /// Waits for every shard to settle — workers shutting down cleanly,
    /// or dead shards retiring once their fault windows elapse — merges
    /// the remaining panes (degraded where shards went missing), and
    /// returns the completed run. Results not drained through
    /// [`poll_windows`](DistributedSession::poll_windows) are in the
    /// output's `windows`, exactly like a local session's `finish`.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] if a shard can never settle before the
    /// configured run timeout (a worker that never joined, or fault
    /// windows longer than the timeout); [`SaError::Wire`] on protocol
    /// violations that reach the merge layer.
    pub fn finish(mut self) -> Result<RunOutput, SaError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            self.drain_pending_events();
            self.check_liveness();
            self.merge_ready_panes();
            if let Some(error) = self.error.take() {
                return Err(error);
            }
            if self.all_done() {
                break;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(SaError::Disconnected("timed out waiting for workers"));
            };
            // Wake regularly even without events: retirement and pane
            // timeouts are clock-driven, not frame-driven.
            let tick = remaining.min(Duration::from_millis(20));
            match self.events.recv_timeout(tick) {
                Ok(event) => self.absorb(event),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(SaError::Disconnected("coordinator service threads died"));
                }
            }
        }
        self.merge_ready_panes();
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.finalizer.finish();
        self.publish_finalized();
        let status = self.status();
        Ok(RunOutput {
            windows: std::mem::take(&mut self.ready),
            items_ingested: status.ingest.ingested,
            items_aggregated: self.aggregated,
            elapsed: self.started.elapsed(),
        })
    }
}

impl Drop for DistributedSession {
    fn drop(&mut self) {
        // Stop the accept service: mark the table closed so handshakes
        // refuse, then dial a poison-pill connection to unblock `accept`.
        lock(&self.table).closed = true;
        let _ = TcpStream::connect(self.addr);
    }
}

impl std::fmt::Debug for DistributedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedSession")
            .field("addr", &self.addr)
            .field("num_workers", &self.num_workers)
            .field("joined", &self.workers.len())
            .field("windows_completed", &self.completed)
            .field("degraded_panes", &self.degraded_panes)
            .field("last_conn_error", &self.last_conn_error)
            .field("watermark", &self.merged_watermark)
            .finish()
    }
}

fn project_sample<R>(
    sample: StratifiedSample<R>,
    proj: &(dyn Fn(&R) -> f64 + Send + Sync),
) -> StratifiedSample<f64> {
    sample
        .into_strata()
        .into_iter()
        .map(|s| StratumSample {
            stratum: s.stratum,
            items: s.items.iter().map(proj).collect(),
            population: s.population,
            capacity: s.capacity,
        })
        .collect()
}

/// Worker-side state shared with the background heartbeat thread: the
/// framed connection (one mutex serializes whole frames, so heartbeats
/// never interleave with digests) and the progress counters heartbeats
/// report.
struct WorkerShared {
    stream: Mutex<TcpStream>,
    worker: u32,
    stop: AtomicBool,
    alive: AtomicBool,
    ingested: AtomicU64,
    /// Event-time watermark in ms; `i64::MIN` before the first item.
    watermark: AtomicI64,
    lag: Arc<AtomicU64>,
    /// Pane start of the last checkpoint; `i64::MIN` before the first.
    last_checkpoint_pane: AtomicI64,
    items_at_checkpoint: AtomicU64,
    snapshot_bytes: AtomicU64,
}

const NO_TIME: i64 = i64::MIN;

impl WorkerShared {
    fn send(&self, message: &Message) -> Result<(), SaError> {
        let mut stream = self
            .stream
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let sent = write_message(&mut *stream, message);
        if sent.is_err() {
            self.alive.store(false, Ordering::Release);
        }
        sent
    }

    fn heartbeat_message(&self) -> Message {
        let ingested = self.ingested.load(Ordering::Relaxed);
        let watermark = match self.watermark.load(Ordering::Relaxed) {
            NO_TIME => None,
            t => Some(EventTime::from_millis(t)),
        };
        let last_checkpoint_pane = match self.last_checkpoint_pane.load(Ordering::Relaxed) {
            NO_TIME => None,
            p => Some(p),
        };
        Message::Heartbeat {
            worker: self.worker,
            ingest: IngestCounters {
                ingested,
                dropped_late: 0,
            },
            watermark,
            lag: self.lag.load(Ordering::Relaxed),
            last_checkpoint_pane,
            items_since_checkpoint: ingested
                .saturating_sub(self.items_at_checkpoint.load(Ordering::Relaxed)),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
        }
    }
}

/// The background liveness loop: one heartbeat per interval until the
/// engine stops it (or the coordinator goes away). Sleeps in short
/// slices so engine drop is never blocked behind a full interval.
fn heartbeat_loop(shared: Arc<WorkerShared>, interval: Duration) {
    let slice = Duration::from_millis(20).min(interval);
    let mut last = Instant::now();
    loop {
        if shared.stop.load(Ordering::Acquire) || !shared.alive.load(Ordering::Acquire) {
            return;
        }
        if last.elapsed() < interval {
            thread::sleep(slice);
            continue;
        }
        last = Instant::now();
        if shared.send(&shared.heartbeat_message()).is_err() {
            return;
        }
    }
}

/// The worker side of the distributed tier: a local [`Engine`] that
/// samples its shard of the stream and ships one digest per closed pane
/// to the coordinator, built by [`connect_worker`] (fresh shards) or
/// [`rejoin_worker`] (adopting a dead shard).
///
/// The engine holds worker `w`'s full-capacity shard sampler — the exact
/// sampler [`ShardSet::rearm`] hands shard `w` in the in-process sharded
/// engine — so the coordinator's canonical merge of all workers' digests
/// is bit-identical to the single-process merge of the same shards.
///
/// A background thread heartbeats at the coordinator-assigned cadence
/// for as long as the engine lives, so quiet sources never look like
/// failures. Dropping the engine (or the session wrapping it) without
/// `finish` stops the heartbeats and severs the connection — exactly a
/// crash, as the coordinator sees it.
///
/// `poll_windows` is always empty on a worker: estimation happens on the
/// coordinator. A worker that joined with `wants_results` receives the
/// finalized windows back in [`Engine::finish`]'s `RunOutput` once the
/// coordinator completes the run.
///
/// With a record codec attached
/// ([`checkpointable`](DigestEngine::checkpointable)), the engine
/// supports session checkpoints: snapshots serialize the shard sampler
/// and pane cursor, and every sealed checkpoint is also published to the
/// coordinator so a replacement worker can adopt this shard's state.
pub struct DigestEngine<R> {
    shared: Arc<WorkerShared>,
    /// A second handle onto the same socket for the results drain, so a
    /// blocking read never holds the write lock against the heartbeat
    /// thread.
    reader: TcpStream,
    heartbeat: Option<JoinHandle<()>>,
    worker: u32,
    respawns: u32,
    wants_results: bool,
    cursor: PaneCursor,
    sampler: IntervalWorker<R>,
    codec: Option<RecordCodec<R>>,
    proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    watermark: Option<EventTime>,
    panes: u64,
    started: Instant,
    /// Checkpoint exposure the session reports through
    /// [`Engine::note_checkpoint`], mirrored onto every digest and
    /// heartbeat so the coordinator's [`WorkerStatus`] shows it.
    last_checkpoint_pane: Option<i64>,
    items_at_checkpoint: u64,
    snapshot_bytes: u64,
}

/// The run configuration a coordinator hands a joining worker.
struct Assignment {
    worker: u32,
    num_workers: u32,
    seed: RunSeed,
    directive: Directive,
    pane_interval_ms: i64,
    expected_pane_items: u64,
    window: WindowSpec,
    heartbeat_interval_ms: u64,
}

fn read_assignment(stream: &mut TcpStream) -> Result<Assignment, SaError> {
    let Some(reply) = read_message(stream)? else {
        return Err(SaError::Disconnected("coordinator hung up mid-handshake"));
    };
    let Message::HelloAssign {
        worker,
        num_workers,
        seed,
        directive,
        pane_interval_ms,
        expected_pane_items,
        window,
        confidence: _,
        heartbeat_interval_ms,
    } = reply
    else {
        return Err(SaError::Wire(
            "coordinator did not answer the join with an assignment".to_string(),
        ));
    };
    Ok(Assignment {
        worker,
        num_workers,
        seed,
        directive,
        pane_interval_ms,
        expected_pane_items,
        window,
        heartbeat_interval_ms,
    })
}

fn assemble_engine<R>(
    stream: TcpStream,
    assignment: Assignment,
    respawns: u32,
    wants_results: bool,
    proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
) -> Result<DigestEngine<R>, SaError> {
    let reader = stream
        .try_clone()
        .map_err(|e| SaError::Wire(format!("cannot clone the coordinator socket: {e}")))?;
    // Exactly the sampler ShardSet::rearm builds for shard `worker`, so
    // the coordinator's merge sees the same per-shard state a
    // single-process sharded run would.
    let sizing = sampler_sizing(
        directive_from_wire(assignment.directive),
        assignment.expected_pane_items as usize,
        assignment.num_workers as usize,
    );
    let sampler = IntervalWorker::for_shard(
        sizing,
        assignment.seed,
        assignment.worker as usize,
        Arc::clone(&proj),
    );
    let shared = Arc::new(WorkerShared {
        stream: Mutex::new(stream),
        worker: assignment.worker,
        stop: AtomicBool::new(false),
        alive: AtomicBool::new(true),
        ingested: AtomicU64::new(0),
        watermark: AtomicI64::new(NO_TIME),
        lag: Arc::new(AtomicU64::new(0)),
        last_checkpoint_pane: AtomicI64::new(NO_TIME),
        items_at_checkpoint: AtomicU64::new(0),
        snapshot_bytes: AtomicU64::new(0),
    });
    let heartbeat = if assignment.heartbeat_interval_ms > 0 {
        let interval = Duration::from_millis(assignment.heartbeat_interval_ms);
        let hb = Arc::clone(&shared);
        Some(thread::spawn(move || heartbeat_loop(hb, interval)))
    } else {
        None
    };
    Ok(DigestEngine {
        shared,
        reader,
        heartbeat,
        worker: assignment.worker,
        respawns,
        wants_results,
        cursor: PaneCursor::new(assignment.pane_interval_ms, assignment.window),
        sampler,
        codec: None,
        proj,
        watermark: None,
        panes: 0,
        started: Instant::now(),
        last_checkpoint_pane: None,
        items_at_checkpoint: 0,
        snapshot_bytes: 0,
    })
}

/// Joins a coordinator as worker `worker`: connects, performs the
/// join/assign handshake, and builds the worker's [`DigestEngine`] from
/// the assigned run configuration (seed, directive, pane interval,
/// window, heartbeat cadence — workers need no local configuration
/// beyond the address, their id, and the projection from their record
/// type).
///
/// Wrap the engine in [`crate::ApproxSession::from_engine`] for the
/// push/poll session API; with `wants_results` the finalized windows come
/// back in the session's `finish` output. To adopt a *dead* worker's
/// shard together with its checkpointed state, use [`rejoin_worker`]
/// instead (joining a dead shard by its id here restarts it fresh).
///
/// # Errors
///
/// [`SaError::InvalidConfig`] when the coordinator is unreachable,
/// [`SaError::Wire`] / [`SaError::Disconnected`] when the handshake is
/// malformed, refused (unknown or already-owned worker id), or cut
/// short.
pub fn connect_worker<R>(
    addr: impl ToSocketAddrs,
    worker: u32,
    wants_results: bool,
    proj: impl Fn(&R) -> f64 + Send + Sync + 'static,
) -> Result<DigestEngine<R>, SaError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| SaError::InvalidConfig(format!("cannot reach the coordinator: {e}")))?;
    write_message(
        &mut stream,
        &Message::HelloJoin {
            worker,
            wants_results,
        },
    )?;
    let assignment = read_assignment(&mut stream)?;
    if assignment.worker != worker {
        return Err(SaError::Wire(format!(
            "coordinator assigned id {} to worker {worker}",
            assignment.worker
        )));
    }
    assemble_engine(stream, assignment, 0, wants_results, Arc::new(proj))
}

/// Joins a coordinator as a *replacement*: volunteers for whichever
/// worker shard is currently dead, receives that shard's id, run
/// configuration and last published checkpoint, and returns the rebuilt
/// engine (already [`checkpointable`](DigestEngine::checkpointable))
/// together with the decoded [`SessionSnapshot`], if the dead worker
/// ever checkpointed.
///
/// Resume with [`crate::ApproxSession::resume_from_engine`] and replay
/// the shard's source from the snapshot's consumer offsets; without a
/// snapshot, wrap the engine in [`crate::ApproxSession::from_engine`]
/// and replay from the start of the shard's log. Either way the
/// coordinator drops digests for panes it already merged and duplicates
/// of the predecessor's deliveries, so the replay never double-counts.
///
/// The coordinator holds the connection until a shard actually dies, for
/// at most its fault policy's `pane_timeout` — so a standby replacement
/// can dial in *before* any failure.
///
/// # Errors
///
/// [`SaError::InvalidConfig`] when the coordinator is unreachable;
/// [`SaError::Disconnected`] when no shard needed adopting within the
/// coordinator's patience (or the respawn budget is exhausted);
/// [`SaError::Wire`] / [`SaError::Checkpoint`] on a malformed handshake
/// or handoff snapshot.
pub fn rejoin_worker<R: WireEncode + WireDecode>(
    addr: impl ToSocketAddrs,
    wants_results: bool,
    proj: impl Fn(&R) -> f64 + Send + Sync + 'static,
) -> Result<(DigestEngine<R>, Option<SessionSnapshot>), SaError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| SaError::InvalidConfig(format!("cannot reach the coordinator: {e}")))?;
    write_message(&mut stream, &Message::HelloRejoin { wants_results })?;
    let assignment = read_assignment(&mut stream)?;
    let Some(handoff) = read_message(&mut stream)? else {
        return Err(SaError::Disconnected("coordinator hung up mid-handoff"));
    };
    let Message::Reassign {
        worker,
        respawns,
        snapshot,
    } = handoff
    else {
        return Err(SaError::Wire(
            "coordinator did not follow the rejoin assignment with a handoff".to_string(),
        ));
    };
    if worker != assignment.worker {
        return Err(SaError::Wire(format!(
            "handoff names worker {worker} but the assignment named {}",
            assignment.worker
        )));
    }
    let resumed = if snapshot.is_empty() {
        None
    } else {
        Some(open_session_snapshot(&snapshot)?)
    };
    let engine = assemble_engine(stream, assignment, respawns, wants_results, Arc::new(proj))?
        .checkpointable(RecordCodec::new());
    Ok((engine, resumed))
}

impl<R> DigestEngine<R> {
    /// Attaches a record codec, enabling [`Engine::snapshot`] /
    /// [`Engine::restore`] — and with them session checkpoints, whose
    /// sealed bytes are also published to the coordinator for dead-shard
    /// handoff.
    #[must_use]
    pub fn checkpointable(mut self, codec: RecordCodec<R>) -> Self {
        self.codec = Some(codec);
        self
    }

    /// The shard id this engine owns.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// How many times this shard had been re-adopted when this engine
    /// joined (0 for a first-generation worker).
    pub fn respawns(&self) -> u32 {
        self.respawns
    }

    /// A handle for reporting this worker's source lag (outstanding items
    /// in its replay log); the engine stamps the latest value onto every
    /// digest and heartbeat. The handle stays valid after the engine is
    /// boxed into an [`crate::ApproxSession`].
    pub fn lag_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.shared.lag)
    }

    /// Sends one liveness heartbeat immediately.
    ///
    /// Heartbeats are automatic since the coordinator started assigning
    /// a cadence: a background thread sends one every assigned interval
    /// for as long as the engine lives, so there is nothing to call —
    /// though the coordinator tolerates extra heartbeats in any phase of
    /// the run.
    ///
    /// # Errors
    ///
    /// [`SaError::Wire`] when the coordinator connection is gone.
    #[deprecated(note = "heartbeats are sent automatically by a background thread; \
                         this manual nudge is only useful with a coordinator that \
                         assigned no cadence")]
    pub fn heartbeat(&mut self) -> Result<(), SaError> {
        self.shared.send(&self.shared.heartbeat_message())
    }

    fn close_pane(&mut self) -> Result<(), SaError> {
        let (start, end) = self.cursor.pane().expect("close follows an open pane");
        let payload = match self.sampler.close_interval_parts() {
            WorkerPane::Sampled(sample) => {
                DigestPayload::Sampled(project_sample(sample, self.proj.as_ref()))
            }
            WorkerPane::Exact(stats) => DigestPayload::Exact(stats),
        };
        let (ingested, _) = self.sampler.counters();
        self.panes += 1;
        let digest = Digest {
            worker: self.worker,
            pane: Window::new(EventTime::from_millis(start), EventTime::from_millis(end)),
            counters: IngestCounters {
                ingested,
                dropped_late: 0,
            },
            watermark: self.watermark,
            lag: self.shared.lag.load(Ordering::Relaxed),
            last_checkpoint_pane: self.last_checkpoint_pane,
            items_since_checkpoint: ingested.saturating_sub(self.items_at_checkpoint),
            snapshot_bytes: self.snapshot_bytes,
            payload,
        };
        self.shared.send(&Message::PaneDigest(digest))
    }

    fn require_codec(&self) -> Result<RecordCodec<R>, SaError> {
        self.codec.ok_or_else(|| {
            SaError::Checkpoint(
                "the digest engine checkpoints only when built with a record codec \
                 (DigestEngine::checkpointable)"
                    .into(),
            )
        })
    }
}

impl<R> Engine<R> for DigestEngine<R> {
    fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError> {
        if !self.shared.alive.load(Ordering::Acquire) {
            return Err(SaError::Disconnected("digest worker lost its coordinator"));
        }
        let t = item.time.as_millis();
        while self.cursor.needs_close(t) {
            self.close_pane()?;
            self.cursor.next(t);
        }
        self.watermark = Some(item.time);
        self.shared.watermark.store(t, Ordering::Relaxed);
        self.sampler.observe(item.stratum, item.value);
        self.shared
            .ingested
            .store(self.sampler.counters().0, Ordering::Relaxed);
        Ok(())
    }

    fn poll_windows(&mut self) -> Vec<WindowResult> {
        Vec::new()
    }

    fn panes_closed(&self) -> u64 {
        self.panes
    }

    fn note_checkpoint(&mut self, pane: Option<i64>, snapshot_bytes: u64) {
        let (ingested, _) = self.sampler.counters();
        self.last_checkpoint_pane = pane;
        self.items_at_checkpoint = ingested;
        self.snapshot_bytes = snapshot_bytes;
        self.shared
            .last_checkpoint_pane
            .store(pane.unwrap_or(NO_TIME), Ordering::Relaxed);
        self.shared
            .items_at_checkpoint
            .store(ingested, Ordering::Relaxed);
        self.shared
            .snapshot_bytes
            .store(snapshot_bytes, Ordering::Relaxed);
    }

    fn publish_checkpoint(&mut self, sealed: &[u8]) {
        if !self.shared.alive.load(Ordering::Acquire) {
            return;
        }
        // Best-effort by contract: a slice too large for one frame, or a
        // coordinator mid-failure, costs only handoff freshness — the
        // checkpoint itself already succeeded locally.
        let _ = self.shared.send(&Message::SnapshotSlice {
            worker: self.worker,
            pane: self.last_checkpoint_pane,
            sealed: sealed.to_vec(),
        });
    }

    fn snapshot(&mut self) -> Result<EngineSnapshot, SaError> {
        let codec = self.require_codec()?;
        let mut state = Vec::new();
        self.cursor.start().encode(&mut state);
        self.watermark.encode(&mut state);
        sa_types::wire::put_varint(&mut state, self.panes);
        self.sampler.encode_state(codec, &mut state);
        Ok(EngineSnapshot {
            engine: "digest".into(),
            pane: self.cursor.start(),
            state,
        })
    }

    fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), SaError> {
        let codec = self.require_codec()?;
        if snapshot.engine != "digest" {
            return Err(SaError::Checkpoint(format!(
                "cannot restore a '{}' snapshot into the digest engine",
                snapshot.engine
            )));
        }
        let mut r = WireReader::new(&snapshot.state);
        let start = Option::<i64>::decode(&mut r)?;
        let watermark = Option::<EventTime>::decode(&mut r)?;
        let panes = r.read_varint()?;
        let sampler = IntervalWorker::decode_state(&mut r, codec, Arc::clone(&self.proj))?;
        r.finish()?;
        self.cursor.restore_start(start);
        self.watermark = watermark;
        self.panes = panes;
        let (ingested, _) = sampler.counters();
        self.sampler = sampler;
        self.shared.ingested.store(ingested, Ordering::Relaxed);
        self.shared.watermark.store(
            watermark.map_or(NO_TIME, |t| t.as_millis()),
            Ordering::Relaxed,
        );
        Ok(())
    }

    fn finish(self: Box<Self>) -> RunOutput {
        let mut this = *self;
        let mut windows = Vec::new();
        if this.shared.alive.load(Ordering::Acquire) {
            let flushed = this.cursor.pane().is_none() || this.close_pane().is_ok();
            let goodbye = flushed
                && this
                    .shared
                    .send(&Message::Shutdown {
                        worker: this.worker,
                    })
                    .is_ok();
            if goodbye && this.wants_results {
                // The coordinator streams results as windows finalize and
                // closes the connection once the run is over; bound the
                // drain so a stuck coordinator cannot hang the worker.
                // Reads go through the second socket handle, so the
                // heartbeat thread keeps the coordinator's liveness view
                // green while the drain waits.
                let _ = this.reader.set_read_timeout(Some(Duration::from_secs(30)));
                while let Ok(Some(msg)) = read_message(&mut this.reader) {
                    if let Message::WindowResult(result) = msg {
                        windows.push(result_from_wire(result));
                    }
                }
            }
        }
        let (ingested, sampled) = this.sampler.counters();
        RunOutput {
            windows,
            items_ingested: ingested,
            items_aggregated: sampled,
            elapsed: this.started.elapsed(),
        }
        // Dropping `this` stops the heartbeat thread and severs the
        // socket.
    }
}

impl<R> Drop for DigestEngine<R> {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Severing the socket first also unblocks a heartbeat write
        // wedged against a stalled coordinator. After a clean finish this
        // is a no-op close; without one, the coordinator sees exactly a
        // crash.
        let _ = self.reader.shutdown(Shutdown::Both);
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
    }
}

impl<R> std::fmt::Debug for DigestEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DigestEngine")
            .field("worker", &self.worker)
            .field("respawns", &self.respawns)
            .field("wants_results", &self.wants_results)
            .field("watermark", &self.watermark)
            .field("alive", &self.shared.alive.load(Ordering::Acquire))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FixedPerStratum;
    use crate::query::Query;
    use crate::session::StreamApprox;
    use sa_types::StratumId;

    fn query() -> Query<f64> {
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
    }

    #[test]
    fn zero_workers_rejected() {
        let mut policy = FixedPerStratum(8);
        let err = StreamApprox::new(query(), &mut policy)
            .distributed(DistributedConfig::new(0))
            .unwrap_err();
        assert!(matches!(err, SaError::InvalidConfig(_)));
    }

    #[test]
    fn degenerate_fault_policy_rejected() {
        let mut policy = FixedPerStratum(8);
        let err = StreamApprox::new(query(), &mut policy)
            .distributed(
                DistributedConfig::new(1)
                    .with_fault_policy(FaultPolicy::default().with_miss_budget(0)),
            )
            .unwrap_err();
        assert!(matches!(err, SaError::InvalidConfig(_)));
    }

    #[test]
    fn unreachable_coordinator_is_a_typed_error() {
        // Port 1 on loopback is essentially never listening.
        let err = connect_worker("127.0.0.1:1", 0, false, |v: &f64| *v).unwrap_err();
        assert!(matches!(err, SaError::InvalidConfig(_)));
    }

    #[test]
    fn directive_conversion_roundtrips() {
        for d in [
            SizingDirective::Fraction(0.25),
            SizingDirective::PerStratum(7),
            SizingDirective::SharedTotal(64),
            SizingDirective::Everything,
        ] {
            assert_eq!(directive_from_wire(directive_to_wire(d)), d);
        }
    }

    #[test]
    fn loopback_single_worker_round_trip() {
        let mut policy = FixedPerStratum(16);
        let coordinator = StreamApprox::new(query(), &mut policy)
            .distributed(
                DistributedConfig::new(1)
                    .with_seed(RunSeed::new(11))
                    .with_timeout(Duration::from_secs(10)),
            )
            .expect("bind loopback");
        let addr = coordinator.addr();
        let handle = thread::spawn(move || {
            let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("join");
            let mut session = crate::session::ApproxSession::from_engine(Box::new(engine));
            for i in 0..3_000i64 {
                let item = StreamItem::new(
                    StratumId((i % 2) as u32),
                    EventTime::from_millis(i),
                    f64::from(i as u32 % 10),
                );
                session.push(item).expect("in order");
            }
            session.finish()
        });
        let worker_out = handle.join().expect("worker thread");
        let out = coordinator.finish().expect("clean run");
        assert_eq!(out.items_ingested, 3_000);
        assert_eq!(worker_out.items_ingested, 3_000);
        assert_eq!(out.windows.len(), 3);
        for w in &out.windows {
            let (lo, hi) = w.mean.interval();
            assert!(lo <= w.mean.value && w.mean.value <= hi);
            assert!(!w.degraded, "a healthy run never degrades");
            assert_eq!(w.lost_items, 0);
        }
    }

    #[test]
    fn status_reports_per_worker_progress_and_health() {
        let mut policy = FixedPerStratum(8);
        let mut coordinator = StreamApprox::new(query(), &mut policy)
            .distributed(DistributedConfig::new(1).with_timeout(Duration::from_secs(10)))
            .expect("bind loopback");
        let addr = coordinator.addr();
        let handle = thread::spawn(move || {
            let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("join");
            let lag = engine.lag_handle();
            lag.store(42, Ordering::Relaxed);
            let mut session = crate::session::ApproxSession::from_engine(Box::new(engine));
            for i in 0..2_500i64 {
                session
                    .push(StreamItem::new(
                        StratumId(0),
                        EventTime::from_millis(i),
                        1.0,
                    ))
                    .expect("in order");
            }
            session.finish()
        });
        let _ = handle.join().expect("worker thread");
        // Drain events so the status below sees the worker's digests.
        let _ = coordinator.poll_windows().expect("no failure");
        let status = coordinator.status();
        assert_eq!(status.workers.len(), 1);
        assert_eq!(status.workers[0].worker, 0);
        assert_eq!(status.workers[0].lag, 42);
        assert_eq!(status.workers[0].respawns, 0);
        assert!(status.workers[0].ingest.ingested > 0);
        assert_eq!(status.degraded_panes, 0);
        assert_eq!(status.lost_items, 0);
        let out = coordinator.finish().expect("clean run");
        assert_eq!(out.items_ingested, 2_500);
    }

    #[test]
    fn manual_heartbeats_are_tolerated_in_every_phase() {
        let mut policy = FixedPerStratum(8);
        let coordinator = StreamApprox::new(query(), &mut policy)
            .distributed(DistributedConfig::new(1).with_timeout(Duration::from_secs(10)))
            .expect("bind loopback");
        let addr = coordinator.addr();
        let handle = thread::spawn(move || {
            let mut engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("join");
            // Before the first item, mid-pane, and right before shutdown:
            // all legal.
            #[allow(deprecated)]
            engine.heartbeat().expect("pre-ingest heartbeat");
            let mut session = crate::session::ApproxSession::from_engine(Box::new(engine));
            for i in 0..1_200i64 {
                session
                    .push(StreamItem::new(
                        StratumId(0),
                        EventTime::from_millis(i),
                        1.0,
                    ))
                    .expect("in order");
            }
            session.finish()
        });
        let _ = handle.join().expect("worker thread");
        let out = coordinator.finish().expect("heartbeats never poison a run");
        assert_eq!(out.items_ingested, 1_200);
    }
}
