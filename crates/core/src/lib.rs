//! **StreamApprox** — approximate computing for stream analytics.
//!
//! A faithful Rust reproduction of *"StreamApprox: Approximate Computing
//! for Stream Analytics"* (Quoc, Chen, Bhatotia, Fetzer, Hilt, Strufe —
//! ACM/IFIP/USENIX Middleware 2017), complete with every substrate the
//! paper runs on: a batched stream engine (Spark Streaming analogue), a
//! pipelined stream engine (Flink analogue), a stream aggregator (Kafka
//! analogue), the sampling baselines from Spark MLib, and the evaluation's
//! workloads.
//!
//! The core idea: instead of processing every item of an unbounded stream,
//! sample it **online** with *Online Adaptive Stratified Reservoir
//! Sampling* (OASRS) — one fixed-size reservoir and one counter per
//! sub-stream — and answer linear queries (sum, mean, count, histogram)
//! from the weighted sample with rigorous error bounds, trading accuracy
//! for throughput under a user-specified budget.
//!
//! # Quick start
//!
//! ```
//! use streamapprox::{
//!     run_batched, BatchedConfig, BatchedSystem, FixedFraction, Query,
//! };
//! use sa_batched::Cluster;
//! use sa_types::{EventTime, StratumId, StreamItem, WindowSpec};
//!
//! // A stream with two sub-streams of very different sizes.
//! let items: Vec<StreamItem<f64>> = (0..10_000)
//!     .map(|i| {
//!         let stratum = if i % 100 == 0 { StratumId(1) } else { StratumId(0) };
//!         StreamItem::new(stratum, EventTime::from_millis(i), f64::from(i as u32 % 50))
//!     })
//!     .collect();
//!
//! let config = BatchedConfig::new(Cluster::new(2));
//! let query = Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(2_000));
//!
//! // Sample 30% of the stream; answers come with error bounds.
//! let out = run_batched(
//!     &config,
//!     BatchedSystem::StreamApprox,
//!     &query,
//!     &mut FixedFraction(0.3),
//!     items,
//! );
//! assert!(out.items_aggregated < out.items_ingested);
//! for window in &out.windows {
//!     let (lo, hi) = window.mean.interval();
//!     assert!(lo <= hi);
//! }
//! ```
//!
//! # Map of the crate
//!
//! * [`Query`] — what to aggregate, over which sliding window, at which
//!   confidence.
//! * [`CostPolicy`] and its implementations ([`FixedFraction`],
//!   [`FixedPerStratum`], [`AccuracyPolicy`], [`LatencyPolicy`],
//!   [`TokenPolicy`]) — the paper's "virtual cost function" (§7) mapping a
//!   [`sa_types::QueryBudget`] to per-interval sample sizes;
//!   [`policy_for_budget`] builds one from a budget.
//! * [`ApproxRuntime`] (with [`IntervalWorker`] and [`WindowFinalizer`]) —
//!   the engine-agnostic approximation runtime: the shared per-interval
//!   loop of sampling, cost-policy feedback, window assembly and
//!   estimation that every engine adapter drives.
//! * [`run_batched`] with [`BatchedSystem`] — Spark-style execution:
//!   StreamApprox plus the SRS/STS/native baselines.
//! * [`run_pipelined`] with [`PipelinedSystem`] — Flink-style execution:
//!   StreamApprox plus native.
//! * [`WindowResult`] / [`RunOutput`] — per-window `output ± error bound`
//!   answers and run metrics.
//! * [`PaneWindower`] / [`combine_window`] — pane-based window assembly,
//!   used by the runtime's [`WindowFinalizer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batched;
mod combine;
mod cost;
mod output;
mod pipelined;
mod query;
mod runtime;
mod stratify;
mod windowing;

pub use batched::{run_batched, BatchedConfig, BatchedSystem};
pub use combine::{combine_window, PanePayload};
pub use cost::{
    confidence_for_budget, policy_for_budget, AccuracyPolicy, CostPolicy, FixedFraction,
    FixedPerStratum, IntervalFeedback, LatencyPolicy, SizingDirective, TokenPolicy,
};
pub use output::{RunOutput, WindowResult};
pub use pipelined::{run_pipelined, PipelinedConfig, PipelinedSystem};
pub use query::Query;
pub use runtime::{
    sampler_sizing, ApproxRuntime, ExactAccumulator, IntervalWorker, WindowFinalizer,
};
pub use stratify::{restratify, QuantileStratifier};
pub use windowing::PaneWindower;
