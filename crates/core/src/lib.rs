//! **StreamApprox** — approximate computing for stream analytics.
//!
//! A faithful Rust reproduction of *"StreamApprox: Approximate Computing
//! for Stream Analytics"* (Quoc, Chen, Bhatotia, Fetzer, Hilt, Strufe —
//! ACM/IFIP/USENIX Middleware 2017), complete with every substrate the
//! paper runs on: a batched stream engine (Spark Streaming analogue), a
//! pipelined stream engine (Flink analogue), a stream aggregator (Kafka
//! analogue), the sampling baselines from Spark MLib, and the evaluation's
//! workloads.
//!
//! The core idea: instead of processing every item of an unbounded stream,
//! sample it **online** with *Online Adaptive Stratified Reservoir
//! Sampling* (OASRS) — one fixed-size reservoir and one counter per
//! sub-stream — and answer linear queries (sum, mean, count, histogram)
//! from the weighted sample with rigorous error bounds, trading accuracy
//! for throughput under a user-specified budget.
//!
//! # Quick start: a live session
//!
//! Streams are unbounded, so the primary API is incremental: build a
//! [`StreamApprox`] session, `push` items as they arrive, and poll each
//! window's `output ± error bound` as the watermark closes it — long
//! before the stream ends.
//!
//! ```
//! use streamapprox::{Query, StreamApprox};
//! use sa_types::{EventTime, QueryBudget, StratumId, StreamItem, WindowSpec};
//!
//! let query = Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(2_000));
//! let mut session = StreamApprox::with_budget(query, QueryBudget::SampleFraction(0.3))
//!     .expect("valid budget")
//!     .start();
//!
//! // A stream with two sub-streams of very different sizes, arriving live.
//! for i in 0..10_000i64 {
//!     let stratum = if i % 100 == 0 { StratumId(1) } else { StratumId(0) };
//!     let item = StreamItem::new(stratum, EventTime::from_millis(i), f64::from(i as u32 % 50));
//!     session.push(item).expect("event-time ordered");
//!
//!     // Answers stream out while input keeps arriving.
//!     for window in session.poll_windows() {
//!         let (lo, hi) = window.mean.interval();
//!         assert!(lo <= window.mean.value && window.mean.value <= hi);
//!     }
//! }
//!
//! let out = session.finish();
//! assert!(out.items_aggregated < out.items_ingested);
//! ```
//!
//! # One-shot convenience
//!
//! For recorded streams, [`run_batched`]/[`run_pipelined`] wrap a session
//! (build → push everything → finish) and add the paper's baseline
//! systems; results are bit-for-bit identical to pushing the same items
//! incrementally.
//!
//! ```
//! use streamapprox::{
//!     run_batched, BatchedConfig, BatchedSystem, FixedFraction, Query,
//! };
//! use sa_batched::Cluster;
//! use sa_types::{EventTime, StratumId, StreamItem, WindowSpec};
//!
//! let items: Vec<StreamItem<f64>> = (0..10_000)
//!     .map(|i| {
//!         let stratum = if i % 100 == 0 { StratumId(1) } else { StratumId(0) };
//!         StreamItem::new(stratum, EventTime::from_millis(i), f64::from(i as u32 % 50))
//!     })
//!     .collect();
//!
//! let config = BatchedConfig::new(Cluster::new(2));
//! let query = Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(2_000));
//! let out = run_batched(
//!     &config,
//!     BatchedSystem::StreamApprox,
//!     &query,
//!     &mut FixedFraction(0.3),
//!     items,
//! );
//! assert!(out.items_aggregated < out.items_ingested);
//! ```
//!
//! # Map of the crate
//!
//! * [`Query`] — what to aggregate, over which sliding window, at which
//!   confidence.
//! * [`StreamApprox`] / [`ApproxSession`] — the incremental session API:
//!   `push`/`push_batch`/`ingest_consumer` in, `poll_windows`,
//!   `watermark`, `status` and `finish` out.
//! * [`Engine`] — the substrate contract behind sessions; implemented by
//!   the batched dataset engine, the pipelined operator engine, the
//!   sharded data-parallel engine ([`ShardedConfig`]: hash-partitioned
//!   worker threads over mergeable stratified samplers), and the
//!   aggregated consumer path ([`AggregatedConfig`]), each embedding the
//!   shared runtime. Implement it to plug in your own substrate via
//!   [`ApproxSession::from_engine`].
//! * [`StreamApprox::distributed`] / [`DistributedSession`] /
//!   [`connect_worker`] — the distributed tier: a TCP coordinator that
//!   assigns the run to worker processes, collects their per-pane sampler
//!   digests over the `sa-net` framed protocol, and merges them through
//!   the same mergeable-sampler path — bit-identical to the in-process
//!   sharded merge of the same shards (seeded per pane by
//!   [`pane_merge_seed`]).
//! * [`CostPolicy`] and its implementations ([`FixedFraction`],
//!   [`FixedPerStratum`], [`AccuracyPolicy`], [`LatencyPolicy`],
//!   [`TokenPolicy`]) — the paper's "virtual cost function" (§7) mapping a
//!   [`sa_types::QueryBudget`] to per-interval sample sizes;
//!   [`policy_for_budget`] builds one from a budget, [`PolicyHandle`]
//!   holds one borrowed or owned.
//! * [`ApproxRuntime`] (with [`IntervalWorker`] and [`WindowFinalizer`]) —
//!   the engine-agnostic approximation runtime: the shared per-interval
//!   loop of sampling, cost-policy feedback, window assembly and
//!   estimation that every engine embeds.
//! * [`run_batched`] with [`BatchedSystem`] — Spark-style execution:
//!   StreamApprox plus the SRS/STS/native baselines.
//! * [`run_pipelined`] with [`PipelinedSystem`] — Flink-style execution:
//!   StreamApprox plus native.
//! * [`WindowResult`] / [`RunOutput`] — per-window `output ± error bound`
//!   answers and run metrics.
//! * [`PaneWindower`] / [`combine_window`] — pane-based window assembly,
//!   used by the runtime's [`WindowFinalizer`].
//! * [`StreamApprox::checkpointable`] / [`ApproxSession::checkpoint`] /
//!   [`StreamApprox::resume`] with [`CheckpointStore`] — bounded-error
//!   checkpoint & resume: snapshots of the mergeable sampler state
//!   (O(sampling budget), not O(stream)) under a
//!   [`sa_types::CheckpointPolicy`], sealed by [`seal_session_snapshot`]
//!   and replayed from the logged consumer offsets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregated;
mod batched;
mod checkpoint;
mod combine;
mod cost;
mod engine;
mod net;
mod output;
mod pipelined;
mod query;
mod runtime;
mod session;
mod sharded;
mod stratify;
mod windowing;

pub use aggregated::AggregatedConfig;
pub use batched::{run_batched, BatchedConfig, BatchedSystem};
pub use checkpoint::{
    open_session_snapshot, seal_session_snapshot, CheckpointStore, FileCheckpointStore,
    MemoryCheckpointStore, RecordCodec,
};
pub use combine::{combine_window, PanePayload};
pub use cost::{
    confidence_for_budget, policy_for_budget, AccuracyPolicy, CostPolicy, FixedFraction,
    FixedPerStratum, IntervalFeedback, LatencyPolicy, PolicyHandle, SizingDirective, TokenPolicy,
};
pub use engine::Engine;
pub use net::{connect_worker, rejoin_worker, DigestEngine, DistributedConfig, DistributedSession};
pub use output::{RunOutput, WindowResult};
pub use pipelined::{run_pipelined, PipelinedConfig, PipelinedSystem};
pub use query::Query;
pub use runtime::{
    pane_merge_seed, sampler_sizing, ApproxRuntime, ExactAccumulator, IntervalWorker, ShardSet,
    WindowFinalizer, WorkerPane,
};
pub use session::{ApproxSession, StreamApprox};
pub use sharded::ShardedConfig;
pub use stratify::{restratify, QuantileStratifier};
pub use windowing::PaneWindower;
