//! The sharded data-parallel engine: hash-partitioned OASRS over
//! mergeable stratified samplers, on a lock-free SPSC ring fabric.
//!
//! StreamApprox's core scalability claim is that OASRS is *mergeable*:
//! shard-local samples combine without bias, so sampling parallelizes
//! across workers with no synchronization on the hot path (§3.2; the
//! distributed follow-up develops the same idea across nodes). This
//! engine is that claim as an execution substrate:
//!
//! * **Routing over bounded rings** — every accepted item is
//!   hash-partitioned ([`ShardSet::route`]) across `N` worker shards,
//!   each a thread owning its own per-stratum [`IntervalWorker`] (OASRS
//!   samplers at *full* per-stratum capacity, or exact Welford
//!   accumulators under native execution). Items travel in chunks over a
//!   pair of bounded SPSC rings per shard ([`crossbeam::spsc`]): a
//!   command ring down (arm/chunk/close, FIFO per shard) and a return
//!   ring back up (drained chunk buffers and close answers). The rings
//!   are lock-free slot arrays — no allocation, mutex or condvar wakeup
//!   per message on the hot path.
//! * **Buffer recycling** — a shard *drains* each chunk into its sampler
//!   and hands the emptied `Vec` back on the return ring; the router
//!   reuses it for a later chunk. At steady state routing therefore
//!   performs **zero allocations per chunk** (only the first ring-depth
//!   chunks are freshly allocated); the `chunks_routed`/`chunks_recycled`
//!   counters on [`ShardIngest`] make this observable.
//! * **Backpressure** — the command ring is bounded, so a shard that
//!   falls behind fills its ring and the router's `push` blocks (spinning
//!   and yielding, while still draining returns) instead of queueing
//!   unboundedly: a lagging shard costs latency, never unbounded memory.
//! * **Merge/ingest overlap** — at a pane boundary the engine broadcasts
//!   the close and *returns immediately*: shards answer the close and
//!   begin the next pane's chunks (already queued behind the close in
//!   FIFO order) while the caller keeps routing. The barrier is settled —
//!   answers collected, shard panes merged in canonical ascending-shard
//!   order ([`ShardSet::merge_panes`]), the pane estimated and handed to
//!   the shared [`ApproxRuntime`] — at the latest when the *next* pane
//!   closes, and eagerly on `poll_windows`/`status`. Exactly one barrier
//!   is ever in flight, so every close answer is attributable without
//!   tags.
//!
//! # Watermark and ordering semantics
//!
//! The session in front of this engine enforces global event-time order,
//! and each shard's command ring is FIFO, so a shard observes its
//! sub-stream in stream order and always finishes pane `k` (by answering
//! its close) before touching pane `k+1` items. The engine's watermark
//! only advances when a barrier *resolves* — after every shard has
//! answered — so no shard can contribute items to a pane whose windows
//! the finalizer already sealed, and deferring the barrier never
//! reorders or loses data relative to the single-threaded engines. The
//! cost policy is consulted once per pane, as on the blocking design;
//! because the previous pane's merge may still be in flight at consult
//! time, feedback-driven policies observe each pane's feedback one pane
//! later than the batched engine (constant policies are unaffected).
//! With one shard the engine stays bit-for-bit identical to the batched
//! engine at the same seed and pane interval (`tests/engine_parity.rs`
//! holds that oracle); with many shards the answers agree statistically,
//! within the estimators' confidence bounds.

use crate::checkpoint::{decode_directive, encode_directive, RecordCodec};
use crate::combine::PanePayload;
use crate::cost::PolicyHandle;
use crate::engine::Engine;
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::runtime::{ApproxRuntime, IntervalWorker, PaneCursor, ShardSet, WorkerPane};
use crossbeam::spsc;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_types::wire::put_varint;
use sa_types::{
    EngineSnapshot, EventTime, RunSeed, SaError, ShardIngest, StreamItem, Window, WireDecode,
    WireEncode, WireReader,
};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of the sharded engine for one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedConfig {
    /// Number of worker shards (threads).
    pub shards: usize,
    /// Sampling-interval length in event-time milliseconds; `None` uses
    /// the query's window slide, the paper's interval choice (§5.5).
    pub pane_interval_ms: Option<i64>,
    /// Items buffered per shard before a chunk is shipped to its thread;
    /// larger chunks amortize ring traffic, smaller ones reduce the
    /// sampling lag behind ingestion.
    pub chunk_items: usize,
    /// Chunks each shard's command ring holds before routing blocks on
    /// that shard — the backpressure depth. Smaller rings bound memory
    /// tighter and stall the router sooner behind a slow shard; larger
    /// rings absorb longer hiccups.
    pub ring_chunks: usize,
    /// Seed for every sampling (and merge) decision.
    pub seed: RunSeed,
    /// Expected items in the first pane — the fraction policy's
    /// first-interval capacity hint, exactly as on the pipelined engine;
    /// from the second pane on, sizing adapts from real arrival counters.
    pub expected_pane_items: usize,
}

impl ShardedConfig {
    /// A configuration with `shards` worker threads and defaults
    /// otherwise: slide-sized panes, 1024-item chunks, 8-chunk rings,
    /// default seed.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedConfig {
            shards,
            pane_interval_ms: None,
            chunk_items: 1_024,
            ring_chunks: 8,
            seed: RunSeed::DEFAULT,
            expected_pane_items: 0,
        }
    }

    /// Overrides the sampling-interval length.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive.
    #[must_use]
    pub fn with_pane_interval_ms(mut self, ms: i64) -> Self {
        assert!(ms > 0, "pane interval must be positive");
        self.pane_interval_ms = Some(ms);
        self
    }

    /// Sets the per-shard chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    #[must_use]
    pub fn with_chunk_items(mut self, items: usize) -> Self {
        assert!(items > 0, "chunk size must be positive");
        self.chunk_items = items;
        self
    }

    /// Sets the per-shard command-ring depth (in chunks).
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    #[must_use]
    pub fn with_ring_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks > 0, "ring depth must be positive");
        self.ring_chunks = chunks;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: impl Into<RunSeed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Sets the first-pane volume hint for fraction budgets.
    #[must_use]
    pub fn with_expected_pane_items(mut self, items: usize) -> Self {
        self.expected_pane_items = items;
        self
    }
}

/// Commands the engine sends down a shard's command ring.
enum ToShard<R> {
    /// Replace the shard's interval worker (first pane, or the cost
    /// policy changed its directive).
    Arm(Box<IntervalWorker<R>>),
    /// A chunk of routed items to observe, in stream order. The shard
    /// drains the buffer and returns it for recycling.
    Chunk(Vec<StreamItem<R>>),
    /// Close the current interval and answer with a [`ShardClose`].
    Close,
    /// Serialize the shard's worker state (for a checkpoint) and answer
    /// with a [`FromShard::Snapshot`]. Sent only on a quiescent fabric —
    /// after the pending barrier resolved and every buffer flushed — so
    /// the encoded state is exactly the shard's view of the open pane.
    Snapshot(RecordCodec<R>),
}

/// Traffic a shard sends back up its return ring.
enum FromShard<R> {
    /// A drained chunk buffer, ready for the router to reuse.
    Buffer(Vec<StreamItem<R>>),
    /// The shard's answer to the in-flight close barrier.
    Close(Box<ShardClose<R>>),
    /// The shard's answer to a [`ToShard::Snapshot`]: its serialized
    /// worker state (`Option<IntervalWorker>` as a tag byte + state).
    Snapshot(Vec<u8>),
}

/// One shard's answer to a close barrier: the shard index is implied by
/// which return ring carried it.
struct ShardClose<R> {
    pane: WorkerPane<R>,
    ingested: u64,
    sampled: u64,
}

/// A pane whose close barrier has been broadcast but not yet resolved:
/// the caller keeps routing the next pane while shard answers accumulate
/// here, and the merge happens once all have arrived.
struct PendingPane<R> {
    window: Window,
    arrived: u64,
    /// Pane index for the canonical merge RNG seed.
    idx: u64,
    /// Time already spent broadcasting the close (the resolve adds its
    /// collect-and-merge span before the total reaches the cost policy).
    nanos: u64,
    answers: Vec<Option<Box<ShardClose<R>>>>,
    collected: usize,
    /// This close is the retiring workers' last report (a directive
    /// change armed replacements behind it): when resolving, fold the
    /// settled counters into the lifetime base.
    folds_counters: bool,
}

/// The shard worker loop: owns the shard's [`IntervalWorker`] between
/// rearms and runs until the engine drops the command ring's producer.
/// Drained chunk buffers and close answers travel back on `results`; a
/// dead engine (either ring disconnected) just ends the loop.
fn shard_loop<R>(
    mut commands: spsc::Consumer<ToShard<R>>,
    mut results: spsc::Producer<FromShard<R>>,
) {
    let mut worker: Option<IntervalWorker<R>> = None;
    while let Ok(command) = commands.pop() {
        match command {
            ToShard::Arm(fresh) => worker = Some(*fresh),
            ToShard::Chunk(mut items) => {
                let worker = worker.as_mut().expect("shard armed before items");
                worker.observe_chunk(&mut items);
                if results.push(FromShard::Buffer(items)).is_err() {
                    return;
                }
            }
            ToShard::Close => {
                let worker = worker.as_mut().expect("shard armed before close");
                let pane = worker.close_interval_parts();
                let (ingested, sampled) = worker.counters();
                let answer = Box::new(ShardClose {
                    pane,
                    ingested,
                    sampled,
                });
                if results.push(FromShard::Close(answer)).is_err() {
                    return;
                }
            }
            ToShard::Snapshot(codec) => {
                let mut state = Vec::new();
                match &worker {
                    None => 0u8.encode(&mut state),
                    Some(worker) => {
                        1u8.encode(&mut state);
                        worker.encode_state(codec, &mut state);
                    }
                }
                if results.push(FromShard::Snapshot(state)).is_err() {
                    return;
                }
            }
        }
    }
}

/// The sharded substrate as an incremental [`Engine`]; see the module
/// docs for the execution model.
pub(crate) struct ShardedEngine<'p, R> {
    runtime: ApproxRuntime<'p, R>,
    shard_set: ShardSet<R>,
    config: ShardedConfig,
    cursor: PaneCursor,
    to_shards: Vec<spsc::Producer<ToShard<R>>>,
    from_shards: Vec<spsc::Consumer<FromShard<R>>>,
    threads: Vec<JoinHandle<()>>,
    buffers: Vec<Vec<StreamItem<R>>>,
    /// Drained chunk buffers returned by the shards, awaiting reuse.
    free: Vec<Vec<StreamItem<R>>>,
    counters: Vec<ShardIngest>,
    /// Counter totals folded in from workers retired by a directive
    /// change: a [`ShardClose`] reports the *current* worker's lifetime
    /// counters, so the session-facing totals are `base + worker`.
    counter_base: Vec<ShardIngest>,
    /// The one close barrier allowed in flight; `None` when fully merged.
    pending: Option<PendingPane<R>>,
    /// Per-shard worker-state answers to an in-flight snapshot request;
    /// `None` when no snapshot is being collected.
    pending_snapshots: Option<Vec<Option<Vec<u8>>>>,
    codec: Option<RecordCodec<R>>,
    pane_open: bool,
    first_pane: bool,
    pane_arrived: u64,
    prev_pane_arrived: usize,
    pane_idx: u64,
    seq: u64,
    alive: bool,
}

impl<'p, R> ShardedEngine<'p, R>
where
    R: Send + Sync + 'static,
{
    pub(crate) fn new(
        config: ShardedConfig,
        query: Query<R>,
        policy: impl Into<PolicyHandle<'p>>,
        codec: Option<RecordCodec<R>>,
    ) -> Self {
        let pane_ms = config
            .pane_interval_ms
            .unwrap_or_else(|| query.window().slide_millis());
        let cursor = PaneCursor::new(pane_ms, query.window());
        let runtime = ApproxRuntime::new(&query, policy, config.seed, config.shards);
        let shard_set = ShardSet::new(config.shards, config.seed, query.projection());
        let mut to_shards = Vec::with_capacity(config.shards);
        let mut from_shards = Vec::with_capacity(config.shards);
        let mut threads = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (cmd_tx, cmd_rx) = spsc::ring(config.ring_chunks);
            // The return ring is deeper than the command ring (buffers in
            // flight plus one close answer), so a shard essentially never
            // blocks handing buffers back; if it still fills, the
            // router's send loop drains it, so progress is guaranteed.
            let (ret_tx, ret_rx) = spsc::ring(config.ring_chunks + 2);
            to_shards.push(cmd_tx);
            from_shards.push(ret_rx);
            threads.push(std::thread::spawn(move || shard_loop(cmd_rx, ret_tx)));
        }
        ShardedEngine {
            runtime,
            shard_set,
            config,
            cursor,
            to_shards,
            from_shards,
            threads,
            buffers: (0..config.shards)
                .map(|_| Vec::with_capacity(config.chunk_items))
                .collect(),
            free: Vec::new(),
            counters: (0..config.shards)
                .map(|shard| ShardIngest {
                    shard,
                    ..ShardIngest::default()
                })
                .collect(),
            counter_base: (0..config.shards)
                .map(|shard| ShardIngest {
                    shard,
                    ..ShardIngest::default()
                })
                .collect(),
            pending: None,
            pending_snapshots: None,
            codec,
            pane_open: false,
            first_pane: true,
            pane_arrived: 0,
            prev_pane_arrived: 0,
            pane_idx: 0,
            seq: 0,
            alive: true,
        }
    }

    fn dead(&mut self) -> SaError {
        self.alive = false;
        SaError::Disconnected("sharded worker thread died")
    }

    fn require_codec(&self) -> Result<RecordCodec<R>, SaError> {
        self.codec.ok_or_else(|| {
            SaError::Checkpoint(
                "engine built without a record codec; enable with StreamApprox::checkpointable"
                    .into(),
            )
        })
    }

    /// Returns a drained buffer to the freelist. No cap is needed: a
    /// fresh buffer is only ever allocated when the freelist is empty, so
    /// the buffer population is bounded by the fabric's peak demand
    /// (every ring slot plus one in the shard and one in the router, per
    /// shard) — and dropping spares here would just force the router to
    /// re-allocate them later.
    fn recycle(&mut self, buffer: Vec<StreamItem<R>>) {
        self.free.push(buffer);
    }

    /// Pops everything currently waiting in one shard's return ring:
    /// drained buffers go to the freelist, a close answer to the pending
    /// barrier.
    fn drain_returns(&mut self, shard: usize) -> Result<(), SaError> {
        loop {
            match self.from_shards[shard].try_pop() {
                Ok(FromShard::Buffer(buffer)) => self.recycle(buffer),
                Ok(FromShard::Close(answer)) => {
                    let pending = self
                        .pending
                        .as_mut()
                        .expect("close answer without a pending barrier");
                    debug_assert!(pending.answers[shard].is_none());
                    pending.answers[shard] = Some(answer);
                    pending.collected += 1;
                }
                Ok(FromShard::Snapshot(state)) => {
                    let slots = self
                        .pending_snapshots
                        .as_mut()
                        .expect("snapshot answer without a snapshot request");
                    debug_assert!(slots[shard].is_none());
                    slots[shard] = Some(state);
                }
                Err(spsc::PopError::Empty) => return Ok(()),
                Err(spsc::PopError::Disconnected) => return Err(self.dead()),
            }
        }
    }

    /// Sends one command down a shard's ring, spinning (and draining the
    /// shard's returns, so the pair of bounded rings can never deadlock)
    /// while the ring is full. This wait *is* the backpressure: a slow
    /// shard stalls the router here with bounded memory in flight.
    fn send(&mut self, shard: usize, command: ToShard<R>) -> Result<(), SaError> {
        let mut command = command;
        let mut spins = 0u32;
        loop {
            match self.to_shards[shard].try_push(command) {
                Ok(()) => return Ok(()),
                Err(spsc::PushError::Disconnected(_)) => return Err(self.dead()),
                Err(spsc::PushError::Full(rejected)) => command = rejected,
            }
            self.drain_returns(shard)?;
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Opens the cursor's current pane if none is open: consults the cost
    /// policy and, when its directive changed (or this is the first
    /// pane), arms every shard with a fresh worker. The arm command is
    /// FIFO-ordered behind the just-broadcast close, so the retiring
    /// worker still answers its pane before being replaced. With an
    /// unchanged directive the armed workers keep running, so capacity
    /// adaptation carries across panes exactly like the single-threaded
    /// sampler pool.
    fn ensure_armed(&mut self) -> Result<(), SaError> {
        if self.pane_open {
            return Ok(());
        }
        let directive = self.runtime.interval_sizing();
        let expected = if self.first_pane {
            self.config.expected_pane_items
        } else {
            self.prev_pane_arrived
        };
        if let Some(workers) = self.shard_set.rearm(directive, expected) {
            // The retiring workers' final counters arrive with the close
            // that is still in flight (if any): fold the base then. With
            // no barrier pending the counters are already settled.
            match self.pending.as_mut() {
                Some(pending) => pending.folds_counters = true,
                None => self.counter_base.clone_from(&self.counters),
            }
            for (shard, worker) in workers.into_iter().enumerate() {
                self.send(shard, ToShard::Arm(Box::new(worker)))?;
            }
        }
        self.first_pane = false;
        self.pane_open = true;
        self.pane_arrived = 0;
        Ok(())
    }

    /// Flushes a shard's routing buffer to its thread, swapping in a
    /// recycled buffer from the freelist — the steady-state zero
    /// allocation path — or a fresh one only when no buffer has come
    /// back yet.
    fn flush(&mut self, shard: usize) -> Result<(), SaError> {
        if self.buffers[shard].is_empty() {
            return Ok(());
        }
        if self.free.is_empty() {
            // Refill opportunistically before paying for an allocation.
            for other in 0..self.shard_set.num_shards() {
                self.drain_returns(other)?;
            }
        }
        let replacement = match self.free.pop() {
            Some(buffer) => {
                self.counters[shard].chunks_recycled += 1;
                buffer
            }
            None => Vec::with_capacity(self.config.chunk_items),
        };
        self.counters[shard].chunks_routed += 1;
        let chunk = std::mem::replace(&mut self.buffers[shard], replacement);
        self.send(shard, ToShard::Chunk(chunk))
    }

    /// Closes the open pane *without waiting for the shards*: flushes
    /// every buffer, broadcasts the close barrier and records the pane as
    /// pending. Shards answer at their own pace and move straight on to
    /// the next pane's chunks; the caller merges when the barrier
    /// resolves. Strict depth-1: any previous barrier is settled first,
    /// so every incoming answer belongs to exactly one pane.
    fn begin_close(&mut self) -> Result<(), SaError> {
        self.resolve_pending()?;
        let (start, end) = self.cursor.pane().expect("begin_close needs an open pane");
        let window = Window::new(EventTime::from_millis(start), EventTime::from_millis(end));
        // Only the barrier is clocked: routing stays clock-free, at the
        // price of process_nanos under-reporting the (concurrent)
        // per-item observe cost, like the aggregated engine.
        let closing = Instant::now();
        let shards = self.shard_set.num_shards();
        for shard in 0..shards {
            self.flush(shard)?;
        }
        self.pending = Some(PendingPane {
            window,
            arrived: self.pane_arrived,
            idx: self.pane_idx,
            nanos: 0,
            answers: (0..shards).map(|_| None).collect(),
            collected: 0,
            folds_counters: false,
        });
        for shard in 0..shards {
            self.send(shard, ToShard::Close)?;
        }
        let pending = self.pending.as_mut().expect("created above");
        pending.nanos += closing.elapsed().as_nanos() as u64;
        self.prev_pane_arrived = self.pane_arrived as usize;
        self.pane_open = false;
        self.pane_idx += 1;
        Ok(())
    }

    /// Settles the in-flight barrier, blocking until every shard has
    /// answered: updates lifetime counters, merges the shard panes in
    /// canonical ascending-shard order with the pane-seeded merge RNG,
    /// hands the pane to the runtime and advances the watermark. A no-op
    /// when nothing is pending.
    fn resolve_pending(&mut self) -> Result<(), SaError> {
        if self.pending.is_none() {
            return Ok(());
        }
        let merging = Instant::now();
        let shards = self.shard_set.num_shards();
        let mut spins = 0u32;
        loop {
            for shard in 0..shards {
                self.drain_returns(shard)?;
            }
            let pending = self.pending.as_ref().expect("still pending");
            if pending.collected == shards {
                break;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let mut pending = self.pending.take().expect("resolved above");
        let mut panes: Vec<WorkerPane<R>> = Vec::with_capacity(shards);
        for (shard, slot) in pending.answers.iter_mut().enumerate() {
            let answer = slot.take().expect("every shard answers one close");
            self.counters[shard].ingested = self.counter_base[shard].ingested + answer.ingested;
            self.counters[shard].sampled = self.counter_base[shard].sampled + answer.sampled;
            panes.push(answer.pane);
        }
        if pending.folds_counters {
            self.counter_base.clone_from(&self.counters);
        }
        let mut merge_rng = SmallRng::seed_from_u64(
            self.config
                .seed
                .derive(0x5AADED)
                .derive(pending.idx)
                .value(),
        );
        let payload: PanePayload = self.shard_set.merge_panes(panes, &mut merge_rng);
        let process_nanos = pending.nanos + merging.elapsed().as_nanos() as u64;
        self.runtime
            .ingest_interval(pending.window, payload, pending.arrived, process_nanos);
        self.runtime.close_interval(pending.window.end);
        Ok(())
    }

    /// Settles the in-flight barrier only if every shard has already
    /// answered — the overlap's happy path, merging mid-ingest without
    /// ever waiting on a shard.
    fn try_resolve(&mut self) -> Result<(), SaError> {
        if self.pending.is_none() {
            return Ok(());
        }
        let shards = self.shard_set.num_shards();
        for shard in 0..shards {
            self.drain_returns(shard)?;
        }
        let complete = self
            .pending
            .as_ref()
            .is_some_and(|pending| pending.collected == shards);
        if complete {
            self.resolve_pending()?;
        }
        Ok(())
    }
}

impl<R> Engine<R> for ShardedEngine<'_, R>
where
    R: Send + Sync + 'static,
{
    fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError> {
        if !self.alive {
            return Err(SaError::Disconnected("sharded worker thread died"));
        }
        // The shared cursor aligns the first pane to the first item's
        // interval, yields quiet intervals as empty panes (each consulting
        // the policy, mirroring the batched engine), and jumps oversized
        // gaps.
        let t = item.time.as_millis();
        while self.cursor.needs_close(t) {
            self.ensure_armed()?;
            self.begin_close()?;
            self.cursor.next(t);
        }
        self.ensure_armed()?;
        let shard = self.shard_set.route(item.stratum, self.seq);
        self.seq += 1;
        self.pane_arrived += 1;
        self.buffers[shard].push(item);
        if self.buffers[shard].len() >= self.config.chunk_items {
            self.flush(shard)?;
        }
        Ok(())
    }

    fn push_chunk(&mut self, mut items: Vec<StreamItem<R>>) -> Result<(), SaError> {
        if !self.alive {
            return Err(SaError::Disconnected("sharded worker thread died"));
        }
        // Merge mid-ingest when the previous pane's answers are already
        // in — one cheap ring sweep per chunk call, not per item.
        self.try_resolve()?;
        // The batch fast path: pane-cursor and arm checks run once per
        // pane portion, then the portion is routed item-by-item (routing
        // is per-item by contract — `route(stratum, seq)` — but costs no
        // RNG or locks) into the shard buffers. Identical routing/flush
        // sequence to the per-item loop.
        while !items.is_empty() {
            let t = items[0].time.as_millis();
            while self.cursor.needs_close(t) {
                self.ensure_armed()?;
                self.begin_close()?;
                self.cursor.next(t);
            }
            self.ensure_armed()?;
            let (_, end) = self.cursor.pane().expect("pane open after needs_close");
            let n = items.partition_point(|it| it.time.as_millis() < end);
            let rest = items.split_off(n);
            self.pane_arrived += items.len() as u64;
            for item in items {
                let shard = self.shard_set.route(item.stratum, self.seq);
                self.seq += 1;
                self.buffers[shard].push(item);
                if self.buffers[shard].len() >= self.config.chunk_items {
                    self.flush(shard)?;
                }
            }
            items = rest;
        }
        Ok(())
    }

    fn poll_windows(&mut self) -> Vec<WindowResult> {
        // Settle a completed barrier so its windows are observable now;
        // an error here resurfaces on the next push/finish.
        if self.alive {
            let _ = self.try_resolve();
        }
        self.runtime.take_windows()
    }

    fn settle(&mut self) -> Result<(), SaError> {
        if !self.alive {
            return Err(SaError::Disconnected("sharded worker thread died"));
        }
        self.resolve_pending()
    }

    fn shard_ingest(&self) -> Vec<ShardIngest> {
        // Read-only by contract: counters are as of the last settled
        // barrier — callers that need them no staler than the last closed
        // pane call `settle` first (the session's status path does).
        self.counters.clone()
    }

    fn panes_closed(&self) -> u64 {
        self.runtime.panes_closed()
    }

    fn snapshot(&mut self) -> Result<EngineSnapshot, SaError> {
        let codec = self.require_codec()?;
        if !self.alive {
            return Err(SaError::Disconnected("sharded worker thread died"));
        }
        // Quiesce the fabric: settle the in-flight barrier, hand every
        // buffered item to its shard, then ask each shard (FIFO behind
        // those chunks) for its serialized worker. The engine keeps
        // running afterwards — the snapshot is a pure read.
        self.resolve_pending()?;
        let shards = self.shard_set.num_shards();
        for shard in 0..shards {
            self.flush(shard)?;
        }
        self.pending_snapshots = Some((0..shards).map(|_| None).collect());
        for shard in 0..shards {
            self.send(shard, ToShard::Snapshot(codec))?;
        }
        let mut spins = 0u32;
        loop {
            for shard in 0..shards {
                self.drain_returns(shard)?;
            }
            let slots = self.pending_snapshots.as_ref().expect("requested above");
            if slots.iter().all(Option::is_some) {
                break;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let slots = self.pending_snapshots.take().expect("collected above");
        let mut state = Vec::new();
        self.cursor.start().encode(&mut state);
        put_varint(&mut state, self.seq);
        put_varint(&mut state, self.pane_idx);
        put_varint(&mut state, self.pane_arrived);
        put_varint(&mut state, self.prev_pane_arrived as u64);
        self.first_pane.encode(&mut state);
        self.pane_open.encode(&mut state);
        self.counters.encode(&mut state);
        self.counter_base.encode(&mut state);
        match self.shard_set.directive() {
            None => 0u8.encode(&mut state),
            Some(directive) => {
                1u8.encode(&mut state);
                encode_directive(&directive, &mut state);
            }
        }
        for blob in &slots {
            state.extend_from_slice(blob.as_deref().expect("every slot collected"));
        }
        self.runtime.encode_state(codec, &mut state);
        Ok(EngineSnapshot {
            engine: "sharded".into(),
            pane: self.cursor.start(),
            state,
        })
    }

    fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), SaError> {
        let codec = self.require_codec()?;
        if snapshot.engine != "sharded" {
            return Err(SaError::Checkpoint(format!(
                "cannot restore a '{}' snapshot into the sharded engine",
                snapshot.engine
            )));
        }
        if !self.alive {
            return Err(SaError::Disconnected("sharded worker thread died"));
        }
        let mut r = WireReader::new(&snapshot.state);
        self.cursor.restore_start(Option::decode(&mut r)?);
        self.seq = r.read_varint()?;
        self.pane_idx = r.read_varint()?;
        self.pane_arrived = r.read_varint()?;
        self.prev_pane_arrived = usize::decode(&mut r)?;
        self.first_pane = bool::decode(&mut r)?;
        self.pane_open = bool::decode(&mut r)?;
        self.counters = Vec::decode(&mut r)?;
        self.counter_base = Vec::decode(&mut r)?;
        let shards = self.shard_set.num_shards();
        if self.counters.len() != shards || self.counter_base.len() != shards {
            return Err(SaError::Checkpoint(format!(
                "snapshot covers {} shards but the engine has {shards}",
                self.counters.len()
            )));
        }
        let directive = match u8::decode(&mut r)? {
            0 => None,
            1 => Some(decode_directive(&mut r)?),
            tag => return Err(SaError::Wire(format!("unknown directive tag {tag}"))),
        };
        // Force the armed directive so the next `ensure_armed` compares
        // against what the restored workers are actually running, instead
        // of rearming fresh ones over them.
        self.shard_set.force_directive(directive);
        let proj = self.shard_set.projection();
        for shard in 0..shards {
            match u8::decode(&mut r)? {
                0 => {}
                1 => {
                    let worker = IntervalWorker::decode_state(&mut r, codec, Arc::clone(&proj))?;
                    self.send(shard, ToShard::Arm(Box::new(worker)))?;
                }
                tag => {
                    return Err(SaError::Wire(format!("unknown shard-worker tag {tag}")));
                }
            }
        }
        self.runtime.restore_state(&mut r, codec)?;
        r.finish()
    }

    fn finish(mut self: Box<Self>) -> RunOutput {
        // A trailing pane exists exactly when items arrived since the
        // last boundary, mirroring the batched engine. A dead shard loses
        // its trailing pane, like an operator death on the pipelined
        // engine.
        if self.alive {
            if self.pane_open {
                let _ = self.begin_close();
            }
            let _ = self.resolve_pending();
        }
        let ShardedEngine {
            runtime,
            to_shards,
            threads,
            ..
        } = *self;
        // Dropping the command producers ends every shard loop; join so
        // no thread outlives the run.
        drop(to_shards);
        for thread in threads {
            let _ = thread.join();
        }
        runtime.finish()
    }
}
