//! The sharded data-parallel engine: hash-partitioned OASRS over
//! mergeable stratified samplers.
//!
//! StreamApprox's core scalability claim is that OASRS is *mergeable*:
//! shard-local samples combine without bias, so sampling parallelizes
//! across workers with no synchronization on the hot path (§3.2; the
//! distributed follow-up develops the same idea across nodes). This
//! engine is that claim as an execution substrate:
//!
//! * **Routing** — every accepted item is hash-partitioned
//!   ([`ShardSet::route`]) across `N` worker shards, each a thread owning
//!   its own per-stratum [`IntervalWorker`] (OASRS samplers at *full*
//!   per-stratum capacity, or exact Welford accumulators under native
//!   execution). Items travel in chunks, so shards sample concurrently
//!   with ingestion and the pusher never blocks on a sampler.
//! * **The shared interval clock** — the engine cuts panes on the caller
//!   thread with the same [`PaneCursor`] the batched and aggregated
//!   engines use. At every pane boundary it broadcasts a close, and each
//!   shard answers with its interval's [`WorkerPane`]: the weighted
//!   stratified *sample* (not statistics), plus its lifetime counters.
//! * **Canonical merge** — shard panes are merged in ascending shard
//!   order by the mergeable-sampler layer ([`ShardSet::merge_panes`]):
//!   the seen-count-weighted reservoir union for fixed-size budgets, the
//!   capacity-summing union for fraction budgets, plain concatenation of
//!   Welford statistics for exact shards. Only then is the pane estimated
//!   and handed to the shared [`ApproxRuntime`] for window assembly.
//!
//! # Watermark and ordering semantics
//!
//! The session in front of this engine enforces global event-time order,
//! and each shard's channel is FIFO, so a shard observes its sub-stream
//! in stream order. The engine's watermark only advances at a pane close,
//! *after* every shard has answered the close barrier — no shard can
//! contribute items to a pane whose windows the finalizer already sealed,
//! so sharding never reorders or loses data relative to the
//! single-threaded engines. With one shard the engine is bit-for-bit
//! identical to the batched engine at the same seed and pane interval
//! (`tests/engine_parity.rs` holds that oracle); with many shards the
//! answers agree statistically, within the estimators' confidence bounds.

use crate::combine::PanePayload;
use crate::cost::PolicyHandle;
use crate::engine::Engine;
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::runtime::{ApproxRuntime, IntervalWorker, PaneCursor, ShardSet, WorkerPane};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_types::{EventTime, RunSeed, SaError, ShardIngest, StreamItem, Window};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of the sharded engine for one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedConfig {
    /// Number of worker shards (threads).
    pub shards: usize,
    /// Sampling-interval length in event-time milliseconds; `None` uses
    /// the query's window slide, the paper's interval choice (§5.5).
    pub pane_interval_ms: Option<i64>,
    /// Items buffered per shard before a chunk is shipped to its thread;
    /// larger chunks amortize channel traffic, smaller ones reduce the
    /// sampling lag behind ingestion.
    pub chunk_items: usize,
    /// Seed for every sampling (and merge) decision.
    pub seed: RunSeed,
    /// Expected items in the first pane — the fraction policy's
    /// first-interval capacity hint, exactly as on the pipelined engine;
    /// from the second pane on, sizing adapts from real arrival counters.
    pub expected_pane_items: usize,
}

impl ShardedConfig {
    /// A configuration with `shards` worker threads and defaults
    /// otherwise: slide-sized panes, 1024-item chunks, default seed.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedConfig {
            shards,
            pane_interval_ms: None,
            chunk_items: 1_024,
            seed: RunSeed::DEFAULT,
            expected_pane_items: 0,
        }
    }

    /// Overrides the sampling-interval length.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive.
    #[must_use]
    pub fn with_pane_interval_ms(mut self, ms: i64) -> Self {
        assert!(ms > 0, "pane interval must be positive");
        self.pane_interval_ms = Some(ms);
        self
    }

    /// Sets the per-shard chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    #[must_use]
    pub fn with_chunk_items(mut self, items: usize) -> Self {
        assert!(items > 0, "chunk size must be positive");
        self.chunk_items = items;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: impl Into<RunSeed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Sets the first-pane volume hint for fraction budgets.
    #[must_use]
    pub fn with_expected_pane_items(mut self, items: usize) -> Self {
        self.expected_pane_items = items;
        self
    }
}

/// Commands the engine sends a shard thread.
enum ToShard<R> {
    /// Replace the shard's interval worker (first pane, or the cost
    /// policy changed its directive).
    Arm(Box<IntervalWorker<R>>),
    /// A chunk of routed items to observe, in stream order.
    Chunk(Vec<StreamItem<R>>),
    /// Close the current interval and answer with a [`ShardClose`].
    Close,
}

/// One shard's answer to a close barrier.
struct ShardClose<R> {
    shard: usize,
    pane: WorkerPane<R>,
    ingested: u64,
    sampled: u64,
}

/// The shard worker loop: owns the shard's [`IntervalWorker`] between
/// rearms and runs until the engine drops its sender.
fn shard_loop<R>(
    shard: usize,
    commands: mpsc::Receiver<ToShard<R>>,
    results: mpsc::Sender<ShardClose<R>>,
) {
    let mut worker: Option<IntervalWorker<R>> = None;
    while let Ok(command) = commands.recv() {
        match command {
            ToShard::Arm(fresh) => worker = Some(*fresh),
            ToShard::Chunk(items) => {
                let worker = worker.as_mut().expect("shard armed before items");
                worker.observe_chunk(items);
            }
            ToShard::Close => {
                let worker = worker.as_mut().expect("shard armed before close");
                let pane = worker.close_interval_parts();
                let (ingested, sampled) = worker.counters();
                if results
                    .send(ShardClose {
                        shard,
                        pane,
                        ingested,
                        sampled,
                    })
                    .is_err()
                {
                    return; // Engine gone: nothing left to answer to.
                }
            }
        }
    }
}

/// The sharded substrate as an incremental [`Engine`]; see the module
/// docs for the execution model.
pub(crate) struct ShardedEngine<'p, R> {
    runtime: ApproxRuntime<'p, R>,
    shard_set: ShardSet<R>,
    config: ShardedConfig,
    cursor: PaneCursor,
    senders: Vec<mpsc::Sender<ToShard<R>>>,
    results: mpsc::Receiver<ShardClose<R>>,
    threads: Vec<JoinHandle<()>>,
    buffers: Vec<Vec<StreamItem<R>>>,
    counters: Vec<ShardIngest>,
    /// Counter totals folded in from workers retired by a directive
    /// change: a [`ShardClose`] reports the *current* worker's lifetime
    /// counters, so the session-facing totals are `base + worker`.
    counter_base: Vec<ShardIngest>,
    pane_open: bool,
    first_pane: bool,
    pane_arrived: u64,
    prev_pane_arrived: usize,
    pane_idx: u64,
    seq: u64,
    alive: bool,
}

impl<'p, R> ShardedEngine<'p, R>
where
    R: Send + Sync + 'static,
{
    pub(crate) fn new(
        config: ShardedConfig,
        query: Query<R>,
        policy: impl Into<PolicyHandle<'p>>,
    ) -> Self {
        let pane_ms = config
            .pane_interval_ms
            .unwrap_or_else(|| query.window().slide_millis());
        let cursor = PaneCursor::new(pane_ms, query.window());
        let runtime = ApproxRuntime::new(&query, policy, config.seed, config.shards);
        let shard_set = ShardSet::new(config.shards, config.seed, query.projection());
        let (result_tx, results) = mpsc::channel();
        let mut senders = Vec::with_capacity(config.shards);
        let mut threads = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = mpsc::channel();
            let results = result_tx.clone();
            senders.push(tx);
            threads.push(std::thread::spawn(move || shard_loop(shard, rx, results)));
        }
        ShardedEngine {
            runtime,
            shard_set,
            config,
            cursor,
            senders,
            results,
            threads,
            buffers: (0..config.shards)
                .map(|_| Vec::with_capacity(config.chunk_items))
                .collect(),
            counters: (0..config.shards)
                .map(|shard| ShardIngest {
                    shard,
                    ..ShardIngest::default()
                })
                .collect(),
            counter_base: (0..config.shards)
                .map(|shard| ShardIngest {
                    shard,
                    ..ShardIngest::default()
                })
                .collect(),
            pane_open: false,
            first_pane: true,
            pane_arrived: 0,
            prev_pane_arrived: 0,
            pane_idx: 0,
            seq: 0,
            alive: true,
        }
    }

    fn send(&mut self, shard: usize, command: ToShard<R>) -> Result<(), SaError> {
        if self.senders[shard].send(command).is_err() {
            self.alive = false;
            return Err(SaError::Disconnected("sharded worker thread died"));
        }
        Ok(())
    }

    /// Opens the cursor's current pane if none is open: consults the cost
    /// policy and, when its directive changed (or this is the first
    /// pane), arms every shard with a fresh worker. With an unchanged
    /// directive the armed workers keep running, so capacity adaptation
    /// carries across panes exactly like the single-threaded sampler
    /// pool.
    fn ensure_armed(&mut self) -> Result<(), SaError> {
        if self.pane_open {
            return Ok(());
        }
        let directive = self.runtime.interval_sizing();
        let expected = if self.first_pane {
            self.config.expected_pane_items
        } else {
            self.prev_pane_arrived
        };
        if let Some(workers) = self.shard_set.rearm(directive, expected) {
            // The retiring workers' counters (last reported at the
            // previous close — no chunks travel between a close and the
            // next arm) roll into the base so shard totals stay lifetime
            // counters across directive changes.
            self.counter_base.clone_from(&self.counters);
            for (shard, worker) in workers.into_iter().enumerate() {
                self.send(shard, ToShard::Arm(Box::new(worker)))?;
            }
        }
        self.first_pane = false;
        self.pane_open = true;
        self.pane_arrived = 0;
        Ok(())
    }

    /// Flushes a shard's routing buffer to its thread.
    fn flush(&mut self, shard: usize) -> Result<(), SaError> {
        if self.buffers[shard].is_empty() {
            return Ok(());
        }
        let chunk = std::mem::replace(
            &mut self.buffers[shard],
            Vec::with_capacity(self.config.chunk_items),
        );
        self.send(shard, ToShard::Chunk(chunk))
    }

    /// Closes the open pane: flushes every buffer, broadcasts the close
    /// barrier, merges the shard panes canonically and advances the
    /// watermark to the pane end.
    fn close_pane(&mut self) -> Result<(), SaError> {
        let (start, end) = self.cursor.pane().expect("close_pane needs an open pane");
        let window = Window::new(EventTime::from_millis(start), EventTime::from_millis(end));
        // Only the close barrier is clocked: routing stays clock-free, at
        // the price of process_nanos under-reporting the (concurrent)
        // per-item observe cost, like the aggregated engine.
        let closing = Instant::now();
        for shard in 0..self.shard_set.num_shards() {
            self.flush(shard)?;
            self.send(shard, ToShard::Close)?;
        }
        let mut panes: Vec<Option<WorkerPane<R>>> =
            (0..self.shard_set.num_shards()).map(|_| None).collect();
        for _ in 0..self.shard_set.num_shards() {
            let Ok(close) = self.results.recv() else {
                self.alive = false;
                return Err(SaError::Disconnected("sharded worker thread died"));
            };
            self.counters[close.shard].ingested =
                self.counter_base[close.shard].ingested + close.ingested;
            self.counters[close.shard].sampled =
                self.counter_base[close.shard].sampled + close.sampled;
            panes[close.shard] = Some(close.pane);
        }
        // Canonical merge order: ascending shard index, whatever order the
        // threads answered in.
        let panes: Vec<WorkerPane<R>> = panes
            .into_iter()
            .map(|p| p.expect("every shard answers one close"))
            .collect();
        let mut merge_rng = SmallRng::seed_from_u64(
            self.config
                .seed
                .derive(0x5AADED)
                .derive(self.pane_idx)
                .value(),
        );
        let payload: PanePayload = self.shard_set.merge_panes(panes, &mut merge_rng);
        let process_nanos = closing.elapsed().as_nanos() as u64;
        self.runtime
            .ingest_interval(window, payload, self.pane_arrived, process_nanos);
        self.runtime.close_interval(window.end);
        self.prev_pane_arrived = self.pane_arrived as usize;
        self.pane_open = false;
        self.pane_idx += 1;
        Ok(())
    }
}

impl<R> Engine<R> for ShardedEngine<'_, R>
where
    R: Send + Sync + 'static,
{
    fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError> {
        if !self.alive {
            return Err(SaError::Disconnected("sharded worker thread died"));
        }
        // The shared cursor aligns the first pane to the first item's
        // interval, yields quiet intervals as empty panes (each consulting
        // the policy, mirroring the batched engine), and jumps oversized
        // gaps.
        let t = item.time.as_millis();
        while self.cursor.needs_close(t) {
            self.ensure_armed()?;
            self.close_pane()?;
            self.cursor.next(t);
        }
        self.ensure_armed()?;
        let shard = self.shard_set.route(item.stratum, self.seq);
        self.seq += 1;
        self.pane_arrived += 1;
        self.buffers[shard].push(item);
        if self.buffers[shard].len() >= self.config.chunk_items {
            self.flush(shard)?;
        }
        Ok(())
    }

    fn push_chunk(&mut self, mut items: Vec<StreamItem<R>>) -> Result<(), SaError> {
        if !self.alive {
            return Err(SaError::Disconnected("sharded worker thread died"));
        }
        // The batch fast path: pane-cursor and arm checks run once per
        // pane portion, then the portion is routed item-by-item (routing
        // is per-item by contract — `route(stratum, seq)` — but costs no
        // RNG or locks) into the shard buffers. Identical routing/flush
        // sequence to the per-item loop.
        while !items.is_empty() {
            let t = items[0].time.as_millis();
            while self.cursor.needs_close(t) {
                self.ensure_armed()?;
                self.close_pane()?;
                self.cursor.next(t);
            }
            self.ensure_armed()?;
            let (_, end) = self.cursor.pane().expect("pane open after needs_close");
            let n = items.partition_point(|it| it.time.as_millis() < end);
            let rest = items.split_off(n);
            self.pane_arrived += items.len() as u64;
            for item in items {
                let shard = self.shard_set.route(item.stratum, self.seq);
                self.seq += 1;
                self.buffers[shard].push(item);
                if self.buffers[shard].len() >= self.config.chunk_items {
                    self.flush(shard)?;
                }
            }
            items = rest;
        }
        Ok(())
    }

    fn poll_windows(&mut self) -> Vec<WindowResult> {
        self.runtime.take_windows()
    }

    fn shard_ingest(&self) -> Vec<ShardIngest> {
        self.counters.clone()
    }

    fn finish(mut self: Box<Self>) -> RunOutput {
        // A trailing pane exists exactly when items arrived since the
        // last boundary, mirroring the batched engine. A dead shard loses
        // its trailing pane, like an operator death on the pipelined
        // engine.
        if self.alive && self.pane_open {
            let _ = self.close_pane();
        }
        let ShardedEngine {
            runtime,
            senders,
            threads,
            ..
        } = *self;
        // Dropping the senders ends every shard loop; join so no thread
        // outlives the run.
        drop(senders);
        for thread in threads {
            let _ = thread.join();
        }
        runtime.finish()
    }
}
