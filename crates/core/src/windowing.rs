//! Pane-based sliding-window assembly.
//!
//! Both execution models sample per *pane* — the batch interval in the
//! batched model, the slide interval in the pipelined model (§5.5: "the
//! sampling operations are performed at every batch interval in the
//! Spark-based systems and at every slide window interval in the
//! Flink-based StreamApprox") — and sliding windows combine the panes they
//! cover. [`PaneWindower`] does that bookkeeping generically.

use sa_batched::completed_windows;
use sa_types::{EventTime, Window, WindowSpec};
use std::collections::BTreeMap;

/// Collects per-pane payloads and emits, as the watermark advances, each
/// completed window together with the payloads of every pane it covers.
///
/// Multiple payloads may be registered for the same pane (one per parallel
/// sampling worker); they are all delivered. Panes are assigned to the
/// windows containing their start time, which is exact whenever the pane
/// length divides the slide (the paper's configurations all satisfy this).
///
/// # Example
///
/// ```
/// use streamapprox::PaneWindower;
/// use sa_types::{EventTime, Window, WindowSpec};
///
/// let spec = WindowSpec::sliding_secs(10, 5);
/// let mut windower: PaneWindower<u32> = PaneWindower::new(spec);
/// for pane_start in 0..2 {
///     let w = Window::new(
///         EventTime::from_secs(pane_start * 5),
///         EventTime::from_secs(pane_start * 5 + 5),
///     );
///     windower.add_pane(w, pane_start as u32);
/// }
/// let done = windower.advance(EventTime::from_secs(10));
/// assert_eq!(done.len(), 1); // the [0s, 10s) window, covering panes 0 and 1
/// assert_eq!(done[0].1, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct PaneWindower<P> {
    spec: WindowSpec,
    /// Pane payloads keyed by pane start (ms).
    panes: BTreeMap<i64, Vec<P>>,
    watermark: EventTime,
}

impl<P: Clone> PaneWindower<P> {
    /// Creates a windower for the given spec.
    pub fn new(spec: WindowSpec) -> Self {
        PaneWindower {
            spec,
            panes: BTreeMap::new(),
            watermark: EventTime::from_millis(0),
        }
    }

    /// The window specification.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Registers a payload for the pane spanning `pane`.
    pub fn add_pane(&mut self, pane: Window, payload: P) {
        self.panes
            .entry(pane.start.as_millis())
            .or_default()
            .push(payload);
    }

    /// Advances the watermark and returns every window that completed,
    /// with the payloads of its panes in pane order. Windows whose panes
    /// were all empty still appear (with an empty payload list) so callers
    /// can emit explicit empty results — except across a quiet gap longer
    /// than twice `window size + slide`: the interior of such a gap holds
    /// only windows no pane can ever touch, so they are skipped rather
    /// than materialized one per slide (a live session must stay O(1) per
    /// watermark advance, however far event time jumps). Windows
    /// overlapping data at either edge of the gap still complete normally.
    pub fn advance(&mut self, watermark: EventTime) -> Vec<(Window, Vec<P>)> {
        if watermark <= self.watermark {
            return Vec::new();
        }
        let span = self.spec.size_millis() + self.spec.slide_millis();
        let prev = self.watermark.as_millis();
        let wm = watermark.as_millis();
        let done = if wm.saturating_sub(prev) > 2 * span {
            // Bridge the jump with bounded strips of window ends: near
            // the old frontier, near the new one, and across every stored
            // pane (a window containing a pane starting at `k` ends in
            // `(k, k + size]`). Everything else in the jump is quiet by
            // construction. Strips are clamped to `(prev, wm]`, merged
            // while overlapping, and enumerated in order, so each window
            // appears exactly once and end-order is preserved.
            let mut strips = vec![(prev, prev.saturating_add(span)), (wm - span, wm)];
            // One strip per stored pane — not one strip across them all,
            // which would span the very gap being skipped when panes sit
            // on both of its sides.
            let size = self.spec.size_millis();
            strips.extend(self.panes.keys().map(|&k| (k, k.saturating_add(size))));
            for s in &mut strips {
                s.0 = s.0.clamp(prev, wm);
                s.1 = s.1.clamp(prev, wm);
            }
            strips.retain(|s| s.1 > s.0);
            strips.sort_unstable();
            let mut merged: Vec<(i64, i64)> = Vec::new();
            for s in strips {
                match merged.last_mut() {
                    Some(m) if s.0 <= m.1 => m.1 = m.1.max(s.1),
                    _ => merged.push(s),
                }
            }
            merged
                .into_iter()
                .flat_map(|(a, b)| {
                    completed_windows(
                        self.spec,
                        EventTime::from_millis(a),
                        EventTime::from_millis(b),
                    )
                })
                .collect()
        } else {
            completed_windows(self.spec, self.watermark, watermark)
        };
        self.watermark = watermark;
        let out: Vec<(Window, Vec<P>)> = done
            .into_iter()
            .map(|w| {
                let payloads: Vec<P> = self
                    .panes
                    .range(w.start.as_millis()..w.end.as_millis())
                    .flat_map(|(_, ps)| ps.iter().cloned())
                    .collect();
                (w, payloads)
            })
            .collect();
        // Panes older than any window still open can be dropped: an open
        // window ends after the watermark, so it starts after wm − size.
        let horizon = self.watermark.as_millis() - self.spec.size_millis();
        self.panes = self.panes.split_off(&horizon.max(0));
        out
    }

    /// The internal pane map and watermark, for engine snapshots.
    pub(crate) fn state(&self) -> (&BTreeMap<i64, Vec<P>>, EventTime) {
        (&self.panes, self.watermark)
    }

    /// Overwrites the pane map and watermark from a snapshot. The spec is
    /// not part of the state: a restored engine is rebuilt from the same
    /// query, so its spec already matches.
    pub(crate) fn restore_state(&mut self, panes: BTreeMap<i64, Vec<P>>, watermark: EventTime) {
        self.panes = panes;
        self.watermark = watermark;
    }

    /// Flushes everything: completes every window that contains a stored
    /// pane, without inventing empty windows past the end of the data.
    pub fn finish(&mut self) -> Vec<(Window, Vec<P>)> {
        let Some(&last_start) = self.panes.keys().next_back() else {
            return Vec::new();
        };
        // The latest window containing the last pane starts at the slide
        // multiple at or before it; closing that window closes them all.
        let slide = self.spec.slide_millis();
        let target = last_start.div_euclid(slide) * slide + self.spec.size_millis();
        self.advance(EventTime::from_millis(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pane(s: i64, len: i64) -> Window {
        Window::new(EventTime::from_millis(s), EventTime::from_millis(s + len))
    }

    #[test]
    fn tumbling_windows_emit_one_pane_each() {
        let spec = WindowSpec::tumbling_millis(1_000);
        let mut w: PaneWindower<i64> = PaneWindower::new(spec);
        for k in 0..5 {
            w.add_pane(pane(k * 1_000, 1_000), k);
        }
        let done = w.advance(EventTime::from_millis(5_000));
        assert_eq!(done.len(), 5);
        for (k, (win, panes)) in done.iter().enumerate() {
            assert_eq!(win.start.as_millis(), k as i64 * 1_000);
            assert_eq!(panes, &vec![k as i64]);
        }
    }

    #[test]
    fn sliding_windows_cover_overlapping_panes() {
        // 10s window, 5s slide, 2.5s panes: each window covers 4 panes.
        let spec = WindowSpec::sliding_secs(10, 5);
        let mut w: PaneWindower<i64> = PaneWindower::new(spec);
        for k in 0..8 {
            w.add_pane(pane(k * 2_500, 2_500), k);
        }
        let done = w.advance(EventTime::from_secs(20));
        // Completed: [0,10) [5,15) [10,20).
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].1, vec![0, 1, 2, 3]);
        assert_eq!(done[1].1, vec![2, 3, 4, 5]);
        assert_eq!(done[2].1, vec![4, 5, 6, 7]);
    }

    #[test]
    fn multiple_payloads_per_pane_are_all_delivered() {
        let spec = WindowSpec::tumbling_millis(100);
        let mut w: PaneWindower<&str> = PaneWindower::new(spec);
        w.add_pane(pane(0, 100), "worker-0");
        w.add_pane(pane(0, 100), "worker-1");
        let done = w.advance(EventTime::from_millis(100));
        assert_eq!(done[0].1, vec!["worker-0", "worker-1"]);
    }

    #[test]
    fn watermark_never_regresses() {
        let spec = WindowSpec::tumbling_millis(100);
        let mut w: PaneWindower<i64> = PaneWindower::new(spec);
        w.add_pane(pane(0, 100), 1);
        assert_eq!(w.advance(EventTime::from_millis(100)).len(), 1);
        assert!(w.advance(EventTime::from_millis(50)).is_empty());
        assert!(w.advance(EventTime::from_millis(100)).is_empty());
    }

    #[test]
    fn old_panes_are_pruned() {
        let spec = WindowSpec::sliding_secs(10, 5);
        let mut w: PaneWindower<i64> = PaneWindower::new(spec);
        for k in 0..100 {
            w.add_pane(pane(k * 5_000, 5_000), k);
            w.advance(EventTime::from_millis((k + 1) * 5_000));
        }
        // Only panes within one window size of the watermark survive.
        assert!(w.panes.len() <= 3, "{} panes retained", w.panes.len());
    }

    #[test]
    fn finish_flushes_trailing_windows() {
        let spec = WindowSpec::sliding_secs(10, 5);
        let mut w: PaneWindower<i64> = PaneWindower::new(spec);
        for k in 0..3 {
            w.add_pane(pane(k * 5_000, 5_000), k);
        }
        let emitted = w.advance(EventTime::from_secs(10));
        assert_eq!(emitted.len(), 1);
        let rest = w.finish();
        // Remaining windows covering panes 1–2 (and the tail) flush.
        assert!(rest.len() >= 2, "flushed {} windows", rest.len());
        assert!(w.finish().is_empty());
    }

    #[test]
    fn windows_with_no_panes_emit_empty_payloads() {
        let spec = WindowSpec::tumbling_millis(1_000);
        let mut w: PaneWindower<i64> = PaneWindower::new(spec);
        w.add_pane(pane(0, 1_000), 7);
        let done = w.advance(EventTime::from_millis(3_000));
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].1, vec![7]);
        assert!(done[1].1.is_empty());
        assert!(done[2].1.is_empty());
    }

    #[test]
    fn huge_watermark_jump_is_bounded_and_keeps_edge_windows() {
        // One pane of data, then the watermark leaps ~32 years of event
        // time: the quiet interior must be skipped (bounded work and
        // output), while windows covering the stored pane still emit.
        let spec = WindowSpec::tumbling_millis(1_000);
        let mut w: PaneWindower<i64> = PaneWindower::new(spec);
        w.add_pane(pane(0, 1_000), 7);
        let done = w.advance(EventTime::from_millis(1_000_000_000_000));
        assert!(done.len() <= 8, "gap materialized {} windows", done.len());
        assert_eq!(done[0].1, vec![7], "edge window lost its pane");
        // A pane arriving after the jump still completes normally.
        w.add_pane(pane(1_000_000_000_000, 1_000), 9);
        let after = w.advance(EventTime::from_millis(1_000_000_001_000));
        assert!(after.iter().any(|(_, ps)| ps == &vec![9]));
    }
}
