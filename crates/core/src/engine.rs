//! The engine contract behind incremental sessions.
//!
//! The paper's architecture (§4) separates *what* StreamApprox does every
//! interval — sample under a budget, estimate with error bounds, assemble
//! windows — from *where* it runs: a batched dataset engine, a pipelined
//! operator engine, or a plain consumer loop off a stream aggregator.
//! [`Engine`] is that separation as a trait: each substrate accepts items
//! one at a time, surfaces windows as their watermark closes them, and
//! settles into a [`RunOutput`] at end of stream. Every implementation
//! embeds the shared runtime parts ([`crate::ApproxRuntime`],
//! [`crate::IntervalWorker`], [`crate::WindowFinalizer`]) and adds only
//! its substrate's execution strategy.
//!
//! Applications normally do not touch this trait: they build an
//! [`crate::ApproxSession`] through the [`crate::StreamApprox`] builder,
//! which picks the engine and layers input validation on top. Implement
//! `Engine` to plug a new substrate (a sharded engine, a remote runner)
//! into the same session API via
//! [`crate::ApproxSession::from_engine`].

use crate::output::{RunOutput, WindowResult};
use sa_types::{EngineSnapshot, SaError, ShardIngest, StreamItem, WorkerStatus};

/// One execution substrate driving the approximation runtime
/// incrementally.
///
/// # Contract
///
/// * [`push`](Engine::push) receives items in non-decreasing event-time
///   order ([`crate::ApproxSession`] enforces this before delegating, so
///   implementations may trust it).
/// * [`poll_windows`](Engine::poll_windows) returns each completed window
///   exactly once, in watermark order, without blocking on future input.
///   Threaded engines may surface a window a moment after the items that
///   complete it were pushed; single-threaded engines surface it on the
///   very push that crosses the window boundary.
/// * [`finish`](Engine::finish) flushes every still-open window and
///   returns the run's output: the windows not yet taken through
///   `poll_windows`, plus ingestion/aggregation counters covering the
///   whole run.
pub trait Engine<R> {
    /// Ingests one item.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] if the substrate has shut down (e.g. an
    /// operator thread died); implementations must not panic on transport
    /// failure.
    fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError>;

    /// Ingests a whole chunk of items (same ordering contract as
    /// [`push`](Engine::push): the chunk is internally non-decreasing in
    /// event time and no earlier than anything already pushed).
    ///
    /// The default implementation is a per-item [`push`](Engine::push)
    /// loop; engines with a batch fast path override it to run
    /// pane-boundary checks once per run and feed whole slices to the
    /// samplers. Overrides must be observationally identical to the
    /// default — chunking is a throughput lever, never a semantic one.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] under the same conditions as
    /// [`push`](Engine::push); items before the failure point may have
    /// been ingested.
    fn push_chunk(&mut self, items: Vec<StreamItem<R>>) -> Result<(), SaError> {
        for item in items {
            self.push(item)?;
        }
        Ok(())
    }

    /// Takes the windows completed since the last poll.
    fn poll_windows(&mut self) -> Vec<WindowResult>;

    /// Settles any in-flight interval barrier so subsequent read-only
    /// probes ([`shard_ingest`](Engine::shard_ingest), a
    /// [`snapshot`](Engine::snapshot)) see state no older than the last
    /// closed pane. Engines that overlap interval merging with ingest —
    /// the sharded engine — block here until the pending merge resolves;
    /// everything else keeps the default no-op.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] if the substrate has shut down.
    fn settle(&mut self) -> Result<(), SaError> {
        Ok(())
    }

    /// Per-shard sampler counters for data-parallel substrates, in shard
    /// order, as of the last settled interval. Single-worker substrates
    /// keep the default empty answer; `ApproxSession::status` surfaces
    /// this through `SessionStatus::shards`.
    ///
    /// Read-only: counters are reported as of the last
    /// [`settle`](Engine::settle) (or pane close, whichever is later) —
    /// call `settle` first when freshness matters.
    fn shard_ingest(&self) -> Vec<ShardIngest> {
        Vec::new()
    }

    /// Per-remote-worker progress for distributed substrates, in worker-id
    /// order, as of each worker's last digest or heartbeat. Local
    /// substrates keep the default empty answer; `ApproxSession::status`
    /// surfaces this through `SessionStatus::workers`.
    fn worker_status(&self) -> Vec<WorkerStatus> {
        Vec::new()
    }

    /// Serializes the engine's full mergeable state — reservoirs,
    /// per-stratum statistics, counters, pane cursor — into a versioned
    /// [`EngineSnapshot`]. Call [`settle`](Engine::settle) first so
    /// data-parallel engines snapshot quiescent state.
    ///
    /// The default answer is [`SaError::Checkpoint`]: engines support
    /// snapshots only when built with a record codec (see
    /// [`crate::StreamApprox::checkpointable`]), and some substrates
    /// (the pipelined engine, whose state lives in operator threads)
    /// do not support them at all.
    ///
    /// # Errors
    ///
    /// [`SaError::Checkpoint`] when the engine cannot snapshot.
    fn snapshot(&mut self) -> Result<EngineSnapshot, SaError> {
        Err(SaError::Checkpoint(
            "this engine does not support snapshots".into(),
        ))
    }

    /// Restores state captured by [`snapshot`](Engine::snapshot) into a
    /// freshly built engine of the same kind and configuration. The
    /// engine must verify `snapshot.engine` names it before decoding.
    ///
    /// # Errors
    ///
    /// [`SaError::Checkpoint`] when the snapshot names a different
    /// engine or this engine cannot restore; [`SaError::Wire`] on
    /// corrupt state bytes.
    fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), SaError> {
        let _ = snapshot;
        Err(SaError::Checkpoint(
            "this engine does not support restore".into(),
        ))
    }

    /// Panes closed (ingested into window assembly) over the run — the
    /// cadence counter checkpoint policies measure against. Engines
    /// without pane bookkeeping keep the default 0.
    fn panes_closed(&self) -> u64 {
        0
    }

    /// Informs the engine that a checkpoint of `snapshot_bytes` sealed
    /// bytes covering up to `pane` was taken, so substrates that report
    /// progress remotely (the distributed worker) can reset their
    /// exposure-to-loss counters. Default: ignored.
    fn note_checkpoint(&mut self, pane: Option<i64>, snapshot_bytes: u64) {
        let _ = (pane, snapshot_bytes);
    }

    /// Hands the engine the sealed session-snapshot bytes of the
    /// checkpoint just taken, so substrates with a remote coordinator
    /// (the distributed worker) can ship the slice upstream for
    /// dead-shard handoff. Called after
    /// [`note_checkpoint`](Engine::note_checkpoint). Default: ignored.
    fn publish_checkpoint(&mut self, sealed: &[u8]) {
        let _ = sealed;
    }

    /// Ends the stream: flushes trailing windows and returns the
    /// completed run.
    #[must_use = "finish returns the run's windows and metrics"]
    fn finish(self: Box<Self>) -> RunOutput;
}
