//! Incremental sessions: the push/poll API over any [`Engine`].
//!
//! The paper is about *unbounded* streams, so the primary API is not "hand
//! me the whole recording" but a live session: build a [`StreamApprox`]
//! (query + cost policy or budget + engine choice), [`start`] it, `push`
//! items as they arrive, `poll_windows` for every window the watermark has
//! closed so far, and `finish` for the final [`RunOutput`]. The one-shot
//! [`crate::run_batched`]/[`crate::run_pipelined`] entry points are thin
//! conveniences over exactly this session (build → push everything →
//! finish), so the two styles are bit-for-bit interchangeable.
//!
//! [`start`]: StreamApprox::start

use crate::aggregated::{AggregatedConfig, AggregatedEngine};
use crate::batched::{BatchedConfig, BatchedEngine, BatchedSystem};
use crate::checkpoint::{seal_session_snapshot, CheckpointStore, RecordCodec};
use crate::cost::{confidence_for_budget, policy_for_budget, CostPolicy, PolicyHandle};
use crate::engine::Engine;
use crate::net::{DistributedConfig, DistributedSession};
use crate::output::{RunOutput, WindowResult};
use crate::pipelined::{PipelinedConfig, PipelinedEngine, PipelinedSystem};
use crate::query::Query;
use crate::sharded::{ShardedConfig, ShardedEngine};
use sa_aggregator::Consumer;
use sa_types::{
    CheckpointPolicy, EventTime, IngestCounters, QueryBudget, SaError, SessionSnapshot,
    SessionStatus, StreamItem, WireDecode, WireEncode,
};

/// Deferred engine construction: each builder method captures its config
/// in a factory closure so that trait bounds stay per-engine — the
/// batched engine needs `R: Clone` for dataset formation, the pipelined
/// engine only `Send + Sync + 'static` for its threads, the aggregated
/// path nothing at all — instead of `start()` demanding their union. The
/// third argument is the record codec when the builder was made
/// checkpointable, threaded through to engines that snapshot.
type BuildFn<'p, R> =
    dyn FnOnce(Query<R>, PolicyHandle<'p>, Option<RecordCodec<R>>) -> Box<dyn Engine<R> + 'p> + 'p;

struct EngineFactory<'p, R> {
    name: &'static str,
    build: Box<BuildFn<'p, R>>,
}

fn aggregated_factory<'p, R: 'p>(config: AggregatedConfig) -> EngineFactory<'p, R> {
    EngineFactory {
        name: "aggregated",
        build: Box::new(move |query, policy, codec| {
            Box::new(AggregatedEngine::new(config, query, policy, codec))
        }),
    }
}

/// Builder for an incremental StreamApprox session: what to compute (a
/// [`Query`]), under which cost policy or budget, on which engine.
///
/// The default engine is the aggregated consumer path — the lightest
/// substrate, right for in-process consumer loops. Pick the batched or
/// pipelined engine to run the paper's Spark/Flink-style substrates (and
/// their baseline systems).
///
/// # Example
///
/// ```
/// use streamapprox::{Query, StreamApprox};
/// use sa_types::{EventTime, QueryBudget, StratumId, StreamItem, WindowSpec};
///
/// let query = Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000));
/// let mut session = StreamApprox::with_budget(query, QueryBudget::SampleFraction(0.4))
///     .expect("valid budget")
///     .start();
/// for i in 0..5_000i64 {
///     let item = StreamItem::new(StratumId(0), EventTime::from_millis(i), f64::from(i as u32 % 10));
///     session.push(item).expect("in-order push");
/// }
/// // Windows are observable while the stream is still open...
/// assert!(!session.poll_windows().is_empty());
/// // ...and finish() flushes the rest.
/// let out = session.finish();
/// assert!(out.items_aggregated < out.items_ingested);
/// ```
pub struct StreamApprox<'p, R> {
    query: Query<R>,
    policy: PolicyHandle<'p>,
    factory: EngineFactory<'p, R>,
    codec: Option<RecordCodec<R>>,
    checkpoint_policy: CheckpointPolicy,
}

impl<'p, R: 'p> StreamApprox<'p, R> {
    /// A builder executing `query` under `policy` — any
    /// [`crate::CostPolicy`] by `&mut` (the caller keeps the policy and
    /// observes the state feedback leaves behind) or an owned
    /// `Box<dyn CostPolicy>`.
    pub fn new(query: Query<R>, policy: impl Into<PolicyHandle<'p>>) -> Self {
        StreamApprox {
            query,
            policy: policy.into(),
            factory: aggregated_factory(AggregatedConfig::new()),
            codec: None,
            checkpoint_policy: CheckpointPolicy::default(),
        }
    }

    /// A builder owning the policy a [`QueryBudget`] implies; the query's
    /// confidence is aligned with the budget's (accuracy budgets carry
    /// their own confidence level).
    ///
    /// # Errors
    ///
    /// Returns the budget's validation error if its parameters are out of
    /// range.
    pub fn with_budget(
        query: Query<R>,
        budget: QueryBudget,
    ) -> Result<StreamApprox<'static, R>, SaError>
    where
        R: 'static,
    {
        let confidence = confidence_for_budget(budget);
        let policy = policy_for_budget(budget)?;
        Ok(StreamApprox {
            query: query.with_confidence(confidence),
            policy: policy.into(),
            factory: aggregated_factory(AggregatedConfig::new()),
            codec: None,
            checkpoint_policy: CheckpointPolicy::default(),
        })
    }

    /// Enables checkpointing: the engine built by [`start`] carries a
    /// record codec so [`ApproxSession::checkpoint`] can serialize its
    /// reservoirs, and [`resume`](StreamApprox::resume) can rebuild them.
    /// Requires the record type to speak the workspace wire codec.
    ///
    /// [`start`]: StreamApprox::start
    #[must_use]
    pub fn checkpointable(mut self) -> Self
    where
        R: WireEncode + WireDecode,
    {
        self.codec = Some(RecordCodec::new());
        self
    }

    /// Sets when [`ApproxSession::checkpoint_due`] reports a checkpoint
    /// as due (default: at every pane close, no item budget).
    #[must_use]
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint_policy = policy;
        self
    }

    /// Runs the session on the batched (Spark-Streaming-style) engine.
    /// The system to run (StreamApprox or a baseline) is part of
    /// [`BatchedConfig`]; see [`BatchedConfig::with_system`].
    #[must_use]
    pub fn batched(mut self, config: BatchedConfig) -> Self
    where
        R: Send + Sync + Clone + 'static,
    {
        self.factory = EngineFactory {
            name: "batched",
            build: Box::new(move |query, policy, codec| {
                Box::new(BatchedEngine::new(config, query, policy, codec))
            }),
        };
        self
    }

    /// Runs the session on the batched engine with an explicit system.
    #[deprecated(
        since = "0.1.0",
        note = "fold the system into the config: `batched(config.with_system(system))`"
    )]
    #[must_use]
    pub fn batched_with_system(self, config: BatchedConfig, system: BatchedSystem) -> Self
    where
        R: Send + Sync + Clone + 'static,
    {
        self.batched(config.with_system(system))
    }

    /// Runs the session on the pipelined (Flink-style) engine. The system
    /// to run is part of [`PipelinedConfig`]; see
    /// [`PipelinedConfig::with_system`].
    #[must_use]
    pub fn pipelined(mut self, config: PipelinedConfig) -> Self
    where
        R: Send + Sync + 'static,
    {
        self.factory = EngineFactory {
            name: "pipelined",
            build: Box::new(move |query, mut policy, _codec| {
                // The pipelined engine consults the policy once at
                // startup (§4.2.2 adaptivity lives in OASRS itself), so
                // the engine does not carry the policy borrow. Its state
                // lives in operator threads, so it ignores the codec and
                // does not snapshot.
                Box::new(PipelinedEngine::new(
                    &config,
                    config.system,
                    &query,
                    &mut policy,
                ))
            }),
        };
        self
    }

    /// Runs the session on the pipelined engine with an explicit system.
    #[deprecated(
        since = "0.1.0",
        note = "fold the system into the config: `pipelined(config.with_system(system))`"
    )]
    #[must_use]
    pub fn pipelined_with_system(self, config: PipelinedConfig, system: PipelinedSystem) -> Self
    where
        R: Send + Sync + 'static,
    {
        self.pipelined(config.with_system(system))
    }

    /// Runs the session on the sharded data-parallel engine: items are
    /// hash-partitioned across `config.shards` worker threads, each
    /// sampling its sub-stream with full-capacity OASRS, and the
    /// shard-local samples are merged by the mergeable-sampler layer at
    /// every interval close (see [`crate::ShardedConfig`]).
    #[must_use]
    pub fn sharded(mut self, config: ShardedConfig) -> Self
    where
        R: Send + Sync + 'static,
    {
        self.factory = EngineFactory {
            name: "sharded",
            build: Box::new(move |query, policy, codec| {
                Box::new(ShardedEngine::new(config, query, policy, codec))
            }),
        };
        self
    }

    /// Runs the session on the aggregated consumer path (the default).
    #[must_use]
    pub fn aggregated(mut self, config: AggregatedConfig) -> Self {
        self.factory = aggregated_factory(config);
        self
    }

    /// Starts the *distributed* coordinator for this query instead of a
    /// local session: binds a TCP listener, waits for `config.workers`
    /// worker processes to join (via [`crate::connect_worker`]), and
    /// merges their per-pane sampler digests through the same
    /// mergeable-sampler path the sharded engine uses in-process.
    ///
    /// The cost policy is consulted once at startup: the directive is
    /// part of every worker's assignment, so it is fixed for the run
    /// (per-interval adaptation still happens *inside* OASRS under a
    /// fraction directive, worker-locally).
    ///
    /// # Errors
    ///
    /// [`SaError::InvalidConfig`] when the configuration is unusable
    /// (zero workers, unbindable address, invalid directive).
    pub fn distributed(mut self, config: DistributedConfig) -> Result<DistributedSession, SaError> {
        let directive = self.policy.interval_sizing();
        DistributedSession::start(
            self.query.window(),
            self.query.confidence(),
            directive,
            config,
        )
    }

    /// Starts the session: builds the chosen engine (threaded engines
    /// start executing immediately) and returns the push/poll handle.
    pub fn start(self) -> ApproxSession<'p, R> {
        let StreamApprox {
            query,
            policy,
            factory,
            codec,
            checkpoint_policy,
        } = self;
        let mut session = ApproxSession::from_engine((factory.build)(query, policy, codec));
        session.checkpoint_policy = checkpoint_policy;
        session
    }

    /// Builds the chosen engine and restores it from a
    /// [`SessionSnapshot`], resuming the session where the checkpoint
    /// left off: engine state, watermark, counters, and the consumer
    /// replay offsets (the next
    /// [`ingest_consumer`](ApproxSession::ingest_consumer) seeks them
    /// before polling, so the already-counted log prefix is never
    /// double-counted).
    ///
    /// The builder must be configured exactly like the one that took the
    /// checkpoint — same engine, config, budget, and
    /// [`checkpointable`](StreamApprox::checkpointable) — since only the
    /// engine named in the snapshot can decode its state.
    ///
    /// # Errors
    ///
    /// [`SaError::Checkpoint`] when the snapshot names a different engine
    /// or the builder is not checkpointable; [`SaError::Wire`] on corrupt
    /// snapshot state.
    pub fn resume(self, snapshot: &SessionSnapshot) -> Result<ApproxSession<'p, R>, SaError> {
        let StreamApprox {
            query,
            policy,
            factory,
            codec,
            checkpoint_policy,
        } = self;
        let engine = (factory.build)(query, policy, codec);
        let mut session = ApproxSession::resume_from_engine(engine, snapshot)?;
        session.checkpoint_policy = checkpoint_policy;
        Ok(session)
    }
}

impl<R> std::fmt::Debug for StreamApprox<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamApprox")
            .field("query", &self.query)
            .field("policy", &self.policy)
            .field("engine", &self.factory.name)
            .finish()
    }
}

/// A running incremental session over one [`Engine`].
///
/// The session is the ordering gatekeeper: items must arrive in
/// non-decreasing event-time order (merge out-of-order sources with
/// `sa_aggregator::merge_by_time` first), and every accepted item advances
/// the [`watermark`](ApproxSession::watermark). Engines behind the session
/// trust that ordering.
///
/// Dropping a session without [`finish`](ApproxSession::finish) discards
/// windows still open; threaded engines shut their topology down cleanly
/// either way.
pub struct ApproxSession<'p, R> {
    engine: Box<dyn Engine<R> + 'p>,
    watermark: Option<EventTime>,
    ingest: IngestCounters,
    completed: u64,
    checkpoint_policy: CheckpointPolicy,
    last_checkpoint_pane: Option<i64>,
    /// The engine's `panes_closed()` reading at the last checkpoint — the
    /// cadence baseline `checkpoint_due` measures against.
    panes_at_checkpoint: u64,
    items_since_checkpoint: u64,
    snapshot_bytes: u64,
    /// The log consumer's replay offsets: captured after every
    /// `ingest_consumer` poll so a checkpoint records exactly where the
    /// counted prefix ends.
    replay: Vec<(usize, u64)>,
    /// Set on resume: the next `ingest_consumer` must seek `replay`
    /// before polling.
    needs_seek: bool,
}

impl<'p, R> ApproxSession<'p, R> {
    /// Wraps a custom engine in the session API — the extension point for
    /// substrates this crate does not ship (sharded engines, remote
    /// runners).
    pub fn from_engine(engine: Box<dyn Engine<R> + 'p>) -> Self {
        ApproxSession {
            engine,
            watermark: None,
            ingest: IngestCounters::default(),
            completed: 0,
            checkpoint_policy: CheckpointPolicy::default(),
            last_checkpoint_pane: None,
            panes_at_checkpoint: 0,
            items_since_checkpoint: 0,
            snapshot_bytes: 0,
            replay: Vec::new(),
            needs_seek: false,
        }
    }

    /// Restores a custom engine from a [`SessionSnapshot`] and wraps it in
    /// a resumed session — [`from_engine`](ApproxSession::from_engine)'s
    /// counterpart to [`StreamApprox::resume`], for engines built outside
    /// the builder (a rejoining distributed worker adopting a dead shard's
    /// snapshot via [`crate::rejoin_worker`], a remote runner). The engine
    /// must be freshly built with the same configuration that produced the
    /// snapshot; session bookkeeping — watermark, counters, consumer
    /// replay offsets — resumes from the snapshot, and the next
    /// [`ingest_consumer`](ApproxSession::ingest_consumer) seeks the
    /// replay offsets so the counted log prefix is never double-counted.
    ///
    /// # Errors
    ///
    /// [`SaError::Checkpoint`] when the snapshot names a different engine
    /// or the engine cannot restore; [`SaError::Wire`] on corrupt state.
    pub fn resume_from_engine(
        mut engine: Box<dyn Engine<R> + 'p>,
        snapshot: &SessionSnapshot,
    ) -> Result<Self, SaError> {
        engine.restore(&snapshot.engine)?;
        let sealed = seal_session_snapshot(snapshot)?;
        engine.note_checkpoint(snapshot.engine.pane, sealed.len() as u64);
        let panes_at_checkpoint = engine.panes_closed();
        Ok(ApproxSession {
            engine,
            watermark: snapshot.watermark,
            ingest: snapshot.ingest,
            completed: snapshot.windows_completed,
            checkpoint_policy: CheckpointPolicy::default(),
            last_checkpoint_pane: snapshot.engine.pane,
            panes_at_checkpoint,
            items_since_checkpoint: 0,
            snapshot_bytes: sealed.len() as u64,
            replay: snapshot.replay.clone(),
            needs_seek: !snapshot.replay.is_empty(),
        })
    }

    /// Ingests one item.
    ///
    /// # Errors
    ///
    /// [`SaError::OutOfOrder`] if the item's event time is behind the
    /// session watermark (the item is not ingested and counts as dropped
    /// late data in the session's [`IngestCounters`]; the session remains
    /// usable), or [`SaError::Disconnected`] if the engine has shut down.
    pub fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError> {
        if let Some(watermark) = self.watermark {
            if item.time < watermark {
                self.ingest.dropped_late += 1;
                return Err(SaError::OutOfOrder {
                    item: item.time,
                    watermark,
                });
            }
        }
        let time = item.time;
        self.engine.push(item)?;
        self.watermark = Some(time);
        self.ingest.ingested += 1;
        self.items_since_checkpoint += 1;
        Ok(())
    }

    /// Ingests a batch of items through the engines' batch fast path,
    /// returning the call's [`IngestCounters`] delta.
    ///
    /// Late items (behind the running watermark) are **dropped and
    /// counted**, not an error — the same drop-late-and-continue
    /// accounting as [`ingest_consumer`](ApproxSession::ingest_consumer),
    /// so one straggler no longer aborts the rest of the batch. The kept
    /// subsequence is validated as one monotone run and forwarded to
    /// [`Engine::push_chunk`] whole, so watermark checks and pane-cursor
    /// work run per run instead of per item.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] if the engine has shut down; items
    /// before the failure point may have been ingested, and the delta for
    /// the batch is lost with the run.
    pub fn push_batch(
        &mut self,
        items: impl IntoIterator<Item = StreamItem<R>>,
    ) -> Result<IngestCounters, SaError> {
        let mut items: Vec<StreamItem<R>> = items.into_iter().collect();
        let mut delta = IngestCounters::default();
        // Keep the running-max subsequence — exactly the items a per-item
        // push loop would have accepted, since the watermark advances only
        // on accepted items.
        let mut watermark = self.watermark;
        items.retain(|item| {
            let keep = watermark.map_or(true, |w| item.time >= w);
            if keep {
                watermark = Some(item.time);
            } else {
                delta.dropped_late += 1;
            }
            keep
        });
        self.ingest.dropped_late += delta.dropped_late;
        if items.is_empty() {
            return Ok(delta);
        }
        delta.ingested = items.len() as u64;
        let last = items.last().expect("non-empty batch").time;
        self.engine.push_chunk(items)?;
        self.watermark = Some(last);
        self.ingest.ingested += delta.ingested;
        self.items_since_checkpoint += delta.ingested;
        Ok(delta)
    }

    /// Polls an aggregator consumer once and ingests what it returns —
    /// the paper's deployment loop (aggregator → consumer → engine) in one
    /// call. Returns the call's [`IngestCounters`] delta (the same
    /// accounting [`status`](ApproxSession::status) accumulates run-wide);
    /// both counters are `0` when the consumer is caught up (see
    /// `Consumer::is_caught_up` for distinguishing idle from finished).
    ///
    /// Polling has already advanced the consumer's offsets, so items it
    /// returns cannot be retried: ones behind the session watermark are
    /// **dropped as late data** — standard streaming semantics — and
    /// counted in [`IngestCounters::dropped_late`] rather than aborting
    /// the batch. A topic whose delivery order respects event time (a
    /// single-partition topic — the paper's aggregator combines
    /// sub-streams into *one* input stream, §2.1 — or one session per
    /// partition) never drops anything.
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] if the engine has shut down; items
    /// polled but not yet pushed are lost with it (the run is over).
    pub fn ingest_consumer(
        &mut self,
        consumer: &mut Consumer<R>,
        max_messages: usize,
    ) -> Result<IngestCounters, SaError>
    where
        R: Clone,
    {
        // A resumed session replays the log from its snapshot's offsets:
        // the already-counted prefix is skipped at the log, not dropped
        // as late data.
        if self.needs_seek {
            consumer.seek(&self.replay)?;
            self.needs_seek = false;
        }
        // Same drop-late accounting as push_batch, and the polled batch
        // rides the engines' chunk fast path.
        let delta = self.push_batch(consumer.poll_items(max_messages))?;
        // Remember where the counted prefix ends, so a checkpoint taken
        // now records exactly this poll boundary.
        self.replay = consumer.offsets();
        Ok(delta)
    }

    /// Takes the windows completed since the last poll, in watermark
    /// order, without blocking on future input. On threaded engines a
    /// window may surface a moment after the pushes that completed it; on
    /// single-threaded engines it surfaces on the boundary-crossing push
    /// itself.
    pub fn poll_windows(&mut self) -> Vec<WindowResult> {
        let windows = self.engine.poll_windows();
        self.completed += windows.len() as u64;
        windows
    }

    /// The event-time high-water mark of accepted input: the time of the
    /// latest pushed item, `None` before the first. Items behind it are
    /// rejected as out of order.
    pub fn watermark(&self) -> Option<EventTime> {
        self.watermark
    }

    /// Settles any in-flight interval barrier, so the next
    /// [`status`](ApproxSession::status) reports shard counters no staler
    /// than the last closed pane. A no-op on engines without deferred
    /// barriers (everything but the sharded engine).
    ///
    /// # Errors
    ///
    /// [`SaError::Disconnected`] if the engine has shut down.
    pub fn settle(&mut self) -> Result<(), SaError> {
        self.engine.settle()
    }

    /// A snapshot of the session's progress counters: pushes, polls,
    /// watermark, the unified [`IngestCounters`] across every ingestion
    /// path, checkpoint exposure, and — on data-parallel engines —
    /// per-shard sampler counters.
    ///
    /// Read-only: on the sharded engine the shard counters are as of the
    /// last settled interval barrier — call
    /// [`settle`](ApproxSession::settle) first when freshness matters.
    pub fn status(&self) -> SessionStatus {
        SessionStatus {
            items_pushed: self.ingest.ingested,
            windows_completed: self.completed,
            watermark: self.watermark,
            ingest: self.ingest,
            shards: self.engine.shard_ingest(),
            workers: self.engine.worker_status(),
            last_checkpoint_pane: self.last_checkpoint_pane,
            items_since_checkpoint: self.items_since_checkpoint,
            snapshot_bytes: self.snapshot_bytes,
            degraded_panes: 0,
            lost_items: 0,
        }
    }

    /// Whether the session's [`CheckpointPolicy`] says a checkpoint is
    /// due — enough panes closed, or enough items accepted, since the
    /// last one.
    pub fn checkpoint_due(&self) -> bool {
        let panes_since = self
            .engine
            .panes_closed()
            .saturating_sub(self.panes_at_checkpoint);
        self.checkpoint_policy.due(
            panes_since.min(u64::from(u32::MAX)) as u32,
            self.items_since_checkpoint,
        )
    }

    /// Takes a checkpoint: settles the engine, snapshots its mergeable
    /// state (O(sampling budget), not O(stream)), and wraps it with the
    /// session's watermark, counters, and log replay offsets. The
    /// session keeps running; feed the snapshot to
    /// [`StreamApprox::resume`] (usually via a
    /// [`CheckpointStore`]) after a crash.
    ///
    /// A checkpoint taken at a pane boundary restores bit-identically; one
    /// taken mid-pane restores the engine exactly as of the items pushed
    /// so far, so replaying the rest of the stream stays within the
    /// estimator's confidence bounds of an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`SaError::Checkpoint`] when the engine cannot snapshot (built
    /// without [`StreamApprox::checkpointable`], or a substrate that does
    /// not support snapshots); [`SaError::Disconnected`] if the engine has
    /// shut down.
    pub fn checkpoint(&mut self) -> Result<SessionSnapshot, SaError> {
        self.engine.settle()?;
        let engine_snapshot = self.engine.snapshot()?;
        let snapshot = SessionSnapshot {
            engine: engine_snapshot,
            watermark: self.watermark,
            ingest: self.ingest,
            items_pushed: self.ingest.ingested,
            windows_completed: self.completed,
            replay: self.replay.clone(),
        };
        let sealed = seal_session_snapshot(&snapshot)?;
        self.snapshot_bytes = sealed.len() as u64;
        self.last_checkpoint_pane = snapshot.engine.pane;
        self.panes_at_checkpoint = self.engine.panes_closed();
        self.items_since_checkpoint = 0;
        self.engine
            .note_checkpoint(snapshot.engine.pane, self.snapshot_bytes);
        // Substrates with a remote coordinator ship the sealed slice
        // upstream so a replacement worker can adopt this shard's state.
        self.engine.publish_checkpoint(&sealed);
        Ok(snapshot)
    }

    /// Takes a checkpoint and persists its sealed frame to `store`,
    /// returning the sealed size in bytes. Load it back with
    /// [`CheckpointStore::load`] +
    /// [`crate::open_session_snapshot`] + [`StreamApprox::resume`].
    ///
    /// # Errors
    ///
    /// Everything [`checkpoint`](ApproxSession::checkpoint) can return,
    /// plus the store's I/O errors.
    pub fn checkpoint_to(&mut self, store: &mut dyn CheckpointStore) -> Result<u64, SaError> {
        let snapshot = self.checkpoint()?;
        let sealed = seal_session_snapshot(&snapshot)?;
        store.save(&sealed)?;
        Ok(sealed.len() as u64)
    }

    /// Ends the stream: flushes every still-open window and returns the
    /// completed run. The output's `windows` are those not already taken
    /// via [`poll_windows`](ApproxSession::poll_windows) — a session that
    /// never polled gets the full set, exactly like the one-shot entry
    /// points — and the item counters always cover the whole run.
    #[must_use = "finish returns the run's windows and metrics"]
    pub fn finish(self) -> RunOutput {
        self.engine.finish()
    }
}

impl<R> std::fmt::Debug for ApproxSession<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApproxSession")
            .field("watermark", &self.watermark)
            .field("ingest", &self.ingest)
            .field("windows_completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FixedFraction;
    use sa_types::{StratumId, WindowSpec};

    fn item(ms: i64, v: f64) -> StreamItem<f64> {
        StreamItem::new(StratumId(0), EventTime::from_millis(ms), v)
    }

    fn query() -> Query<f64> {
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
    }

    #[test]
    fn out_of_order_push_is_rejected_and_session_survives() {
        let mut policy = FixedFraction(1.0);
        let mut session = StreamApprox::new(query(), &mut policy).start();
        session.push(item(500, 1.0)).expect("in order");
        let err = session.push(item(100, 2.0)).unwrap_err();
        assert!(matches!(err, SaError::OutOfOrder { .. }));
        // The session keeps working after a rejected item.
        session
            .push(item(500, 3.0))
            .expect("equal time is in order");
        session.push(item(1_500, 4.0)).expect("in order");
        let out = session.finish();
        assert_eq!(out.items_ingested, 3);
    }

    #[test]
    fn status_tracks_pushes_polls_and_watermark() {
        let mut policy = FixedFraction(1.0);
        let mut session = StreamApprox::new(query(), &mut policy).start();
        assert_eq!(
            session.status(),
            SessionStatus {
                items_pushed: 0,
                windows_completed: 0,
                watermark: None,
                ingest: IngestCounters::default(),
                shards: Vec::new(),
                workers: Vec::new(),
                last_checkpoint_pane: None,
                items_since_checkpoint: 0,
                snapshot_bytes: 0,
                degraded_panes: 0,
                lost_items: 0,
            }
        );
        for ms in [0, 400, 1_200, 2_600] {
            session.push(item(ms, 1.0)).expect("in order");
        }
        let polled = session.poll_windows();
        let status = session.status();
        assert_eq!(status.items_pushed, 4);
        assert_eq!(status.windows_completed, polled.len() as u64);
        assert_eq!(status.watermark, Some(EventTime::from_millis(2_600)));
        assert!(
            !polled.is_empty(),
            "watermark 2.6s closed the [0,1s) window"
        );
    }

    #[test]
    fn late_pushes_count_as_dropped_in_the_unified_ingest() {
        let mut policy = FixedFraction(1.0);
        let mut session = StreamApprox::new(query(), &mut policy).start();
        session.push(item(900, 1.0)).expect("in order");
        assert!(session.push(item(100, 2.0)).is_err());
        assert!(session.push(item(200, 3.0)).is_err());
        let status = session.status();
        assert_eq!(
            status.ingest,
            IngestCounters {
                ingested: 1,
                dropped_late: 2,
            }
        );
        assert_eq!(status.ingest.offered(), 3);
        // Single-worker engines report no shard counters.
        assert!(status.shards.is_empty());
        let _ = session.finish();
    }

    #[test]
    fn budget_builder_sets_confidence_and_owns_policy() {
        let budget = QueryBudget::Accuracy {
            max_relative_error: 0.05,
            confidence: sa_types::Confidence::P997,
        };
        let mut session = StreamApprox::with_budget(query(), budget)
            .expect("valid budget")
            .start();
        for ms in 0..2_000 {
            session
                .push(item(ms, f64::from(ms as u32 % 7)))
                .expect("in order");
        }
        let out = session.finish();
        assert!(!out.windows.is_empty());
        assert_eq!(
            out.windows[0].mean.bound.confidence(),
            sa_types::Confidence::P997
        );
        assert!(StreamApprox::with_budget(query(), QueryBudget::SampleFraction(0.0)).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_system_shims_match_the_config_route() {
        use crate::batched::BatchedSystem;
        use sa_batched::Cluster;
        let items: Vec<StreamItem<f64>> = (0..2_000)
            .map(|ms| item(ms, f64::from(ms as u32 % 7)))
            .collect();
        let mut policy = FixedFraction(0.5);
        let mut shim = StreamApprox::new(query(), &mut policy)
            .batched_with_system(
                BatchedConfig::new(Cluster::new(2)),
                BatchedSystem::StreamApprox,
            )
            .start();
        shim.push_batch(items.clone()).expect("in order");
        let shim_out = shim.finish();
        let mut policy = FixedFraction(0.5);
        let mut direct = StreamApprox::new(query(), &mut policy)
            .batched(BatchedConfig::new(Cluster::new(2)).with_system(BatchedSystem::StreamApprox))
            .start();
        direct.push_batch(items).expect("in order");
        let direct_out = direct.finish();
        assert_eq!(shim_out.windows, direct_out.windows);
    }

    #[test]
    fn invalid_engine_is_a_session_not_a_panic() {
        // from_engine accepts any Engine implementation.
        struct Null;
        impl Engine<f64> for Null {
            fn push(&mut self, _: StreamItem<f64>) -> Result<(), SaError> {
                Err(SaError::Disconnected("null engine"))
            }
            fn poll_windows(&mut self) -> Vec<WindowResult> {
                Vec::new()
            }
            fn finish(self: Box<Self>) -> RunOutput {
                RunOutput {
                    windows: Vec::new(),
                    items_ingested: 0,
                    items_aggregated: 0,
                    elapsed: std::time::Duration::ZERO,
                }
            }
        }
        let mut session = ApproxSession::from_engine(Box::new(Null));
        let err = session.push(item(0, 1.0)).unwrap_err();
        assert!(matches!(err, SaError::Disconnected(_)));
        // A rejected push must not advance the watermark.
        assert_eq!(session.watermark(), None);
        assert_eq!(session.status().items_pushed, 0);
    }
}
