//! Run outputs: per-window approximate answers plus run-level metrics.

use sa_types::{ApproxResult, StratumId, Window};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Every aggregate the evaluation queries, for one completed sliding
/// window, each in the paper's `output ± error bound` form (§3.1).
///
/// All four aggregates are computed for every window — they share the same
/// per-stratum sufficient statistics, so the extra cost is a handful of
/// float operations per stratum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowResult {
    /// The completed window.
    pub window: Window,
    /// Approximate sum of all item values in the window (Equations 2–3).
    pub sum: ApproxResult,
    /// Approximate mean of all item values (Equation 4).
    pub mean: ApproxResult,
    /// Per-sub-stream sums — the network-monitoring query (§6.2).
    pub sum_by_stratum: Vec<(StratumId, ApproxResult)>,
    /// Per-sub-stream means — the taxi query (§6.3).
    pub mean_by_stratum: Vec<(StratumId, ApproxResult)>,
    /// `true` if any pane of this window merged without a dead or
    /// straggling shard's digest. The estimates above already account for
    /// the loss: populations were inflated by the estimated shortfall, so
    /// the error bounds are *wider* than a healthy window's, never
    /// silently narrower.
    #[serde(default)]
    pub degraded: bool,
    /// Estimated items lost to missing shards across this window's panes
    /// (0 for healthy windows).
    #[serde(default)]
    pub lost_items: u64,
}

impl WindowResult {
    /// Looks up one stratum's sum estimate.
    pub fn stratum_sum(&self, id: StratumId) -> Option<&ApproxResult> {
        self.sum_by_stratum
            .iter()
            .find(|(s, _)| *s == id)
            .map(|(_, r)| r)
    }

    /// Looks up one stratum's mean estimate.
    pub fn stratum_mean(&self, id: StratumId) -> Option<&ApproxResult> {
        self.mean_by_stratum
            .iter()
            .find(|(s, _)| *s == id)
            .map(|(_, r)| r)
    }
}

/// The result of driving one system over one recorded stream: completed
/// windows plus the throughput/latency bookkeeping the evaluation plots.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Completed windows in event-time order.
    pub windows: Vec<WindowResult>,
    /// Items that entered the system.
    pub items_ingested: u64,
    /// Items that were actually aggregated (sampled); equals
    /// `items_ingested` for native execution.
    pub items_aggregated: u64,
    /// Wall-clock time for the whole run — the paper's latency metric
    /// ("total time required for processing the respective dataset", §6.1).
    pub elapsed: Duration,
}

impl RunOutput {
    /// The paper's throughput metric: items processed per second of wall
    /// time (§6.1).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.items_ingested as f64 / secs
        }
    }

    /// Fraction of ingested items that were aggregated.
    pub fn effective_fraction(&self) -> f64 {
        if self.items_ingested == 0 {
            1.0
        } else {
            self.items_aggregated as f64 / self.items_ingested as f64
        }
    }

    /// Finds the result for the window starting at the given time.
    pub fn window_at(&self, window: Window) -> Option<&WindowResult> {
        self.windows.iter().find(|w| w.window == window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::{ApproxResult, Confidence, ErrorBound, EventTime};

    fn result(v: f64) -> ApproxResult {
        ApproxResult::new(v, ErrorBound::new(1.0, Confidence::P95), 1, 2)
    }

    fn window(s: i64) -> Window {
        Window::new(EventTime::from_secs(s), EventTime::from_secs(s + 10))
    }

    fn window_result(s: i64) -> WindowResult {
        WindowResult {
            window: window(s),
            sum: result(10.0),
            mean: result(5.0),
            sum_by_stratum: vec![(StratumId(0), result(4.0)), (StratumId(1), result(6.0))],
            mean_by_stratum: vec![(StratumId(0), result(2.0))],
            degraded: false,
            lost_items: 0,
        }
    }

    #[test]
    fn stratum_lookup() {
        let w = window_result(0);
        assert_eq!(w.stratum_sum(StratumId(1)).unwrap().value, 6.0);
        assert!(w.stratum_sum(StratumId(9)).is_none());
        assert_eq!(w.stratum_mean(StratumId(0)).unwrap().value, 2.0);
        assert!(w.stratum_mean(StratumId(1)).is_none());
    }

    #[test]
    fn throughput_and_fraction() {
        let out = RunOutput {
            windows: vec![window_result(0)],
            items_ingested: 10_000,
            items_aggregated: 6_000,
            elapsed: Duration::from_secs(2),
        };
        assert!((out.throughput() - 5_000.0).abs() < 1e-9);
        assert!((out.effective_fraction() - 0.6).abs() < 1e-12);
        assert!(out.window_at(window(0)).is_some());
        assert!(out.window_at(window(5)).is_none());
    }

    #[test]
    fn empty_run_degrades_gracefully() {
        let out = RunOutput {
            windows: vec![],
            items_ingested: 0,
            items_aggregated: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(out.throughput(), 0.0);
        assert_eq!(out.effective_fraction(), 1.0);
    }
}
