//! The pipelined (Flink-style) runners: StreamApprox and native execution
//! on the `sa-pipelined` engine.
//!
//! Topology: `source → sampling/stats stage (w instances, rebalanced) →
//! window estimator (1 instance) → sink`. The sampling operator implements
//! §4.2.2: it samples "on-the-fly and in an adaptive manner", closing one
//! OASRS interval per *slide interval* (§5.5) and shipping per-stratum
//! statistics — not items — downstream. Vanilla Flink has no sampling
//! operator (§4.1.2), so the only baseline here is native execution, as in
//! the paper.
//!
//! This module is a thin adapter: it expresses only the engine-specific
//! parts (operator pipeline, exchanges, watermark alignment). The interval
//! state lives in the shared [`crate::runtime::IntervalWorker`] (one per
//! operator instance) and window assembly in the shared
//! [`crate::runtime::WindowFinalizer`].

use crate::combine::PanePayload;
use crate::cost::CostPolicy;
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::runtime::{sampler_sizing, IntervalWorker, WindowFinalizer};
use sa_estimate::StratumStats;
use sa_pipelined::{Exchange, Flow, Operator};
use sa_types::{EventTime, RunSeed, StratumId, StreamItem, Window};
use std::time::Instant;

/// Which pipelined system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelinedSystem {
    /// Flink-based StreamApprox: an OASRS sampling operator in the
    /// pipeline.
    StreamApprox,
    /// Native Flink execution without sampling.
    Native,
}

impl std::fmt::Display for PipelinedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelinedSystem::StreamApprox => write!(f, "Flink-based StreamApprox"),
            PipelinedSystem::Native => write!(f, "Native Flink"),
        }
    }
}

/// Configuration of the pipelined engine for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinedConfig {
    /// Parallel instances of the sampling/stats stage.
    pub sample_workers: usize,
    /// Seed for sampling decisions.
    pub seed: RunSeed,
    /// How often the source advances the watermark (event-time ms).
    pub watermark_interval_ms: i64,
}

impl PipelinedConfig {
    /// A default sized for small machines: 2 sampling workers, 100 ms
    /// watermarks.
    pub fn new() -> Self {
        PipelinedConfig {
            sample_workers: 2,
            seed: RunSeed::DEFAULT,
            watermark_interval_ms: 100,
        }
    }

    /// Sets the number of sampling workers.
    #[must_use]
    pub fn with_sample_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one sampling worker");
        self.sample_workers = workers;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: impl Into<RunSeed>) -> Self {
        self.seed = seed.into();
        self
    }
}

impl Default for PipelinedConfig {
    fn default() -> Self {
        PipelinedConfig::new()
    }
}

/// Output of the sampling/stats stage.
#[derive(Debug, Clone)]
enum StageOut {
    /// One pane's per-stratum statistics from one worker.
    Pane {
        pane: Window,
        stats: Vec<StratumStats>,
    },
    /// End-of-stream counters from one worker.
    Done { ingested: u64, sampled: u64 },
}

/// Output of the window-estimation stage.
#[derive(Debug, Clone)]
enum RunnerOut {
    Window(Box<WindowResult>),
    Done { ingested: u64, sampled: u64 },
}

/// The pane-sampling / pane-stats operator (one instance per worker): an
/// [`IntervalWorker`] plus the engine-specific pane-boundary detection.
///
/// Panes are slide-interval-sized. A pane closes when either an item of a
/// later pane arrives (items are in order within an instance) or the
/// watermark passes its end — the watermark path runs *before* the runtime
/// forwards the watermark downstream, so pane results always precede the
/// watermark that completes their windows.
struct PaneStage<R> {
    worker: IntervalWorker<R>,
    pane_ms: i64,
    current_pane_start: Option<i64>,
}

impl<R: Send + 'static> PaneStage<R> {
    fn flush_pane(&mut self, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        let Some(start) = self.current_pane_start.take() else {
            return;
        };
        let pane = Window::new(
            EventTime::from_millis(start),
            EventTime::from_millis(start + self.pane_ms),
        );
        let stats = self.worker.close_interval();
        out(StreamItem::new(
            StratumId(0),
            pane.end,
            StageOut::Pane { pane, stats },
        ));
    }
}

impl<R: Send + 'static> Operator<R, StageOut> for PaneStage<R> {
    fn on_item(&mut self, item: StreamItem<R>, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        let pane = item.time.as_millis().div_euclid(self.pane_ms) * self.pane_ms;
        match self.current_pane_start {
            None => self.current_pane_start = Some(pane),
            Some(current) if pane > current => {
                self.flush_pane(out);
                self.current_pane_start = Some(pane);
            }
            _ => {}
        }
        self.worker.observe(item.stratum, item.value);
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        if let Some(start) = self.current_pane_start {
            if wm.as_millis() >= start + self.pane_ms {
                self.flush_pane(out);
            }
        }
    }

    fn on_end(&mut self, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        self.flush_pane(out);
        let (ingested, sampled) = self.worker.counters();
        out(StreamItem::new(
            StratumId(0),
            EventTime::MAX,
            StageOut::Done { ingested, sampled },
        ));
    }
}

/// The window-estimation operator: a [`WindowFinalizer`] assembling panes
/// into sliding windows, emitting `output ± error bound` results as the
/// watermark closes them.
struct WindowEstimator {
    finalizer: WindowFinalizer,
    ingested: u64,
    sampled: u64,
}

impl WindowEstimator {
    fn emit_windows(&mut self, out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        for result in self.finalizer.drain_windows() {
            out(StreamItem::new(
                StratumId(0),
                result.window.end,
                RunnerOut::Window(Box::new(result)),
            ));
        }
    }
}

impl Operator<StageOut, RunnerOut> for WindowEstimator {
    fn on_item(&mut self, item: StreamItem<StageOut>, _out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        match item.value {
            StageOut::Pane { pane, stats } => {
                self.finalizer
                    .ingest_interval(pane, PanePayload::Stratified(stats));
            }
            StageOut::Done { ingested, sampled } => {
                self.ingested += ingested;
                self.sampled += sampled;
            }
        }
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        if wm == EventTime::MAX {
            self.finalizer.finish();
        } else {
            self.finalizer.close_interval(wm);
        }
        self.emit_windows(out);
    }

    fn on_end(&mut self, out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        self.finalizer.finish();
        self.emit_windows(out);
        out(StreamItem::new(
            StratumId(0),
            EventTime::MAX,
            RunnerOut::Done {
                ingested: self.ingested,
                sampled: self.sampled,
            },
        ));
    }
}

/// Runs one pipelined system over a recorded stream.
///
/// The cost policy is consulted once at startup for its sizing directive;
/// within the run, OASRS's own per-interval adaptation (capacity follows
/// `fraction × previous arrivals`) provides the adaptivity of §4.2.2.
pub fn run_pipelined<R>(
    config: &PipelinedConfig,
    system: PipelinedSystem,
    query: &Query<R>,
    policy: &mut dyn CostPolicy,
    items: Vec<StreamItem<R>>,
) -> RunOutput
where
    R: Send + Sync + 'static,
{
    let started = Instant::now();
    let pane_ms = query.window().slide_millis();
    let w = config.sample_workers.max(1);
    let proj = query.projection();
    let seed = config.seed;
    let confidence = query.confidence();
    let window_spec = query.window();
    // Estimate pane volume for the fraction policy's first interval.
    let first_pane_guess = items
        .iter()
        .take_while(|i| i.time.as_millis() < pane_ms)
        .count();
    let sizing = if matches!(system, PipelinedSystem::Native) {
        None
    } else {
        sampler_sizing(policy.interval_sizing(), first_pane_guess, w)
    };

    let collected = Flow::source(items, config.watermark_interval_ms)
        .then(w, Exchange::Rebalance, move |i| PaneStage {
            worker: IntervalWorker::for_worker(sizing, seed, i, w, std::sync::Arc::clone(&proj)),
            pane_ms,
            current_pane_start: None,
        })
        .then(1, Exchange::Rebalance, move |_| WindowEstimator {
            finalizer: WindowFinalizer::new(window_spec, confidence),
            ingested: 0,
            sampled: 0,
        })
        .collect();

    let mut windows = Vec::new();
    let mut ingested = 0u64;
    let mut aggregated = 0u64;
    for item in collected {
        match item.value {
            RunnerOut::Window(result) => windows.push(*result),
            RunnerOut::Done {
                ingested: i,
                sampled: s,
            } => {
                ingested += i;
                aggregated += s;
            }
        }
    }
    windows.sort_by_key(|w| (w.window.end, w.window.start));
    RunOutput {
        windows,
        items_ingested: ingested,
        items_aggregated: aggregated,
        elapsed: started.elapsed(),
    }
}
