//! The pipelined (Flink-style) runners: StreamApprox and native execution
//! on the `sa-pipelined` engine.
//!
//! Topology: `source → sampling/stats stage (w instances, rebalanced) →
//! window estimator (1 instance) → sink`. The sampling operator implements
//! §4.2.2: it samples "on-the-fly and in an adaptive manner", closing one
//! OASRS interval per *slide interval* (§5.5) and shipping per-stratum
//! statistics — not items — downstream. Vanilla Flink has no sampling
//! operator (§4.1.2), so the only baseline here is native execution, as in
//! the paper.

use crate::combine::{combine_window, PanePayload};
use crate::cost::{CostPolicy, SizingDirective};
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::windowing::PaneWindower;
use sa_estimate::{StratumStats, Welford};
use sa_pipelined::{Exchange, Flow, Operator};
use sa_sampling::{OasrsSampler, SizingPolicy};
use sa_types::{EventTime, StratumId, StreamItem, Window};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Which pipelined system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelinedSystem {
    /// Flink-based StreamApprox: an OASRS sampling operator in the
    /// pipeline.
    StreamApprox,
    /// Native Flink execution without sampling.
    Native,
}

impl std::fmt::Display for PipelinedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelinedSystem::StreamApprox => write!(f, "Flink-based StreamApprox"),
            PipelinedSystem::Native => write!(f, "Native Flink"),
        }
    }
}

/// Configuration of the pipelined engine for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinedConfig {
    /// Parallel instances of the sampling/stats stage.
    pub sample_workers: usize,
    /// RNG seed for sampling decisions.
    pub seed: u64,
    /// How often the source advances the watermark (event-time ms).
    pub watermark_interval_ms: i64,
}

impl PipelinedConfig {
    /// A default sized for small machines: 2 sampling workers, 100 ms
    /// watermarks.
    pub fn new() -> Self {
        PipelinedConfig {
            sample_workers: 2,
            seed: 0x5A5A,
            watermark_interval_ms: 100,
        }
    }

    /// Sets the number of sampling workers.
    #[must_use]
    pub fn with_sample_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one sampling worker");
        self.sample_workers = workers;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for PipelinedConfig {
    fn default() -> Self {
        PipelinedConfig::new()
    }
}

/// Output of the sampling/stats stage.
#[derive(Debug, Clone)]
enum StageOut {
    /// One pane's per-stratum statistics from one worker.
    Pane {
        pane: Window,
        stats: Vec<StratumStats>,
    },
    /// End-of-stream counters from one worker.
    Done { ingested: u64, sampled: u64 },
}

/// Output of the window-estimation stage.
#[derive(Debug, Clone)]
enum RunnerOut {
    Window(Box<WindowResult>),
    Done { ingested: u64, sampled: u64 },
}

/// The pane-sampling / pane-stats operator (one instance per worker).
///
/// Panes are slide-interval-sized. A pane closes when either an item of a
/// later pane arrives (items are in order within an instance) or the
/// watermark passes its end — the watermark path runs *before* the runtime
/// forwards the watermark downstream, so pane results always precede the
/// watermark that completes their windows.
struct PaneStage<R> {
    kind: PaneKind<R>,
    pane_ms: i64,
    current_pane_start: Option<i64>,
    proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    ingested: u64,
    sampled: u64,
}

enum PaneKind<R> {
    Sampling(OasrsSampler<R>),
    Exact(BTreeMap<StratumId, Welford>),
}

impl<R: Send + 'static> PaneStage<R> {
    fn sampling(
        sizing: SizingPolicy,
        seed: u64,
        worker: usize,
        num_workers: usize,
        pane_ms: i64,
        proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    ) -> Self {
        PaneStage {
            kind: PaneKind::Sampling(OasrsSampler::for_worker(sizing, seed, worker, num_workers)),
            pane_ms,
            current_pane_start: None,
            proj,
            ingested: 0,
            sampled: 0,
        }
    }

    fn exact(pane_ms: i64, proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>) -> Self {
        PaneStage {
            kind: PaneKind::Exact(BTreeMap::new()),
            pane_ms,
            current_pane_start: None,
            proj,
            ingested: 0,
            sampled: 0,
        }
    }

    fn flush_pane(&mut self, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        let Some(start) = self.current_pane_start.take() else {
            return;
        };
        let pane = Window::new(
            EventTime::from_millis(start),
            EventTime::from_millis(start + self.pane_ms),
        );
        let stats: Vec<StratumStats> = match &mut self.kind {
            PaneKind::Sampling(sampler) => {
                let sample = sampler.finish_interval();
                let proj = &self.proj;
                sample
                    .iter()
                    .map(|stratum| StratumStats::from_sample(stratum, |r| proj(r)))
                    .collect()
            }
            PaneKind::Exact(accs) => std::mem::take(accs)
                .into_iter()
                .map(|(stratum, acc)| StratumStats::from_parts(stratum, acc.count(), acc))
                .collect(),
        };
        self.sampled += stats.iter().map(|s| s.sample_size()).sum::<u64>();
        out(StreamItem::new(
            StratumId(0),
            pane.end,
            StageOut::Pane { pane, stats },
        ));
    }
}

impl<R: Send + 'static> Operator<R, StageOut> for PaneStage<R> {
    fn on_item(&mut self, item: StreamItem<R>, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        let pane = item.time.as_millis().div_euclid(self.pane_ms) * self.pane_ms;
        match self.current_pane_start {
            None => self.current_pane_start = Some(pane),
            Some(current) if pane > current => {
                self.flush_pane(out);
                self.current_pane_start = Some(pane);
            }
            _ => {}
        }
        self.ingested += 1;
        match &mut self.kind {
            PaneKind::Sampling(sampler) => sampler.observe(item.stratum, item.value),
            PaneKind::Exact(accs) => {
                let v = (self.proj)(&item.value);
                accs.entry(item.stratum).or_default().push(v);
            }
        }
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        if let Some(start) = self.current_pane_start {
            if wm.as_millis() >= start + self.pane_ms {
                self.flush_pane(out);
            }
        }
    }

    fn on_end(&mut self, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        self.flush_pane(out);
        out(StreamItem::new(
            StratumId(0),
            EventTime::MAX,
            StageOut::Done {
                ingested: self.ingested,
                sampled: self.sampled,
            },
        ));
    }
}

/// The window-estimation operator: assembles panes into sliding windows
/// and emits `output ± error bound` results as the watermark closes them.
struct WindowEstimator {
    windower: PaneWindower<PanePayload>,
    confidence: sa_types::Confidence,
    ingested: u64,
    sampled: u64,
}

impl WindowEstimator {
    fn emit_windows(
        &mut self,
        done: Vec<(Window, Vec<PanePayload>)>,
        out: &mut dyn FnMut(StreamItem<RunnerOut>),
    ) {
        for (window, panes) in done {
            let result = combine_window(window, panes, self.confidence);
            out(StreamItem::new(
                StratumId(0),
                window.end,
                RunnerOut::Window(Box::new(result)),
            ));
        }
    }
}

impl Operator<StageOut, RunnerOut> for WindowEstimator {
    fn on_item(&mut self, item: StreamItem<StageOut>, _out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        match item.value {
            StageOut::Pane { pane, stats } => {
                self.windower.add_pane(pane, PanePayload::Stratified(stats));
            }
            StageOut::Done { ingested, sampled } => {
                self.ingested += ingested;
                self.sampled += sampled;
            }
        }
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        let done = if wm == EventTime::MAX {
            self.windower.finish()
        } else {
            self.windower.advance(wm)
        };
        self.emit_windows(done, out);
    }

    fn on_end(&mut self, out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        let done = self.windower.finish();
        self.emit_windows(done, out);
        out(StreamItem::new(
            StratumId(0),
            EventTime::MAX,
            RunnerOut::Done {
                ingested: self.ingested,
                sampled: self.sampled,
            },
        ));
    }
}

/// Runs one pipelined system over a recorded stream.
///
/// The cost policy is consulted once at startup for its sizing directive;
/// within the run, OASRS's own per-interval adaptation (capacity follows
/// `fraction × previous arrivals`) provides the adaptivity of §4.2.2.
pub fn run_pipelined<R>(
    config: &PipelinedConfig,
    system: PipelinedSystem,
    query: &Query<R>,
    policy: &mut dyn CostPolicy,
    items: Vec<StreamItem<R>>,
) -> RunOutput
where
    R: Send + Sync + 'static,
{
    let started = Instant::now();
    let directive = policy.interval_sizing();
    let pane_ms = query.window().slide_millis();
    let w = config.sample_workers.max(1);
    let proj = query.projection();
    let seed = config.seed;
    let confidence = query.confidence();
    let window_spec = query.window();
    // Estimate pane volume for the fraction policy's first interval.
    let first_pane_guess = items
        .iter()
        .take_while(|i| i.time.as_millis() < pane_ms)
        .count();

    let exact = matches!(system, PipelinedSystem::Native)
        || matches!(directive, SizingDirective::Everything);
    let sizing = if exact {
        None
    } else {
        Some(match directive {
            SizingDirective::Fraction(f) => SizingPolicy::FractionOfPrevious {
                fraction: f,
                initial: ((f * first_pane_guess as f64) as usize / w.max(1) / 4).max(16),
            },
            SizingDirective::PerStratum(n) => SizingPolicy::PerStratum(n),
            SizingDirective::SharedTotal(n) => SizingPolicy::SharedTotal(n),
            SizingDirective::Everything => unreachable!("handled by the exact path"),
        })
    };

    let collected = Flow::source(items, config.watermark_interval_ms)
        .then(w, Exchange::Rebalance, move |i| {
            let proj = Arc::clone(&proj);
            match sizing {
                Some(sizing) => PaneStage::sampling(sizing, seed, i, w, pane_ms, proj),
                None => PaneStage::exact(pane_ms, proj),
            }
        })
        .then(1, Exchange::Rebalance, move |_| WindowEstimator {
            windower: PaneWindower::new(window_spec),
            confidence,
            ingested: 0,
            sampled: 0,
        })
        .collect();

    let mut windows = Vec::new();
    let mut ingested = 0u64;
    let mut aggregated = 0u64;
    for item in collected {
        match item.value {
            RunnerOut::Window(result) => windows.push(*result),
            RunnerOut::Done {
                ingested: i,
                sampled: s,
            } => {
                ingested += i;
                aggregated += s;
            }
        }
    }
    windows.sort_by_key(|w| (w.window.end, w.window.start));
    RunOutput {
        windows,
        items_ingested: ingested,
        items_aggregated: aggregated,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FixedFraction;
    use sa_types::WindowSpec;

    fn stream(per_stratum: &[(u32, usize)], duration_ms: i64) -> Vec<StreamItem<f64>> {
        let parts: Vec<Vec<StreamItem<f64>>> = per_stratum
            .iter()
            .map(|&(s, n)| {
                let spacing = duration_ms as f64 / n as f64;
                (0..n)
                    .map(|i| {
                        StreamItem::new(
                            StratumId(s),
                            EventTime::from_millis((i as f64 * spacing) as i64),
                            f64::from(s) * 100.0 + (i % 10) as f64,
                        )
                    })
                    .collect()
            })
            .collect();
        sa_aggregator::merge_by_time(parts)
    }

    fn query() -> Query<f64> {
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
    }

    #[test]
    fn native_pipelined_is_exact() {
        let items = stream(&[(0, 1_000), (1, 100)], 2_000);
        let exact_w0: f64 = items
            .iter()
            .filter(|i| i.time < EventTime::from_millis(1_000))
            .map(|i| i.value)
            .sum();
        let out = run_pipelined(
            &PipelinedConfig::new(),
            PipelinedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            items,
        );
        assert_eq!(out.items_ingested, 1_100);
        assert_eq!(out.items_aggregated, 1_100);
        let w0 = &out.windows[0];
        assert!((w0.sum.value - exact_w0).abs() < 1e-9, "{}", w0.sum.value);
        assert_eq!(w0.sum.bound.margin(), 0.0);
    }

    #[test]
    fn streamapprox_pipelined_tracks_native() {
        let items = stream(&[(0, 3_000), (1, 300), (2, 30)], 3_000);
        let exact = run_pipelined(
            &PipelinedConfig::new(),
            PipelinedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            items.clone(),
        );
        let approx = run_pipelined(
            &PipelinedConfig::new(),
            PipelinedSystem::StreamApprox,
            &query(),
            &mut FixedFraction(0.5),
            items,
        );
        assert!(approx.items_aggregated < approx.items_ingested);
        assert_eq!(approx.windows.len(), exact.windows.len());
        for (a, e) in approx.windows.iter().zip(&exact.windows) {
            assert_eq!(a.window, e.window);
            let loss = sa_estimate::accuracy_loss(a.mean.value, e.mean.value);
            assert!(loss < 0.25, "window {}: loss {loss}", a.window);
        }
    }

    #[test]
    fn sliding_windows_assemble_from_slide_panes() {
        let items = stream(&[(0, 4_000)], 4_000);
        let q = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_millis(2_000, 1_000));
        let out = run_pipelined(
            &PipelinedConfig::new(),
            PipelinedSystem::Native,
            &q,
            &mut FixedFraction(1.0),
            items,
        );
        assert!(out.windows.len() >= 3);
        let w0 = &out.windows[0];
        assert_eq!(w0.window.len_millis(), 2_000);
        assert_eq!(w0.sum.population_size, 2_000);
    }

    #[test]
    fn minority_stratum_survives_sampling() {
        // 10,000 vs 10 items; the sampler must keep stratum 1 in every
        // window.
        let items = stream(&[(0, 10_000), (1, 10)], 1_000);
        let out = run_pipelined(
            &PipelinedConfig::new(),
            PipelinedSystem::StreamApprox,
            &query(),
            &mut FixedFraction(0.1),
            items,
        );
        let w0 = &out.windows[0];
        assert!(
            w0.stratum_mean(StratumId(1)).is_some(),
            "minority stratum lost"
        );
    }

    #[test]
    fn parallel_workers_union_correctly() {
        let items = stream(&[(0, 2_000)], 1_000);
        let out = run_pipelined(
            &PipelinedConfig::new().with_sample_workers(4),
            PipelinedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            items,
        );
        // All 2,000 items counted exactly once across the 4 workers.
        assert_eq!(out.windows[0].sum.population_size, 2_000);
    }
}
