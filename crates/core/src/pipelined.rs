//! The pipelined (Flink-style) runners: StreamApprox and native execution
//! on the `sa-pipelined` engine.
//!
//! Topology: `source → sampling/stats stage (w instances, rebalanced) →
//! window estimator (1 instance) → sink`. The sampling operator implements
//! §4.2.2: it samples "on-the-fly and in an adaptive manner", closing one
//! OASRS interval per *slide interval* (§5.5) and shipping per-stratum
//! statistics — not items — downstream. Vanilla Flink has no sampling
//! operator (§4.1.2), so the only baseline here is native execution, as in
//! the paper.
//!
//! This module is a thin adapter: it expresses only the engine-specific
//! parts (operator pipeline, exchanges, watermark alignment). The interval
//! state lives in the shared [`crate::runtime::IntervalWorker`] (one per
//! operator instance) and window assembly in the shared
//! [`crate::runtime::WindowFinalizer`].

use crate::combine::PanePayload;
use crate::cost::CostPolicy;
use crate::engine::Engine;
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::runtime::{sampler_sizing, IntervalWorker, WindowFinalizer};
use crate::session::StreamApprox;
use sa_estimate::StratumStats;
use sa_pipelined::{Exchange, Flow, FlowHandle, Operator, PushSource};
use sa_types::{EventTime, RunSeed, SaError, StratumId, StreamItem, Window};
use std::time::Instant;

/// Which pipelined system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelinedSystem {
    /// Flink-based StreamApprox: an OASRS sampling operator in the
    /// pipeline.
    StreamApprox,
    /// Native Flink execution without sampling.
    Native,
}

impl std::fmt::Display for PipelinedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelinedSystem::StreamApprox => write!(f, "Flink-based StreamApprox"),
            PipelinedSystem::Native => write!(f, "Native Flink"),
        }
    }
}

/// Configuration of the pipelined engine for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinedConfig {
    /// Which system to run: Flink-based StreamApprox (the default) or
    /// native Flink execution without sampling.
    pub system: PipelinedSystem,
    /// Parallel instances of the sampling/stats stage.
    pub sample_workers: usize,
    /// Seed for sampling decisions.
    pub seed: RunSeed,
    /// How often the source advances the watermark (event-time ms).
    pub watermark_interval_ms: i64,
    /// Expected items in the first pane — the fraction policy's
    /// first-interval capacity hint (from the second pane on, OASRS adapts
    /// capacities from real arrival counters). [`run_pipelined`] derives
    /// this from the recorded stream; live sessions supply an estimate, or
    /// leave the default `0` to start from the sampler's minimum capacity.
    pub expected_pane_items: usize,
}

impl PipelinedConfig {
    /// A default sized for small machines: 2 sampling workers, 100 ms
    /// watermarks.
    pub fn new() -> Self {
        PipelinedConfig {
            system: PipelinedSystem::StreamApprox,
            sample_workers: 2,
            seed: RunSeed::DEFAULT,
            watermark_interval_ms: 100,
            expected_pane_items: 0,
        }
    }

    /// Picks the system to run (StreamApprox or the native baseline).
    #[must_use]
    pub fn with_system(mut self, system: PipelinedSystem) -> Self {
        self.system = system;
        self
    }

    /// Sets the number of sampling workers.
    #[must_use]
    pub fn with_sample_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one sampling worker");
        self.sample_workers = workers;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: impl Into<RunSeed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Sets the first-pane volume hint for fraction budgets.
    #[must_use]
    pub fn with_expected_pane_items(mut self, items: usize) -> Self {
        self.expected_pane_items = items;
        self
    }
}

impl Default for PipelinedConfig {
    fn default() -> Self {
        PipelinedConfig::new()
    }
}

/// Output of the sampling/stats stage.
#[derive(Debug, Clone)]
enum StageOut {
    /// One pane's per-stratum statistics from one worker.
    Pane {
        pane: Window,
        stats: Vec<StratumStats>,
    },
    /// End-of-stream counters from one worker.
    Done { ingested: u64, sampled: u64 },
}

/// Output of the window-estimation stage.
#[derive(Debug, Clone)]
enum RunnerOut {
    Window(Box<WindowResult>),
    Done { ingested: u64, sampled: u64 },
}

/// The pane-sampling / pane-stats operator (one instance per worker): an
/// [`IntervalWorker`] plus the engine-specific pane-boundary detection.
///
/// Panes are slide-interval-sized. A pane closes when either an item of a
/// later pane arrives (items are in order within an instance) or the
/// watermark passes its end — the watermark path runs *before* the runtime
/// forwards the watermark downstream, so pane results always precede the
/// watermark that completes their windows.
struct PaneStage<R> {
    worker: IntervalWorker<R>,
    pane_ms: i64,
    current_pane_start: Option<i64>,
}

impl<R: Send + 'static> PaneStage<R> {
    fn flush_pane(&mut self, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        let Some(start) = self.current_pane_start.take() else {
            return;
        };
        let pane = Window::new(
            EventTime::from_millis(start),
            EventTime::from_millis(start + self.pane_ms),
        );
        let stats = self.worker.close_interval();
        out(StreamItem::new(
            StratumId(0),
            pane.end,
            StageOut::Pane { pane, stats },
        ));
    }
}

impl<R: Send + 'static> Operator<R, StageOut> for PaneStage<R> {
    fn on_item(&mut self, item: StreamItem<R>, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        let pane = item.time.as_millis().div_euclid(self.pane_ms) * self.pane_ms;
        match self.current_pane_start {
            None => self.current_pane_start = Some(pane),
            Some(current) if pane > current => {
                self.flush_pane(out);
                self.current_pane_start = Some(pane);
            }
            _ => {}
        }
        self.worker.observe(item.stratum, item.value);
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        if let Some(start) = self.current_pane_start {
            if wm.as_millis() >= start + self.pane_ms {
                self.flush_pane(out);
            }
        }
    }

    fn on_end(&mut self, out: &mut dyn FnMut(StreamItem<StageOut>)) {
        self.flush_pane(out);
        let (ingested, sampled) = self.worker.counters();
        out(StreamItem::new(
            StratumId(0),
            EventTime::MAX,
            StageOut::Done { ingested, sampled },
        ));
    }
}

/// The window-estimation operator: a [`WindowFinalizer`] assembling panes
/// into sliding windows, emitting `output ± error bound` results as the
/// watermark closes them.
struct WindowEstimator {
    finalizer: WindowFinalizer,
    ingested: u64,
    sampled: u64,
}

impl WindowEstimator {
    fn emit_windows(&mut self, out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        for result in self.finalizer.drain_windows() {
            out(StreamItem::new(
                StratumId(0),
                result.window.end,
                RunnerOut::Window(Box::new(result)),
            ));
        }
    }
}

impl Operator<StageOut, RunnerOut> for WindowEstimator {
    fn on_item(&mut self, item: StreamItem<StageOut>, _out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        match item.value {
            StageOut::Pane { pane, stats } => {
                self.finalizer
                    .ingest_interval(pane, PanePayload::Stratified(stats));
            }
            StageOut::Done { ingested, sampled } => {
                self.ingested += ingested;
                self.sampled += sampled;
            }
        }
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        if wm == EventTime::MAX {
            self.finalizer.finish();
        } else {
            self.finalizer.close_interval(wm);
        }
        self.emit_windows(out);
    }

    fn on_end(&mut self, out: &mut dyn FnMut(StreamItem<RunnerOut>)) {
        self.finalizer.finish();
        self.emit_windows(out);
        out(StreamItem::new(
            StratumId(0),
            EventTime::MAX,
            RunnerOut::Done {
                ingested: self.ingested,
                sampled: self.sampled,
            },
        ));
    }
}

/// Runs one pipelined system over a recorded stream.
///
/// The cost policy is consulted once at startup for its sizing directive;
/// within the run, OASRS's own per-interval adaptation (capacity follows
/// `fraction × previous arrivals`) provides the adaptivity of §4.2.2.
///
/// This is the one-shot convenience over an incremental
/// [`crate::ApproxSession`]: it derives the first-pane volume hint from
/// the recording, builds a pipelined session, pushes everything, and
/// finishes. A session configured with the same
/// [`PipelinedConfig::expected_pane_items`] and fed the same items —
/// item by item or chunked — produces bit-for-bit the same windows.
///
/// # Panics
///
/// Panics if `items` is not in non-decreasing event-time order.
#[must_use = "the run's windows and metrics are its only product"]
pub fn run_pipelined<R>(
    config: &PipelinedConfig,
    system: PipelinedSystem,
    query: &Query<R>,
    policy: &mut dyn CostPolicy,
    items: Vec<StreamItem<R>>,
) -> RunOutput
where
    R: Send + Sync + 'static,
{
    // Estimate pane volume for the fraction policy's first interval.
    let pane_ms = query.window().slide_millis();
    let first_pane_guess = items
        .iter()
        .take_while(|i| i.time.as_millis() < pane_ms)
        .count();
    let mut session = StreamApprox::new(query.clone(), policy)
        .pipelined(
            config
                .with_expected_pane_items(first_pane_guess)
                .with_system(system),
        )
        .start();
    session
        .push_batch(items)
        .expect("recorded streams are event-time ordered");
    session.finish()
}

/// The pipelined substrate as an incremental [`Engine`]: the full operator
/// topology — push source, parallel sampling/stats stage, window estimator
/// — runs on its own threads from the moment the engine is built, and
/// `push` feeds it live through the source with backpressure. Windows
/// surface through the sink as watermarks close them, a beat after the
/// items that completed them (the stages are concurrent); `finish` ends
/// the stream, drains the sink, and joins the topology.
pub(crate) struct PipelinedEngine<R: Send + 'static> {
    source: PushSource<R>,
    sink: FlowHandle<RunnerOut>,
    started: Instant,
    ingested: u64,
    aggregated: u64,
}

impl<R> PipelinedEngine<R>
where
    R: Send + Sync + 'static,
{
    pub(crate) fn new(
        config: &PipelinedConfig,
        system: PipelinedSystem,
        query: &Query<R>,
        policy: &mut dyn CostPolicy,
    ) -> Self {
        let started = Instant::now();
        let pane_ms = query.window().slide_millis();
        let w = config.sample_workers.max(1);
        let proj = query.projection();
        let seed = config.seed;
        let confidence = query.confidence();
        let window_spec = query.window();
        let sizing = if matches!(system, PipelinedSystem::Native) {
            None
        } else {
            sampler_sizing(policy.interval_sizing(), config.expected_pane_items, w)
        };

        let (source, flow) = Flow::source_push(config.watermark_interval_ms);
        let sink = flow
            .then(w, Exchange::Rebalance, move |i| PaneStage {
                worker: IntervalWorker::for_worker(
                    sizing,
                    seed,
                    i,
                    w,
                    std::sync::Arc::clone(&proj),
                ),
                pane_ms,
                current_pane_start: None,
            })
            .then(1, Exchange::Rebalance, move |_| WindowEstimator {
                finalizer: WindowFinalizer::new(window_spec, confidence),
                ingested: 0,
                sampled: 0,
            })
            .into_handle();
        PipelinedEngine {
            source,
            sink,
            started,
            ingested: 0,
            aggregated: 0,
        }
    }

    /// Splits a drained sink batch into windows and end-of-stream
    /// counters.
    fn absorb(
        emitted: Vec<StreamItem<RunnerOut>>,
        ingested: &mut u64,
        aggregated: &mut u64,
    ) -> Vec<WindowResult> {
        let mut windows = Vec::new();
        for item in emitted {
            match item.value {
                RunnerOut::Window(result) => windows.push(*result),
                RunnerOut::Done {
                    ingested: i,
                    sampled: s,
                } => {
                    *ingested += i;
                    *aggregated += s;
                }
            }
        }
        windows
    }
}

impl<R> Engine<R> for PipelinedEngine<R>
where
    R: Send + Sync + 'static,
{
    fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError> {
        self.source.push(item)
    }

    fn poll_windows(&mut self) -> Vec<WindowResult> {
        let emitted = self.sink.try_drain();
        Self::absorb(emitted, &mut self.ingested, &mut self.aggregated)
    }

    fn finish(self: Box<Self>) -> RunOutput {
        let PipelinedEngine {
            source,
            sink,
            started,
            mut ingested,
            mut aggregated,
        } = *self;
        drop(source); // end-of-stream: final MAX watermark flushes every window
        let emitted = sink.drain_to_end();
        let mut windows = Self::absorb(emitted, &mut ingested, &mut aggregated);
        windows.sort_by_key(|w| (w.window.end, w.window.start));
        RunOutput {
            windows,
            items_ingested: ingested,
            items_aggregated: aggregated,
            elapsed: started.elapsed(),
        }
    }
}
