//! The engine-agnostic approximation runtime.
//!
//! The paper's central claim (§4) is that one sampling algorithm — OASRS —
//! plugs into *any* stream-processing substrate. This module is that claim
//! made structural: everything an engine does *between* receiving items
//! and emitting `output ± error bound` windows lives here, shared by the
//! batched (Spark-style) and pipelined (Flink-style) engines, and by any
//! engine added later (the roadmap's aggregator-backed runner, sharded
//! engines).
//!
//! The pieces, from the inside out:
//!
//! * [`sampler_sizing`] — the one mapping from a cost policy's
//!   [`SizingDirective`] to the sampler's [`SizingPolicy`].
//! * [`ExactAccumulator`] — native execution's per-stratum Welford
//!   accumulation.
//! * [`IntervalWorker`] — one parallel worker's interval state: an OASRS
//!   sampler or an exact accumulator, closed into per-stratum statistics
//!   at every interval boundary. Threaded engines embed one per worker.
//! * [`WindowFinalizer`] — pane-to-window assembly and estimation:
//!   [`PaneWindower`] state plus [`combine_window`] finalization. Engines
//!   with a dedicated window stage embed one there.
//! * [`ApproxRuntime`] — the full per-interval loop for engines driven
//!   from a single control thread: cost-policy consultation and feedback,
//!   sampler-pool lifecycle, interval ingestion, window finalization and
//!   run metrics, behind the `ingest_interval` / `close_interval` /
//!   `take_windows` / `finish` API.
//!
//! What remains in the engine adapters is only what is genuinely
//! engine-specific: micro-batch dataset formation and cluster shuffles in
//! `batched`, operator pipelines and exchanges in `pipelined`.

use crate::checkpoint::{
    decode_directive, decode_pane_payload, decode_window_result, encode_directive,
    encode_pane_payload, encode_window_result, RecordCodec,
};
use crate::combine::{combine_window, PanePayload};
use crate::cost::{CostPolicy, IntervalFeedback, PolicyHandle, SizingDirective};
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::windowing::PaneWindower;
use rand::Rng;
use sa_estimate::{estimate_mean, StratumStats, Welford};
use sa_sampling::{merge_all_stratified, OasrsSampler, SizingPolicy};
use sa_types::{
    wire::put_varint, Confidence, EventTime, RunSeed, SaError, StratifiedSample, StratumId,
    StreamItem, Window, WindowSpec, WireDecode, WireEncode, WireReader,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Maps a cost policy's per-interval directive onto the sampler's sizing
/// policy; `None` means exact (native) execution.
///
/// `expected_items` seeds the fraction policy's first-interval capacity
/// guess — spread over `workers` and an assumed handful of strata; from
/// the second interval on, OASRS adapts capacities from real per-stratum
/// counters.
pub fn sampler_sizing(
    directive: SizingDirective,
    expected_items: usize,
    workers: usize,
) -> Option<SizingPolicy> {
    match directive {
        SizingDirective::Everything => None,
        SizingDirective::Fraction(fraction) => Some(SizingPolicy::FractionOfPrevious {
            fraction,
            initial: ((fraction * expected_items as f64) as usize / workers.max(1) / 4).max(16),
        }),
        SizingDirective::PerStratum(n) => Some(SizingPolicy::PerStratum(n)),
        SizingDirective::SharedTotal(n) => Some(SizingPolicy::SharedTotal(n)),
    }
}

/// The seed of the RNG that drives one pane's cross-shard merge, derived
/// from the run seed and the pane's *start time* (not a sequential pane
/// counter): workers that jump different quiet gaps disagree on pane
/// ordinals but always agree on pane start times, so seeding by start time
/// is what lets a distributed coordinator reproduce — bit for bit — the
/// merge a single process performing the same pane would draw.
pub fn pane_merge_seed(seed: RunSeed, pane_start_ms: i64) -> u64 {
    seed.derive(0xD157).derive(pane_start_ms as u64).value()
}

/// Exact per-stratum accumulation for native execution: every record is
/// projected and folded into its stratum's [`Welford`] accumulator.
pub struct ExactAccumulator<R> {
    accs: BTreeMap<StratumId, Welford>,
    proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
}

impl<R> ExactAccumulator<R> {
    /// An empty accumulator projecting records through `proj`.
    pub fn new(proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>) -> Self {
        ExactAccumulator {
            accs: BTreeMap::new(),
            proj,
        }
    }

    /// Folds one record into its stratum.
    #[inline]
    pub fn observe(&mut self, stratum: StratumId, value: &R) {
        let v = (self.proj)(value);
        self.accs.entry(stratum).or_default().push(v);
    }

    /// Folds a slice of items, hoisting the per-item stratum map lookup
    /// out of the loop: consecutive same-stratum items share one
    /// `BTreeMap` entry lookup. Welford accumulation is order-dependent
    /// only in float rounding, and the item order is unchanged, so this
    /// is bit-for-bit the per-item fold.
    pub fn observe_slice(&mut self, items: &[StreamItem<R>]) {
        let mut i = 0;
        while i < items.len() {
            let stratum = items[i].stratum;
            let run = items[i..]
                .iter()
                .take_while(|it| it.stratum == stratum)
                .count();
            let acc = self.accs.entry(stratum).or_default();
            for item in &items[i..i + run] {
                acc.push((self.proj)(&item.value));
            }
            i += run;
        }
    }

    /// Closes the interval: per-stratum exact statistics, state re-armed.
    pub fn close_interval(&mut self) -> Vec<StratumStats> {
        std::mem::take(&mut self.accs)
            .into_iter()
            .map(|(stratum, acc)| StratumStats::from_parts(stratum, acc.count(), acc))
            .collect()
    }

    /// Serializes the open interval's accumulators for an engine snapshot.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        put_varint(out, self.accs.len() as u64);
        for (stratum, acc) in &self.accs {
            stratum.encode(out);
            acc.encode(out);
        }
    }

    /// Rebuilds an accumulator from snapshot state, projecting through
    /// `proj` (not part of the state: the restored engine supplies the
    /// same query's projection).
    pub(crate) fn decode_state(
        r: &mut WireReader<'_>,
        proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    ) -> Result<Self, SaError> {
        let n = r.read_len()?;
        let mut accs = BTreeMap::new();
        for _ in 0..n {
            let stratum = StratumId::decode(r)?;
            let acc = Welford::decode(r)?;
            if accs.insert(stratum, acc).is_some() {
                return Err(SaError::Wire(format!(
                    "duplicate stratum {} in accumulator state",
                    stratum.0
                )));
            }
        }
        Ok(ExactAccumulator { accs, proj })
    }
}

enum WorkerKind<R> {
    Sampling(OasrsSampler<R>),
    Exact(ExactAccumulator<R>),
}

/// What one worker's interval closed into, before any cross-worker
/// combination.
///
/// Sampling workers keep the *items* (a weighted [`StratifiedSample`]) so
/// shard-local samples can be merged by the seen-count-weighted reservoir
/// union before estimation; exact workers reduce to per-stratum
/// [`StratumStats`] immediately (Welford statistics merge exactly, no
/// items needed).
pub enum WorkerPane<R> {
    /// The interval's weighted stratified sample (sampling execution).
    Sampled(StratifiedSample<R>),
    /// The interval's exact per-stratum statistics (native execution).
    Exact(Vec<StratumStats>),
}

/// One parallel worker's interval state: OASRS sampling under a budget,
/// exact accumulation without one. Engines call
/// [`observe`](IntervalWorker::observe) per item and
/// [`close_interval`](IntervalWorker::close_interval) at every pane
/// boundary; the worker keeps the ingested/sampled counters every run
/// reports.
pub struct IntervalWorker<R> {
    kind: WorkerKind<R>,
    proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    ingested: u64,
    sampled: u64,
}

impl<R> IntervalWorker<R> {
    /// Builds worker `worker` of `num_workers`: sampling when `sizing` is
    /// set (capacities sharded, seed derived via [`RunSeed::for_worker`]),
    /// exact otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= num_workers` or the sizing policy is invalid.
    pub fn for_worker(
        sizing: Option<SizingPolicy>,
        seed: RunSeed,
        worker: usize,
        num_workers: usize,
        proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    ) -> Self {
        let kind = match sizing {
            Some(sizing) => WorkerKind::Sampling(OasrsSampler::for_worker(
                sizing,
                seed.value(),
                worker,
                num_workers,
            )),
            None => WorkerKind::Exact(ExactAccumulator::new(Arc::clone(&proj))),
        };
        IntervalWorker {
            kind,
            proj,
            ingested: 0,
            sampled: 0,
        }
    }

    /// Builds shard `shard`'s worker for a mergeable-sampler engine: the
    /// sampler keeps the *full* per-stratum capacity — unlike
    /// [`for_worker`](IntervalWorker::for_worker), which splits capacities
    /// `N/w` — because shard-local samples are merged back down to
    /// capacity by the weighted reservoir union at interval close (see
    /// [`ShardSet::merge_panes`]). Only the RNG stream is decorrelated per
    /// shard, through the same [`RunSeed::for_worker`] rule, so shard 0 of
    /// a 1-shard set draws bit-for-bit the sample worker 0 of a 1-worker
    /// pool would.
    ///
    /// # Panics
    ///
    /// Panics if the sizing policy is invalid.
    pub fn for_shard(
        sizing: Option<SizingPolicy>,
        seed: RunSeed,
        shard: usize,
        proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    ) -> Self {
        let kind = match sizing {
            Some(sizing) => {
                WorkerKind::Sampling(OasrsSampler::new(sizing, seed.for_worker(shard).value()))
            }
            None => WorkerKind::Exact(ExactAccumulator::new(Arc::clone(&proj))),
        };
        IntervalWorker {
            kind,
            proj,
            ingested: 0,
            sampled: 0,
        }
    }

    /// Offers one item.
    #[inline]
    pub fn observe(&mut self, stratum: StratumId, value: R) {
        self.ingested += 1;
        match &mut self.kind {
            WorkerKind::Sampling(sampler) => sampler.observe(stratum, value),
            WorkerKind::Exact(acc) => acc.observe(stratum, &value),
        }
    }

    /// Offers a whole chunk through the batch fast path: sampling workers
    /// feed same-stratum runs to the skip-ahead reservoirs
    /// ([`OasrsSampler::observe_batch`]), exact workers run the
    /// lookup-hoisted slice fold. Bit-for-bit identical to per-item
    /// [`observe`](IntervalWorker::observe) over the same items.
    ///
    /// The chunk is drained: it comes back empty with its allocation
    /// intact, so data-parallel callers can recycle the buffer instead of
    /// allocating per chunk.
    pub fn observe_chunk(&mut self, items: &mut Vec<StreamItem<R>>) {
        self.ingested += items.len() as u64;
        match &mut self.kind {
            WorkerKind::Sampling(sampler) => sampler.observe_batch(items),
            WorkerKind::Exact(acc) => {
                acc.observe_slice(items);
                items.clear();
            }
        }
    }

    /// Closes the current interval into per-stratum statistics and re-arms
    /// for the next one.
    pub fn close_interval(&mut self) -> Vec<StratumStats> {
        match self.close_interval_parts() {
            WorkerPane::Sampled(sample) => {
                let proj = &self.proj;
                sample
                    .iter()
                    .map(|stratum| StratumStats::from_sample(stratum, |r| proj(r)))
                    .collect()
            }
            WorkerPane::Exact(stats) => stats,
        }
    }

    /// Closes the current interval into a [`WorkerPane`] and re-arms for
    /// the next one — the pre-combination form sharded engines ship
    /// between threads so sampling shards can merge *samples* (not
    /// statistics) before estimation.
    pub fn close_interval_parts(&mut self) -> WorkerPane<R> {
        match &mut self.kind {
            WorkerKind::Sampling(sampler) => {
                let sample = sampler.finish_interval();
                self.sampled += sample.total_sampled();
                WorkerPane::Sampled(sample)
            }
            WorkerKind::Exact(acc) => {
                let stats = acc.close_interval();
                self.sampled += stats.iter().map(StratumStats::sample_size).sum::<u64>();
                WorkerPane::Exact(stats)
            }
        }
    }

    /// Items offered / items aggregated over this worker's lifetime.
    pub fn counters(&self) -> (u64, u64) {
        (self.ingested, self.sampled)
    }

    /// Serializes the worker's full mid-interval state — sampler or
    /// accumulator plus lifetime counters — for an engine snapshot.
    /// Records inside reservoirs go through `codec`.
    pub(crate) fn encode_state(&self, codec: RecordCodec<R>, out: &mut Vec<u8>) {
        match &self.kind {
            WorkerKind::Sampling(sampler) => {
                0u8.encode(out);
                sampler.encode_state_with(out, &mut |v, out| (codec.encode)(v, out));
            }
            WorkerKind::Exact(acc) => {
                1u8.encode(out);
                acc.encode_state(out);
            }
        }
        put_varint(out, self.ingested);
        put_varint(out, self.sampled);
    }

    /// Rebuilds a worker from snapshot state. The projection is supplied
    /// by the restored engine (same query), not the snapshot.
    pub(crate) fn decode_state(
        r: &mut WireReader<'_>,
        codec: RecordCodec<R>,
        proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    ) -> Result<Self, SaError> {
        let kind = match u8::decode(r)? {
            0 => WorkerKind::Sampling(OasrsSampler::decode_state_with(r, &mut |r| {
                (codec.decode)(r)
            })?),
            1 => WorkerKind::Exact(ExactAccumulator::decode_state(r, Arc::clone(&proj))?),
            tag => {
                return Err(SaError::Wire(format!("unknown worker-kind tag {tag}")));
            }
        };
        Ok(IntervalWorker {
            kind,
            proj,
            ingested: r.read_varint()?,
            sampled: r.read_varint()?,
        })
    }
}

/// The shard-aware sampler lifecycle for data-parallel engines: routing,
/// per-shard [`IntervalWorker`] construction (rebuilt only when the cost
/// policy's directive changes, so capacity adaptation keeps its history —
/// the shard-level mirror of [`ApproxRuntime::checkout_samplers`]), and
/// the deterministic canonical merge of shard-local interval closes.
///
/// Merge semantics follow the sizing policy's budget distribution:
///
/// * Under a **fraction** directive, every shard's sampler adapts its
///   capacities to its *own* arrival share, so the shards already split
///   the budget — the combine is the plain capacity-summing
///   `StratifiedSample::union` (§3.2).
/// * Under **fixed-size** directives (per-stratum / shared-total), every
///   shard duplicates the one fixed budget at full capacity and the
///   shard samples are united by the seen-count-weighted reservoir union
///   (`sa_sampling::merge_all_stratified`), preserving uniform inclusion
///   probabilities while holding the merged sample at the budgeted size.
/// * Exact (native) shards reduce to per-stratum Welford statistics which
///   concatenate; the window combiner's canonical sort-and-merge
///   (`combine.rs`) makes the result independent of shard scheduling.
///
/// Shards are always merged in ascending shard-index order — mirroring
/// `combine.rs`'s canonical stats order — so a run is bit-for-bit
/// reproducible from its seed.
pub struct ShardSet<R> {
    shards: usize,
    seed: RunSeed,
    proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    directive: Option<SizingDirective>,
}

impl<R> ShardSet<R> {
    /// A shard set of `shards` workers seeded from `seed`, projecting
    /// records through `proj` at estimation time.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, seed: RunSeed, proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardSet {
            shards,
            seed,
            proj,
            directive: None,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Deterministic hash route for the `seq`-th accepted item of the
    /// stream: the run-wide [`RunSeed::derive`] mixing rule over
    /// `(seq, stratum)`, so every stratum spreads across all shards (the
    /// mergeable-sampler layer is what makes cross-shard strata sound)
    /// and a run routes identically on every replay.
    pub fn route(&self, stratum: StratumId, seq: u64) -> usize {
        if self.shards == 1 {
            return 0;
        }
        (RunSeed::new(seq).derive(u64::from(stratum.0)).value() % self.shards as u64) as usize
    }

    /// Hands out one fresh [`IntervalWorker`] per shard when `directive`
    /// differs from the one currently armed; `None` when the armed workers
    /// can keep running (their capacity adaptation history is preserved,
    /// exactly like the single-threaded sampler pool).
    ///
    /// `expected_items` seeds a fraction policy's first-interval capacity
    /// guess, spread across shards.
    pub fn rearm(
        &mut self,
        directive: SizingDirective,
        expected_items: usize,
    ) -> Option<Vec<IntervalWorker<R>>> {
        if self.directive == Some(directive) {
            return None;
        }
        self.directive = Some(directive);
        let sizing = sampler_sizing(directive, expected_items, self.shards);
        Some(
            (0..self.shards)
                .map(|i| IntervalWorker::for_shard(sizing, self.seed, i, Arc::clone(&self.proj)))
                .collect(),
        )
    }

    /// The directive currently armed, if any.
    pub(crate) fn directive(&self) -> Option<SizingDirective> {
        self.directive
    }

    /// Forces the armed directive without building workers — used on
    /// restore, where the workers come from the snapshot and
    /// [`rearm`](ShardSet::rearm) must not replace them on the next pane.
    pub(crate) fn force_directive(&mut self, directive: Option<SizingDirective>) {
        self.directive = directive;
    }

    /// The projection handle, for rebuilding workers from snapshot state.
    pub(crate) fn projection(&self) -> Arc<dyn Fn(&R) -> f64 + Send + Sync> {
        Arc::clone(&self.proj)
    }

    /// Merges one interval's per-shard closes — given in ascending shard
    /// order — into the interval's [`PanePayload`].
    ///
    /// # Panics
    ///
    /// Panics if sampled and exact shard panes are mixed (all shards of
    /// one interval run the same directive).
    pub fn merge_panes<G: Rng + ?Sized>(
        &self,
        panes: Vec<WorkerPane<R>>,
        rng: &mut G,
    ) -> PanePayload {
        let mut samples = Vec::new();
        let mut stats = Vec::new();
        for pane in panes {
            match pane {
                WorkerPane::Sampled(sample) => samples.push(sample),
                WorkerPane::Exact(exact) => stats.extend(exact),
            }
        }
        if samples.is_empty() {
            return PanePayload::Stratified(stats);
        }
        assert!(
            stats.is_empty(),
            "mixed sampled and exact shard panes in one interval"
        );
        let merged = match self.directive {
            Some(SizingDirective::Fraction(_)) => {
                // Shards split the fraction budget by adapting to their own
                // arrival shares: the capacity-summing union is the
                // faithful combine.
                let mut union: Option<StratifiedSample<R>> = None;
                for sample in samples {
                    match &mut union {
                        None => union = Some(sample),
                        Some(u) => u.union(sample),
                    }
                }
                union.expect("at least one sampled shard pane")
            }
            _ => merge_all_stratified(samples, rng),
        };
        let proj = &self.proj;
        PanePayload::Stratified(
            merged
                .iter()
                .map(|stratum| StratumStats::from_sample(stratum, |r| proj(r)))
                .collect(),
        )
    }
}

/// Event-time pane bookkeeping for push-driven engines: first-pane
/// alignment, boundary detection, and bounded gap handling. The batched
/// and aggregated engines share this one implementation so their
/// pane-for-pane agreement with the one-shot wrappers is structural, not
/// merely test-enforced.
///
/// Gaps: quiet intervals between items normally become empty panes (one
/// `close`/`next` step each), exactly like the recorded-stream
/// micro-batcher. A gap longer than twice `window size + slide` holds
/// only panes no window spanning data can cover, so the cursor jumps it —
/// a single item with a far-future timestamp costs one pane, not one per
/// elapsed interval (the matching window-side bound lives in
/// [`PaneWindower::advance`]).
pub(crate) struct PaneCursor {
    interval_ms: i64,
    skip_horizon_ms: i64,
    start: Option<i64>,
}

impl PaneCursor {
    /// A cursor cutting panes of `interval_ms` for windows of `spec`.
    pub(crate) fn new(interval_ms: i64, spec: WindowSpec) -> Self {
        assert!(interval_ms > 0, "pane interval must be positive");
        PaneCursor {
            interval_ms,
            skip_horizon_ms: 2 * (spec.size_millis() + spec.slide_millis()),
            start: None,
        }
    }

    /// The open pane's `[start, end)`, once the first item has arrived.
    pub(crate) fn pane(&self) -> Option<(i64, i64)> {
        self.start.map(|s| (s, s.saturating_add(self.interval_ms)))
    }

    /// Prepares the cursor for an item at time `t` (non-decreasing):
    /// `true` means the open pane must be closed first — close it, call
    /// [`next`](PaneCursor::next), and ask again; `false` means the item
    /// belongs to the open pane. The first item aligns the first pane to
    /// its interval.
    pub(crate) fn needs_close(&mut self, t: i64) -> bool {
        match self.start {
            None => {
                self.start = Some(t.div_euclid(self.interval_ms) * self.interval_ms);
                false
            }
            Some(s) => t >= s.saturating_add(self.interval_ms),
        }
    }

    /// The open pane's start, for engine snapshots (`None` before the
    /// first item).
    pub(crate) fn start(&self) -> Option<i64> {
        self.start
    }

    /// Restores the open pane's start from a snapshot.
    pub(crate) fn restore_start(&mut self, start: Option<i64>) {
        self.start = start;
    }

    /// Moves to the pane after a close: the adjacent interval, or — when
    /// the item at `t` is beyond the skip horizon — the item's own pane.
    pub(crate) fn next(&mut self, t: i64) {
        let adjacent = self
            .start
            .expect("next follows a close")
            .saturating_add(self.interval_ms);
        let target = t.div_euclid(self.interval_ms) * self.interval_ms;
        self.start = Some(if target - adjacent > self.skip_horizon_ms {
            target
        } else {
            adjacent
        });
    }
}

/// Pane-to-window assembly and finalization: owns the [`PaneWindower`]
/// state and turns completed windows into [`WindowResult`]s via
/// [`combine_window`]. The engine-facing surface mirrors
/// [`ApproxRuntime`]: `ingest_interval`, `close_interval`,
/// `drain_windows`.
pub struct WindowFinalizer {
    windower: PaneWindower<PanePayload>,
    confidence: Confidence,
    completed: Vec<WindowResult>,
    /// Degraded-merge ledger: pane start (ms) → estimated items lost to
    /// missing shards in that pane. Windows touching these panes finalize
    /// with `degraded: true` and the summed loss; entries are pruned once
    /// no future window can cover them.
    degraded_panes: BTreeMap<i64, u64>,
}

impl WindowFinalizer {
    /// A finalizer assembling `spec` windows at the given confidence.
    pub fn new(spec: WindowSpec, confidence: Confidence) -> Self {
        WindowFinalizer {
            windower: PaneWindower::new(spec),
            confidence,
            completed: Vec::new(),
            degraded_panes: BTreeMap::new(),
        }
    }

    /// Records that the pane starting at `pane_start` merged without every
    /// live shard's digest, with an estimated `lost` items missing. Every
    /// window covering this pane finalizes with `degraded: true` and the
    /// loss folded into its `lost_items`.
    pub fn note_degraded_pane(&mut self, pane_start: i64, lost: u64) {
        *self.degraded_panes.entry(pane_start).or_insert(0) += lost;
    }

    /// The confidence level estimates are reported at.
    pub fn confidence(&self) -> Confidence {
        self.confidence
    }

    /// Registers one pane's payload.
    pub fn ingest_interval(&mut self, pane: Window, payload: PanePayload) {
        self.windower.add_pane(pane, payload);
    }

    /// Advances the watermark, finalizing every window it completes.
    pub fn close_interval(&mut self, watermark: EventTime) {
        let done = self.windower.advance(watermark);
        self.finalize(done);
    }

    /// Flushes every remaining window at end of stream.
    pub fn finish(&mut self) {
        let done = self.windower.finish();
        self.finalize(done);
    }

    /// Takes the windows finalized since the last drain.
    pub fn drain_windows(&mut self) -> Vec<WindowResult> {
        std::mem::take(&mut self.completed)
    }

    fn finalize(&mut self, done: Vec<(Window, Vec<PanePayload>)>) {
        for (window, panes) in done {
            let mut result = combine_window(window, panes, self.confidence);
            let (start, end) = (window.start.as_millis(), window.end.as_millis());
            for (_, &lost) in self.degraded_panes.range(start..end) {
                result.degraded = true;
                result.lost_items += lost;
            }
            // Windows finalize in ascending start order, so ledger entries
            // before this window's start can never be covered again.
            self.degraded_panes = self.degraded_panes.split_off(&start);
            self.completed.push(result);
        }
    }

    /// Serializes the windower's open panes, watermark and any undrained
    /// completed windows for an engine snapshot. The spec and confidence
    /// are not state: a restored engine rebuilds them from the query.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        let (panes, watermark) = self.windower.state();
        watermark.encode(out);
        put_varint(out, panes.len() as u64);
        for (&start, payloads) in panes {
            start.encode(out);
            put_varint(out, payloads.len() as u64);
            for p in payloads {
                encode_pane_payload(p, out);
            }
        }
        put_varint(out, self.completed.len() as u64);
        for w in &self.completed {
            encode_window_result(w, out);
        }
        put_varint(out, self.degraded_panes.len() as u64);
        for (&start, &lost) in &self.degraded_panes {
            start.encode(out);
            put_varint(out, lost);
        }
    }

    /// Restores the windower's panes, watermark and undrained windows
    /// from a snapshot.
    pub(crate) fn restore_state(&mut self, r: &mut WireReader<'_>) -> Result<(), SaError> {
        let watermark = EventTime::decode(r)?;
        let n = r.read_len()?;
        let mut panes: BTreeMap<i64, Vec<PanePayload>> = BTreeMap::new();
        for _ in 0..n {
            let start = i64::decode(r)?;
            let count = r.read_len()?;
            let mut payloads = Vec::with_capacity(count);
            for _ in 0..count {
                payloads.push(decode_pane_payload(r)?);
            }
            if panes.insert(start, payloads).is_some() {
                return Err(SaError::Wire(format!(
                    "duplicate pane start {start} in windower state"
                )));
            }
        }
        self.windower.restore_state(panes, watermark);
        let count = r.read_len()?;
        let mut completed = Vec::with_capacity(count);
        for _ in 0..count {
            completed.push(decode_window_result(r)?);
        }
        self.completed = completed;
        let count = r.read_len()?;
        let mut degraded = BTreeMap::new();
        for _ in 0..count {
            let start = i64::decode(r)?;
            let lost = r.read_varint()?;
            if degraded.insert(start, lost).is_some() {
                return Err(SaError::Wire(format!(
                    "duplicate degraded pane {start} in finalizer state"
                )));
            }
        }
        self.degraded_panes = degraded;
        Ok(())
    }
}

/// A persistent pool of per-worker OASRS samplers, rebuilt only when the
/// policy's directive changes so capacity adaptation keeps its history.
struct SamplerPool<R> {
    directive: SizingDirective,
    samplers: Vec<OasrsSampler<R>>,
}

/// The full engine-agnostic per-interval loop, for engines driven from a
/// single control thread.
///
/// The runtime owns everything the paper's architecture (§4.1) puts
/// around the engine: the sampler pool and its sizing, the cost-policy
/// feedback loop ("virtual cost function", §7), window assembly and
/// estimation, and the run metrics. The driving engine only:
///
/// 1. asks [`interval_sizing`](ApproxRuntime::interval_sizing) what the
///    next interval should do,
/// 2. computes the interval's [`PanePayload`] its own way (that part *is*
///    the engine — dataset jobs, shuffles, operator stages), borrowing
///    samplers via [`checkout_samplers`](ApproxRuntime::checkout_samplers)
///    when sampling,
/// 3. hands the payload to
///    [`ingest_interval`](ApproxRuntime::ingest_interval) and advances the
///    watermark with [`close_interval`](ApproxRuntime::close_interval),
/// 4. drains completed windows incrementally with
///    [`take_windows`](ApproxRuntime::take_windows) and collects the
///    finished run from [`finish`](ApproxRuntime::finish).
///
/// Threaded engines that cannot route everything through one object embed
/// the runtime's parts directly: [`IntervalWorker`] per parallel worker,
/// [`WindowFinalizer`] in the window stage.
pub struct ApproxRuntime<'p, R> {
    policy: PolicyHandle<'p>,
    finalizer: WindowFinalizer,
    pool: Option<SamplerPool<R>>,
    seed: RunSeed,
    workers: usize,
    ingested: u64,
    aggregated: u64,
    panes: u64,
    started: Instant,
}

impl<'p, R> ApproxRuntime<'p, R> {
    /// A runtime executing `query` under `policy` (borrowed or owned, see
    /// [`PolicyHandle`]), with `workers` parallel sampling workers seeded
    /// from `seed`.
    pub fn new(
        query: &Query<R>,
        policy: impl Into<PolicyHandle<'p>>,
        seed: RunSeed,
        workers: usize,
    ) -> Self {
        ApproxRuntime {
            policy: policy.into(),
            finalizer: WindowFinalizer::new(query.window(), query.confidence()),
            pool: None,
            seed,
            workers: workers.max(1),
            ingested: 0,
            aggregated: 0,
            panes: 0,
            started: Instant::now(),
        }
    }

    /// Panes ingested over the run — the cadence counter checkpoint
    /// policies measure "panes since the last snapshot" against.
    pub fn panes_closed(&self) -> u64 {
        self.panes
    }

    /// The cost policy's directive for the next interval.
    pub fn interval_sizing(&mut self) -> SizingDirective {
        self.policy.interval_sizing()
    }

    /// Borrows the per-worker samplers for one interval, (re)building the
    /// pool when the directive changed since the last interval. Return
    /// them with [`checkin_samplers`](ApproxRuntime::checkin_samplers) so
    /// capacity adaptation carries across intervals.
    ///
    /// # Panics
    ///
    /// Panics if called with [`SizingDirective::Everything`] — exact
    /// intervals have no samplers.
    pub fn checkout_samplers(
        &mut self,
        directive: SizingDirective,
        expected_items: usize,
    ) -> Vec<OasrsSampler<R>> {
        // An empty sampler list means a prior checkout was never matched by
        // a checkin (an engine bug or error path); rebuild rather than hand
        // out an empty worker set, which would fail far from the cause.
        let rebuild = match &self.pool {
            Some(pool) => pool.directive != directive || pool.samplers.is_empty(),
            None => true,
        };
        if rebuild {
            let sizing = sampler_sizing(directive, expected_items, self.workers)
                .expect("checkout_samplers needs a sampling directive");
            self.pool = Some(SamplerPool {
                directive,
                samplers: (0..self.workers)
                    .map(|i| OasrsSampler::for_worker(sizing, self.seed.value(), i, self.workers))
                    .collect(),
            });
        }
        std::mem::take(&mut self.pool.as_mut().expect("pool just ensured").samplers)
    }

    /// Returns borrowed samplers to the pool.
    pub fn checkin_samplers(&mut self, samplers: Vec<OasrsSampler<R>>) {
        if let Some(pool) = &mut self.pool {
            pool.samplers = samplers;
        }
    }

    /// Ingests one completed interval: updates the run counters, feeds the
    /// cost policy its [`IntervalFeedback`], and registers the pane for
    /// window assembly.
    pub fn ingest_interval(
        &mut self,
        pane: Window,
        payload: PanePayload,
        arrived: u64,
        process_nanos: u64,
    ) {
        self.ingested += arrived;
        self.aggregated += payload.sampled();
        self.panes += 1;
        let relative_error = match &payload {
            PanePayload::Stratified(stats) if !stats.is_empty() => {
                Some(estimate_mean(stats, self.finalizer.confidence()).relative_error())
            }
            _ => None,
        };
        self.policy.observe(&IntervalFeedback {
            items: arrived,
            sampled: payload.sampled(),
            process_nanos,
            relative_error,
        });
        self.finalizer.ingest_interval(pane, payload);
    }

    /// Advances the watermark, finalizing every window it completes.
    pub fn close_interval(&mut self, watermark: EventTime) {
        self.finalizer.close_interval(watermark);
    }

    /// Takes the windows finalized since the last take — the incremental
    /// drain an [`crate::ApproxSession`] serves `poll_windows` from.
    pub fn take_windows(&mut self) -> Vec<WindowResult> {
        self.finalizer.drain_windows()
    }

    /// Serializes the runtime's snapshotable state: run counters, the
    /// sampler pool (directive plus every sampler's mid-adaptation state)
    /// and the window finalizer. Deliberately excluded: wall-clock time
    /// and cost-policy adaptation (see `crate::checkpoint` module docs).
    pub(crate) fn encode_state(&self, codec: RecordCodec<R>, out: &mut Vec<u8>) {
        put_varint(out, self.ingested);
        put_varint(out, self.aggregated);
        put_varint(out, self.panes);
        match &self.pool {
            None => 0u8.encode(out),
            Some(pool) => {
                1u8.encode(out);
                encode_directive(&pool.directive, out);
                put_varint(out, pool.samplers.len() as u64);
                for s in &pool.samplers {
                    s.encode_state_with(out, &mut |v, out| (codec.encode)(v, out));
                }
            }
        }
        self.finalizer.encode_state(out);
    }

    /// Restores the runtime's snapshotable state in place. The policy,
    /// seed, worker count and finalizer spec keep their freshly-built
    /// values — they derive from the query and configuration, which must
    /// match the snapshotting run's.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut WireReader<'_>,
        codec: RecordCodec<R>,
    ) -> Result<(), SaError> {
        self.ingested = r.read_varint()?;
        self.aggregated = r.read_varint()?;
        self.panes = r.read_varint()?;
        self.pool = match u8::decode(r)? {
            0 => None,
            1 => {
                let directive = decode_directive(r)?;
                let n = r.read_len()?;
                let mut samplers = Vec::with_capacity(n);
                for _ in 0..n {
                    samplers.push(OasrsSampler::decode_state_with(r, &mut |r| {
                        (codec.decode)(r)
                    })?);
                }
                Some(SamplerPool {
                    directive,
                    samplers,
                })
            }
            tag => {
                return Err(SaError::Wire(format!("unknown sampler-pool tag {tag}")));
            }
        };
        self.finalizer.restore_state(r)
    }

    /// Ends the run: flushes trailing windows and returns the completed
    /// [`RunOutput`]. Its `windows` are those not already removed through
    /// [`take_windows`](ApproxRuntime::take_windows); the item counters
    /// always cover the whole run.
    #[must_use = "finish returns the run's windows and metrics"]
    pub fn finish(mut self) -> RunOutput {
        self.finalizer.finish();
        RunOutput {
            windows: self.finalizer.drain_windows(),
            items_ingested: self.ingested,
            items_aggregated: self.aggregated,
            elapsed: self.started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FixedFraction;
    use rand::SeedableRng;

    fn query() -> Query<f64> {
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
    }

    fn pane(start_ms: i64) -> Window {
        Window::new(
            EventTime::from_millis(start_ms),
            EventTime::from_millis(start_ms + 1_000),
        )
    }

    fn exact_stats(stratum: u32, values: &[f64]) -> Vec<StratumStats> {
        let acc: Welford = values.iter().copied().collect();
        vec![StratumStats::from_parts(
            StratumId(stratum),
            acc.count(),
            acc,
        )]
    }

    /// A policy that records the feedback it receives.
    struct Recording {
        directives: Vec<SizingDirective>,
        observed: Vec<IntervalFeedback>,
        next: SizingDirective,
    }

    impl Recording {
        fn new(next: SizingDirective) -> Self {
            Recording {
                directives: Vec::new(),
                observed: Vec::new(),
                next,
            }
        }
    }

    impl CostPolicy for Recording {
        fn interval_sizing(&mut self) -> SizingDirective {
            self.directives.push(self.next);
            self.next
        }

        fn observe(&mut self, feedback: &IntervalFeedback) {
            self.observed.push(*feedback);
        }
    }

    #[test]
    fn sizing_covers_every_directive() {
        assert_eq!(sampler_sizing(SizingDirective::Everything, 100, 2), None);
        assert_eq!(
            sampler_sizing(SizingDirective::PerStratum(7), 100, 2),
            Some(SizingPolicy::PerStratum(7))
        );
        assert_eq!(
            sampler_sizing(SizingDirective::SharedTotal(9), 100, 2),
            Some(SizingPolicy::SharedTotal(9))
        );
        let Some(SizingPolicy::FractionOfPrevious { fraction, initial }) =
            sampler_sizing(SizingDirective::Fraction(0.5), 10_000, 2)
        else {
            panic!("expected a fraction policy");
        };
        assert_eq!(fraction, 0.5);
        assert_eq!(initial, 625); // 0.5 × 10_000 / 2 workers / 4 strata
    }

    #[test]
    fn interval_worker_exact_counts_and_closes() {
        let proj: Arc<dyn Fn(&f64) -> f64 + Send + Sync> = Arc::new(|v| *v);
        let mut w = IntervalWorker::for_worker(None, RunSeed::DEFAULT, 0, 1, proj);
        for v in 0..10 {
            w.observe(StratumId(0), f64::from(v));
        }
        let stats = w.close_interval();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].sample_size(), 10);
        assert_eq!(w.counters(), (10, 10));
        // Interval state re-armed.
        assert!(w.close_interval().is_empty());
    }

    #[test]
    fn interval_worker_sampling_respects_budget() {
        let proj: Arc<dyn Fn(&f64) -> f64 + Send + Sync> = Arc::new(|v| *v);
        let mut w = IntervalWorker::for_worker(
            Some(SizingPolicy::PerStratum(5)),
            RunSeed::DEFAULT,
            0,
            1,
            proj,
        );
        for v in 0..100 {
            w.observe(StratumId(0), f64::from(v));
        }
        let stats = w.close_interval();
        assert_eq!(stats[0].sample_size(), 5);
        assert_eq!(stats[0].population, 100);
        assert_eq!(w.counters(), (100, 5));
    }

    #[test]
    fn finalizer_completes_windows_in_watermark_order() {
        let mut f = WindowFinalizer::new(WindowSpec::tumbling_millis(1_000), Confidence::P95);
        f.ingest_interval(
            pane(0),
            PanePayload::Stratified(exact_stats(0, &[1.0, 2.0])),
        );
        f.ingest_interval(pane(1_000), PanePayload::Stratified(exact_stats(0, &[3.0])));
        f.close_interval(EventTime::from_millis(1_000));
        let first = f.drain_windows();
        assert_eq!(first.len(), 1);
        assert!((first[0].sum.value - 3.0).abs() < 1e-12);
        f.finish();
        let rest = f.drain_windows();
        assert_eq!(rest.len(), 1);
        assert!((rest[0].sum.value - 3.0).abs() < 1e-12);
        assert!(f.drain_windows().is_empty());
    }

    #[test]
    fn runtime_feeds_policy_and_assembles_output() {
        let mut policy = Recording::new(SizingDirective::Everything);
        let q = query();
        let mut rt: ApproxRuntime<'_, f64> =
            ApproxRuntime::new(&q, &mut policy, RunSeed::DEFAULT, 2);
        assert_eq!(rt.interval_sizing(), SizingDirective::Everything);
        rt.ingest_interval(
            pane(0),
            PanePayload::Stratified(exact_stats(0, &[1.0, 2.0, 3.0])),
            3,
            1_000,
        );
        rt.close_interval(EventTime::from_millis(1_000));
        let out = rt.finish();
        assert_eq!(out.items_ingested, 3);
        assert_eq!(out.items_aggregated, 3);
        assert_eq!(out.windows.len(), 1);
        assert!((out.windows[0].sum.value - 6.0).abs() < 1e-12);
        assert_eq!(policy.observed.len(), 1);
        assert_eq!(policy.observed[0].items, 3);
        assert_eq!(policy.observed[0].process_nanos, 1_000);
        assert!(policy.observed[0].relative_error.is_some());
    }

    #[test]
    fn take_windows_drains_incrementally_without_ending_the_run() {
        let mut policy = Recording::new(SizingDirective::Everything);
        let q = query();
        let mut rt: ApproxRuntime<'_, f64> =
            ApproxRuntime::new(&q, &mut policy, RunSeed::DEFAULT, 1);
        rt.ingest_interval(
            pane(0),
            PanePayload::Stratified(exact_stats(0, &[1.0])),
            1,
            10,
        );
        rt.close_interval(EventTime::from_millis(1_000));
        // The first window is observable mid-run...
        let early = rt.take_windows();
        assert_eq!(early.len(), 1);
        assert!(rt.take_windows().is_empty());
        // ...and the run continues: a second interval still finalizes.
        rt.ingest_interval(
            pane(1_000),
            PanePayload::Stratified(exact_stats(0, &[2.0])),
            1,
            10,
        );
        let out = rt.finish();
        assert_eq!(out.windows.len(), 1, "only the undrained window remains");
        assert_eq!(out.items_ingested, 2, "counters cover the whole run");
    }

    #[test]
    fn sampler_pool_persists_until_directive_changes() {
        let mut policy = FixedFraction(0.5);
        let q = query();
        let mut rt: ApproxRuntime<'_, f64> =
            ApproxRuntime::new(&q, &mut policy, RunSeed::DEFAULT, 2);
        let mut samplers = rt.checkout_samplers(SizingDirective::Fraction(0.5), 1_000);
        assert_eq!(samplers.len(), 2);
        // Feed one so the pool has history to preserve.
        samplers[0].observe(StratumId(0), 1.0);
        let seen_before = samplers[0].total_seen();
        rt.checkin_samplers(samplers);
        // Same directive: same samplers come back (history kept).
        let samplers = rt.checkout_samplers(SizingDirective::Fraction(0.5), 1_000);
        assert_eq!(samplers[0].total_seen(), seen_before);
        rt.checkin_samplers(samplers);
        // Changed directive: pool rebuilt.
        let samplers = rt.checkout_samplers(SizingDirective::PerStratum(8), 1_000);
        assert_eq!(samplers[0].total_seen(), 0);
        rt.checkin_samplers(samplers);
    }

    #[test]
    fn unmatched_checkout_rebuilds_instead_of_handing_out_nothing() {
        let mut policy = FixedFraction(0.5);
        let q = query();
        let mut rt: ApproxRuntime<'_, f64> =
            ApproxRuntime::new(&q, &mut policy, RunSeed::DEFAULT, 2);
        // Checkout without a matching checkin (an engine error path).
        let lost = rt.checkout_samplers(SizingDirective::Fraction(0.5), 1_000);
        assert_eq!(lost.len(), 2);
        drop(lost);
        // Same directive again: the pool must rebuild, not return nothing.
        let fresh = rt.checkout_samplers(SizingDirective::Fraction(0.5), 1_000);
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn empty_payload_feedback_has_no_error_estimate() {
        let mut policy = Recording::new(SizingDirective::Everything);
        let q = query();
        let mut rt: ApproxRuntime<'_, f64> =
            ApproxRuntime::new(&q, &mut policy, RunSeed::DEFAULT, 1);
        rt.ingest_interval(pane(0), PanePayload::Stratified(Vec::new()), 0, 10);
        let out = rt.finish();
        assert_eq!(out.items_ingested, 0);
        assert_eq!(policy.observed[0].relative_error, None);
    }

    #[test]
    fn sampling_worker_union_matches_single_worker_population() {
        // Two workers halving one stream: closed stats must cover the full
        // population when combined — the distributed-correctness invariant
        // both engines rely on.
        let proj: Arc<dyn Fn(&f64) -> f64 + Send + Sync> = Arc::new(|v| *v);
        let sizing = Some(SizingPolicy::PerStratum(10));
        let mut w0 = IntervalWorker::for_worker(sizing, RunSeed::new(3), 0, 2, Arc::clone(&proj));
        let mut w1 = IntervalWorker::for_worker(sizing, RunSeed::new(3), 1, 2, proj);
        for v in 0..50 {
            w0.observe(StratumId(0), f64::from(v));
            w1.observe(StratumId(0), f64::from(v + 50));
        }
        let mut stats = w0.close_interval();
        stats.extend(w1.close_interval());
        let merged = {
            let mut it = stats.into_iter();
            let mut first = it.next().expect("stats from worker 0");
            for s in it {
                first.merge(&s);
            }
            first
        };
        assert_eq!(merged.population, 100);
        assert_eq!(merged.sample_size(), 10);
    }

    #[test]
    fn for_shard_of_one_matches_worker_zero_of_one() {
        // The N=1 bit-for-bit guarantee rests on this: shard 0 of a
        // 1-shard set and worker 0 of a 1-worker pool draw the same
        // sample from the same seed.
        let proj: Arc<dyn Fn(&f64) -> f64 + Send + Sync> = Arc::new(|v| *v);
        let sizing = Some(SizingPolicy::PerStratum(5));
        let mut shard = IntervalWorker::for_shard(sizing, RunSeed::new(9), 0, Arc::clone(&proj));
        let mut worker = IntervalWorker::for_worker(sizing, RunSeed::new(9), 0, 1, proj);
        for v in 0..200 {
            shard.observe(StratumId(v % 3), f64::from(v));
            worker.observe(StratumId(v % 3), f64::from(v));
        }
        assert_eq!(shard.close_interval(), worker.close_interval());
    }

    #[test]
    fn shard_set_rearms_only_on_directive_change() {
        let proj: Arc<dyn Fn(&f64) -> f64 + Send + Sync> = Arc::new(|v| *v);
        let mut set: ShardSet<f64> = ShardSet::new(2, RunSeed::DEFAULT, proj);
        let first = set.rearm(SizingDirective::PerStratum(4), 100);
        assert_eq!(first.expect("first arm builds workers").len(), 2);
        assert!(set.rearm(SizingDirective::PerStratum(4), 100).is_none());
        assert!(set.rearm(SizingDirective::Fraction(0.5), 100).is_some());
    }

    #[test]
    fn shard_set_routes_deterministically_across_all_shards() {
        let proj: Arc<dyn Fn(&f64) -> f64 + Send + Sync> = Arc::new(|v| *v);
        let set: ShardSet<f64> = ShardSet::new(4, RunSeed::DEFAULT, proj);
        let mut hit = [0usize; 4];
        for seq in 0..4_000u64 {
            let shard = set.route(StratumId(seq as u32 % 3), seq);
            assert_eq!(shard, set.route(StratumId(seq as u32 % 3), seq));
            hit[shard] += 1;
        }
        for (shard, &count) in hit.iter().enumerate() {
            assert!(count > 700, "shard {shard} starved: {count}/4000");
        }
    }

    #[test]
    fn shard_set_merges_fixed_budgets_down_to_capacity() {
        let proj: Arc<dyn Fn(&f64) -> f64 + Send + Sync> = Arc::new(|v| *v);
        let mut set: ShardSet<f64> = ShardSet::new(2, RunSeed::new(5), proj);
        let mut workers = set
            .rearm(SizingDirective::PerStratum(6), 0)
            .expect("first arm");
        for v in 0..40 {
            workers[0].observe(StratumId(0), f64::from(v));
            workers[1].observe(StratumId(0), f64::from(v + 40));
        }
        let panes: Vec<WorkerPane<f64>> = workers
            .iter_mut()
            .map(IntervalWorker::close_interval_parts)
            .collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let PanePayload::Stratified(stats) = set.merge_panes(panes, &mut rng) else {
            panic!("stratified payload expected");
        };
        assert_eq!(stats.len(), 1);
        // Full population represented, sample held at the one budget.
        assert_eq!(stats[0].population, 80);
        assert_eq!(stats[0].sample_size(), 6);
    }

    #[test]
    fn shard_set_merges_fraction_shards_by_union() {
        let proj: Arc<dyn Fn(&f64) -> f64 + Send + Sync> = Arc::new(|v| *v);
        let mut set: ShardSet<f64> = ShardSet::new(2, RunSeed::new(6), proj);
        let mut workers = set
            .rearm(SizingDirective::Fraction(0.5), 400)
            .expect("first arm");
        // Second interval so capacities have adapted to 0.5 × arrivals.
        let mut last = 0;
        for _ in 0..2 {
            for v in 0..100 {
                workers[0].observe(StratumId(0), f64::from(v));
                workers[1].observe(StratumId(0), f64::from(v));
            }
            let panes: Vec<WorkerPane<f64>> = workers
                .iter_mut()
                .map(IntervalWorker::close_interval_parts)
                .collect();
            let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
            let PanePayload::Stratified(stats) = set.merge_panes(panes, &mut rng) else {
                panic!("stratified payload expected");
            };
            assert_eq!(stats[0].population, 200);
            last = stats[0].sample_size();
        }
        // Both shards sampled ~50 of their 100: the union carries ~100 of
        // the 200 — the fraction budget split across shards, not doubled.
        assert_eq!(last, 100);
    }

    #[test]
    fn empty_sample_union_is_consistent() {
        // StratifiedSample::union with an empty side must keep counters
        // coherent (exercised by every idle worker at interval close).
        let mut a: StratifiedSample<f64> = StratifiedSample::new();
        let b: StratifiedSample<f64> = StratifiedSample::new();
        a.union(b);
        assert_eq!(a.total_population(), 0);
        assert_eq!(a.total_sampled(), 0);
    }
}
