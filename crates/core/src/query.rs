//! Streaming-query descriptors.

use sa_types::{Confidence, WindowSpec};
use std::fmt;
use std::sync::Arc;

/// A streaming query over records of type `R`: a numeric projection
/// (what to aggregate), a sliding window, and the confidence level for
/// error bounds.
///
/// The projection is where per-record work happens — for the case studies
/// it includes parsing the serialized record, exactly the work a deployment
/// pays per item it aggregates. StreamApprox's advantage comes from paying
/// it only for sampled items.
///
/// # Example
///
/// ```
/// use streamapprox::Query;
/// use sa_types::{WindowSpec, Confidence};
///
/// let query: Query<String> = Query::new(|line: &String| line.len() as f64)
///     .with_window(WindowSpec::sliding_secs(10, 5))
///     .with_confidence(Confidence::P95);
/// assert_eq!(query.project(&"abcd".to_string()), 4.0);
/// ```
pub struct Query<R> {
    projection: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    window: WindowSpec,
    confidence: Confidence,
}

// Not derived: a derive would demand `R: Clone`, but the query only holds
// the projection by `Arc`, so it clones for any record type.
impl<R> Clone for Query<R> {
    fn clone(&self) -> Self {
        Query {
            projection: Arc::clone(&self.projection),
            window: self.window,
            confidence: self.confidence,
        }
    }
}

impl<R> Query<R> {
    /// Creates a query aggregating `projection(record)` values under the
    /// paper's default window (10 s sliding by 5 s) at 95% confidence.
    pub fn new(projection: impl Fn(&R) -> f64 + Send + Sync + 'static) -> Self {
        Query {
            projection: Arc::new(projection),
            window: WindowSpec::default(),
            confidence: Confidence::P95,
        }
    }

    /// Sets the sliding-window specification.
    #[must_use]
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = window;
        self
    }

    /// Sets the confidence level of reported error bounds.
    #[must_use]
    pub fn with_confidence(mut self, confidence: Confidence) -> Self {
        self.confidence = confidence;
        self
    }

    /// The window specification.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// The confidence level.
    pub fn confidence(&self) -> Confidence {
        self.confidence
    }

    /// Applies the projection to one record.
    #[inline]
    pub fn project(&self, record: &R) -> f64 {
        (self.projection)(record)
    }

    /// A shareable handle to the projection (runners move it into parallel
    /// stages).
    pub fn projection(&self) -> Arc<dyn Fn(&R) -> f64 + Send + Sync> {
        Arc::clone(&self.projection)
    }
}

impl<R> fmt::Debug for Query<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Query")
            .field("window", &self.window)
            .field("confidence", &self.confidence)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let q: Query<f64> = Query::new(|v| *v);
        assert_eq!(q.window(), WindowSpec::sliding_secs(10, 5));
        assert_eq!(q.confidence(), Confidence::P95);
    }

    #[test]
    fn builder_overrides() {
        let q: Query<f64> = Query::new(|v| *v * 2.0)
            .with_window(WindowSpec::tumbling_millis(500))
            .with_confidence(Confidence::P997);
        assert_eq!(q.window().slide_millis(), 500);
        assert_eq!(q.confidence(), Confidence::P997);
        assert_eq!(q.project(&3.0), 6.0);
    }

    #[test]
    fn projection_handle_shares_closure() {
        let q: Query<u32> = Query::new(|v| f64::from(*v));
        let p = q.projection();
        assert_eq!(p(&7), 7.0);
    }
}
