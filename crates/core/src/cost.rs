//! The virtual cost function (§2.3 assumption 1, §7 of the paper):
//! policies translating a user's query budget into a per-interval sample
//! size, with feedback from the intervals that already ran.

use sa_estimate::AdaptiveController;
use sa_types::{Confidence, QueryBudget, SaError};

/// What the sampler should do for the next time interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizingDirective {
    /// Target this sampling fraction (OASRS adapts per-stratum reservoir
    /// capacities to `fraction × last interval's arrivals`).
    Fraction(f64),
    /// Give every stratum a reservoir of exactly this many slots.
    PerStratum(usize),
    /// Split this total budget evenly over the strata seen.
    SharedTotal(usize),
    /// Process everything (native execution / 100% fraction).
    Everything,
}

/// Per-interval feedback a policy can react to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalFeedback {
    /// Items that arrived in the interval.
    pub items: u64,
    /// Items selected by the sampler.
    pub sampled: u64,
    /// Wall-clock nanoseconds spent processing the interval.
    pub process_nanos: u64,
    /// Relative half-width of the interval's mean estimate (margin /
    /// |value|), `None` when no estimate was produced (empty interval).
    pub relative_error: Option<f64>,
}

/// A cost policy: the paper's "virtual cost function" driving the adaptive
/// execution (§3.1, §7). Implementations are stateful — they observe every
/// interval and steer the next one.
pub trait CostPolicy: Send {
    /// The sizing for the next interval.
    fn interval_sizing(&mut self) -> SizingDirective;

    /// Feedback from the interval that just completed.
    fn observe(&mut self, feedback: &IntervalFeedback) {
        let _ = feedback;
    }
}

/// A cost policy held either by borrow or by value, so run wrappers can
/// keep handing the runtime a caller's `&mut dyn CostPolicy` while
/// budget-built sessions own their policy outright.
///
/// Everything that accepts `impl Into<PolicyHandle>` therefore takes a
/// `&mut` reference to any concrete policy, a `&mut dyn CostPolicy`, or a
/// `Box<dyn CostPolicy>` interchangeably.
pub enum PolicyHandle<'p> {
    /// A policy borrowed from the caller (the caller observes the
    /// feedback-driven state the run leaves behind).
    Borrowed(&'p mut dyn CostPolicy),
    /// A policy the runtime owns (built from a [`sa_types::QueryBudget`]).
    Owned(Box<dyn CostPolicy>),
}

impl CostPolicy for PolicyHandle<'_> {
    fn interval_sizing(&mut self) -> SizingDirective {
        match self {
            PolicyHandle::Borrowed(p) => p.interval_sizing(),
            PolicyHandle::Owned(p) => p.interval_sizing(),
        }
    }

    fn observe(&mut self, feedback: &IntervalFeedback) {
        match self {
            PolicyHandle::Borrowed(p) => p.observe(feedback),
            PolicyHandle::Owned(p) => p.observe(feedback),
        }
    }
}

impl std::fmt::Debug for PolicyHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyHandle::Borrowed(_) => f.write_str("PolicyHandle::Borrowed(..)"),
            PolicyHandle::Owned(_) => f.write_str("PolicyHandle::Owned(..)"),
        }
    }
}

impl<'p, P: CostPolicy> From<&'p mut P> for PolicyHandle<'p> {
    fn from(policy: &'p mut P) -> Self {
        PolicyHandle::Borrowed(policy)
    }
}

impl<'p> From<&'p mut dyn CostPolicy> for PolicyHandle<'p> {
    fn from(policy: &'p mut dyn CostPolicy) -> Self {
        PolicyHandle::Borrowed(policy)
    }
}

impl From<Box<dyn CostPolicy>> for PolicyHandle<'static> {
    fn from(policy: Box<dyn CostPolicy>) -> Self {
        PolicyHandle::Owned(policy)
    }
}

/// Fixed sampling fraction — the knob every throughput experiment in the
/// paper sweeps (10%–90%).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedFraction(pub f64);

impl CostPolicy for FixedFraction {
    fn interval_sizing(&mut self) -> SizingDirective {
        if self.0 >= 1.0 {
            SizingDirective::Everything
        } else {
            SizingDirective::Fraction(self.0)
        }
    }
}

/// Fixed per-stratum reservoir capacity — the paper's fixed-size-reservoir
/// configuration (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPerStratum(pub usize);

impl CostPolicy for FixedPerStratum {
    fn interval_sizing(&mut self) -> SizingDirective {
        SizingDirective::PerStratum(self.0)
    }
}

/// Accuracy-budget policy (§7-I accuracy case + the feedback mechanism of
/// §4.2.1): holds the reported relative error at or below the target by
/// growing/shrinking per-stratum capacities through an
/// [`AdaptiveController`].
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPolicy {
    controller: AdaptiveController,
    capacity: usize,
}

impl AccuracyPolicy {
    /// Creates a policy targeting `max_relative_error`, starting from
    /// `initial_capacity` slots per stratum, clamped to
    /// `[min_capacity, max_capacity]`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid target or inverted capacity bounds (see
    /// [`AdaptiveController::new`]).
    pub fn new(
        max_relative_error: f64,
        initial_capacity: usize,
        min_capacity: usize,
        max_capacity: usize,
    ) -> Self {
        AccuracyPolicy {
            controller: AdaptiveController::new(max_relative_error, min_capacity, max_capacity),
            capacity: initial_capacity.clamp(min_capacity, max_capacity),
        }
    }

    /// Current per-stratum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl CostPolicy for AccuracyPolicy {
    fn interval_sizing(&mut self) -> SizingDirective {
        SizingDirective::PerStratum(self.capacity)
    }

    fn observe(&mut self, feedback: &IntervalFeedback) {
        if let Some(err) = feedback.relative_error {
            self.capacity = self.controller.update(self.capacity, err);
        }
    }
}

/// Latency-budget policy (§7-I latency case): keeps the per-interval
/// processing time near the target by scaling the sampling fraction
/// proportionally (with an EWMA to damp noise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPolicy {
    target_nanos: f64,
    ewma_nanos: Option<f64>,
    fraction: f64,
    min_fraction: f64,
}

impl LatencyPolicy {
    /// Creates a policy targeting `target_millis` per interval, never
    /// sampling below `min_fraction`.
    ///
    /// # Panics
    ///
    /// Panics if the target is zero or `min_fraction` is outside `(0, 1]`.
    pub fn new(target_millis: u64, min_fraction: f64) -> Self {
        Self::new_micros(target_millis * 1_000, min_fraction)
    }

    /// Creates a policy with a microsecond-granularity target — for
    /// sub-millisecond interval budgets (and for tests, which need a
    /// target below the engine's irreducible per-interval overhead to
    /// exercise load shedding on any machine).
    ///
    /// # Panics
    ///
    /// Panics if the target is zero or `min_fraction` is outside `(0, 1]`.
    pub fn new_micros(target_micros: u64, min_fraction: f64) -> Self {
        assert!(target_micros > 0, "latency target must be positive");
        assert!(
            min_fraction > 0.0 && min_fraction <= 1.0,
            "minimum fraction must be in (0, 1]"
        );
        LatencyPolicy {
            target_nanos: target_micros as f64 * 1e3,
            ewma_nanos: None,
            fraction: 1.0,
            min_fraction,
        }
    }

    /// The fraction currently in force.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

impl CostPolicy for LatencyPolicy {
    fn interval_sizing(&mut self) -> SizingDirective {
        if self.fraction >= 1.0 {
            SizingDirective::Everything
        } else {
            SizingDirective::Fraction(self.fraction)
        }
    }

    fn observe(&mut self, feedback: &IntervalFeedback) {
        let observed = feedback.process_nanos as f64;
        let ewma = match self.ewma_nanos {
            Some(prev) => 0.7 * prev + 0.3 * observed,
            None => observed,
        };
        self.ewma_nanos = Some(ewma);
        if ewma > 0.0 {
            // Processing time is ~linear in sampled items; move the
            // fraction towards the ratio, bounded per step.
            let ratio = (self.target_nanos / ewma).clamp(0.5, 2.0);
            self.fraction = (self.fraction * ratio).clamp(self.min_fraction, 1.0);
        }
    }
}

/// Resource-token policy (§7-I, the Pulsar-style virtual data center):
/// every interval may spend `tokens_per_interval`; aggregating one item
/// costs `tokens_per_item`, so the sample budget is their quotient, split
/// across strata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenPolicy {
    tokens_per_interval: u64,
    tokens_per_item: u64,
}

impl TokenPolicy {
    /// Creates a token policy.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(tokens_per_interval: u64, tokens_per_item: u64) -> Self {
        assert!(tokens_per_interval > 0, "token budget must be positive");
        assert!(tokens_per_item > 0, "per-item cost must be positive");
        TokenPolicy {
            tokens_per_interval,
            tokens_per_item,
        }
    }
}

impl CostPolicy for TokenPolicy {
    fn interval_sizing(&mut self) -> SizingDirective {
        SizingDirective::SharedTotal(
            ((self.tokens_per_interval / self.tokens_per_item) as usize).max(1),
        )
    }
}

/// Builds the policy a [`QueryBudget`] implies.
///
/// # Errors
///
/// Returns the budget's validation error if its parameters are out of
/// range.
pub fn policy_for_budget(budget: QueryBudget) -> Result<Box<dyn CostPolicy>, SaError> {
    budget.validate()?;
    Ok(match budget {
        QueryBudget::SampleFraction(f) => Box::new(FixedFraction(f)),
        QueryBudget::SampleSize(n) => Box::new(FixedPerStratum(n)),
        QueryBudget::LatencyMillis(ms) => Box::new(LatencyPolicy::new(ms, 0.01)),
        QueryBudget::Accuracy {
            max_relative_error,
            confidence: _confidence,
        } => Box::new(AccuracyPolicy::new(max_relative_error, 256, 16, 1 << 20)),
        QueryBudget::ResourceTokens(tokens) => Box::new(TokenPolicy::new(tokens, 1)),
    })
}

/// The confidence a budget implies (accuracy budgets carry their own;
/// everything else defaults to 95%).
pub fn confidence_for_budget(budget: QueryBudget) -> Confidence {
    match budget {
        QueryBudget::Accuracy { confidence, .. } => confidence,
        _ => Confidence::P95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feedback(err: Option<f64>, nanos: u64) -> IntervalFeedback {
        IntervalFeedback {
            items: 1_000,
            sampled: 500,
            process_nanos: nanos,
            relative_error: err,
        }
    }

    #[test]
    fn fixed_fraction_full_is_everything() {
        assert_eq!(
            FixedFraction(1.0).interval_sizing(),
            SizingDirective::Everything
        );
        assert_eq!(
            FixedFraction(0.4).interval_sizing(),
            SizingDirective::Fraction(0.4)
        );
    }

    #[test]
    fn accuracy_policy_grows_on_violation() {
        let mut p = AccuracyPolicy::new(0.01, 100, 10, 1_000_000);
        assert_eq!(p.interval_sizing(), SizingDirective::PerStratum(100));
        p.observe(&feedback(Some(0.05), 0));
        let SizingDirective::PerStratum(n) = p.interval_sizing() else {
            panic!("expected per-stratum sizing")
        };
        assert!(n > 100, "capacity did not grow: {n}");
    }

    #[test]
    fn accuracy_policy_ignores_empty_intervals() {
        let mut p = AccuracyPolicy::new(0.01, 100, 10, 1_000);
        p.observe(&feedback(None, 0));
        assert_eq!(p.capacity(), 100);
    }

    #[test]
    fn latency_policy_shrinks_fraction_when_slow() {
        let mut p = LatencyPolicy::new(10, 0.05); // 10ms target
        p.observe(&feedback(None, 40_000_000)); // 40ms observed
        assert!(p.fraction() < 1.0);
        let f1 = p.fraction();
        p.observe(&feedback(None, 40_000_000));
        assert!(p.fraction() < f1, "fraction should keep shrinking");
    }

    #[test]
    fn latency_policy_recovers_when_fast() {
        let mut p = LatencyPolicy::new(10, 0.05);
        for _ in 0..10 {
            p.observe(&feedback(None, 100_000_000));
        }
        let low = p.fraction();
        for _ in 0..40 {
            p.observe(&feedback(None, 1_000_000)); // 1ms: far under target
        }
        assert!(p.fraction() > low);
    }

    #[test]
    fn latency_fraction_respects_floor() {
        let mut p = LatencyPolicy::new(1, 0.2);
        for _ in 0..50 {
            p.observe(&feedback(None, 1_000_000_000));
        }
        assert!((p.fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn token_policy_divides_budget() {
        let mut p = TokenPolicy::new(1_000, 4);
        assert_eq!(p.interval_sizing(), SizingDirective::SharedTotal(250));
    }

    #[test]
    fn budget_mapping_covers_all_variants() {
        for budget in [
            QueryBudget::SampleFraction(0.5),
            QueryBudget::SampleSize(100),
            QueryBudget::LatencyMillis(100),
            QueryBudget::Accuracy {
                max_relative_error: 0.01,
                confidence: Confidence::P997,
            },
            QueryBudget::ResourceTokens(500),
        ] {
            assert!(policy_for_budget(budget).is_ok(), "{budget}");
        }
        assert!(policy_for_budget(QueryBudget::SampleFraction(0.0)).is_err());
        assert_eq!(
            confidence_for_budget(QueryBudget::Accuracy {
                max_relative_error: 0.01,
                confidence: Confidence::P997,
            }),
            Confidence::P997
        );
        assert_eq!(
            confidence_for_budget(QueryBudget::SampleFraction(0.5)),
            Confidence::P95
        );
    }
}
