//! The aggregator consumer path: StreamApprox as a plain in-process loop.
//!
//! The paper's deployment (§2.1, §4.1) puts a stream aggregator (Apache
//! Kafka) in front of the stream engine; the smallest real deployment is a
//! consumer polling that aggregator and sampling inline — no dataset
//! formation, no operator threads, just OASRS between the consumer loop
//! and the window estimator. [`AggregatedEngine`] is that path as an
//! [`Engine`](crate::Engine): it embeds the shared
//! [`ApproxRuntime`](crate::ApproxRuntime) directly (sampler pool,
//! cost-policy feedback, window assembly) and adds only slide-interval
//! pane bookkeeping, making it the cheapest substrate for live
//! [`crate::ApproxSession`]s fed from `sa_aggregator::Consumer` —
//! see [`crate::ApproxSession::ingest_consumer`].
//!
//! Unlike the batched engine it holds no per-pane item buffer: every
//! pushed item meets the sampler immediately and is dropped or retained
//! on the spot, so memory stays bounded by reservoir capacity even for
//! unbounded streams.

use crate::checkpoint::RecordCodec;
use crate::combine::PanePayload;
use crate::cost::{PolicyHandle, SizingDirective};
use crate::engine::Engine;
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::runtime::{ApproxRuntime, ExactAccumulator, PaneCursor};
use sa_estimate::StratumStats;
use sa_sampling::OasrsSampler;
use sa_types::wire::put_varint;
use sa_types::{
    EngineSnapshot, EventTime, RunSeed, SaError, StreamItem, Window, WireDecode, WireEncode,
    WireReader,
};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the aggregated (consumer-path) engine for one
/// session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregatedConfig {
    /// Seed for every sampling decision.
    pub seed: RunSeed,
    /// Sampling-interval length in event-time milliseconds; `None` uses
    /// the query's window slide, the paper's interval choice (§5.5).
    pub pane_interval_ms: Option<i64>,
}

impl AggregatedConfig {
    /// The default configuration: default seed, slide-sized panes.
    pub fn new() -> Self {
        AggregatedConfig {
            seed: RunSeed::DEFAULT,
            pane_interval_ms: None,
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: impl Into<RunSeed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Overrides the sampling-interval length.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive.
    #[must_use]
    pub fn with_pane_interval_ms(mut self, ms: i64) -> Self {
        assert!(ms > 0, "pane interval must be positive");
        self.pane_interval_ms = Some(ms);
        self
    }
}

impl Default for AggregatedConfig {
    fn default() -> Self {
        AggregatedConfig::new()
    }
}

/// The in-flight state of the current pane.
enum PaneState<R> {
    /// No pane open (before the first item, and transiently at close).
    Idle,
    /// Sampling under a budget with a sampler borrowed from the runtime's
    /// pool.
    Sampling(OasrsSampler<R>),
    /// Exact accumulation (native execution / `Everything` directive).
    Exact(ExactAccumulator<R>),
}

/// The consumer-path substrate: single-threaded, inline, per-push
/// sampling over the shared [`ApproxRuntime`].
pub(crate) struct AggregatedEngine<'p, R> {
    runtime: ApproxRuntime<'p, R>,
    proj: Arc<dyn Fn(&R) -> f64 + Send + Sync>,
    cursor: PaneCursor,
    state: PaneState<R>,
    pane_arrived: u64,
    prev_pane_arrived: usize,
    codec: Option<RecordCodec<R>>,
}

impl<'p, R> AggregatedEngine<'p, R> {
    pub(crate) fn new(
        config: AggregatedConfig,
        query: Query<R>,
        policy: impl Into<PolicyHandle<'p>>,
        codec: Option<RecordCodec<R>>,
    ) -> Self {
        let pane_ms = config
            .pane_interval_ms
            .unwrap_or_else(|| query.window().slide_millis());
        let cursor = PaneCursor::new(pane_ms, query.window());
        let runtime = ApproxRuntime::new(&query, policy, config.seed, 1);
        AggregatedEngine {
            runtime,
            proj: query.projection(),
            cursor,
            state: PaneState::Idle,
            pane_arrived: 0,
            prev_pane_arrived: 0,
            codec,
        }
    }

    fn require_codec(&self) -> Result<RecordCodec<R>, SaError> {
        self.codec.ok_or_else(|| {
            SaError::Checkpoint(
                "engine built without a record codec; enable with StreamApprox::checkpointable"
                    .into(),
            )
        })
    }

    /// Opens the cursor's current pane: consults the cost policy and
    /// arms either a pooled sampler (capacity adaptation carries across
    /// panes) or an exact accumulator.
    fn open_pane(&mut self) {
        self.state = match self.runtime.interval_sizing() {
            SizingDirective::Everything => {
                PaneState::Exact(ExactAccumulator::new(Arc::clone(&self.proj)))
            }
            directive => PaneState::Sampling(
                self.runtime
                    .checkout_samplers(directive, self.prev_pane_arrived)
                    .pop()
                    .expect("single-worker pool"),
            ),
        };
        self.pane_arrived = 0;
    }

    /// Closes the current pane into per-stratum statistics, feeds the
    /// policy, and advances the watermark to the pane end.
    fn close_pane(&mut self) {
        let (start, end) = self.cursor.pane().expect("close_pane needs an open pane");
        let pane = Window::new(EventTime::from_millis(start), EventTime::from_millis(end));
        // Only the interval-close work is clocked: per-item observes stay
        // clock-free so push costs no syscalls, at the price of
        // process_nanos under-reporting the (tiny, O(1)-per-item) observe
        // cost on this engine.
        let closing = Instant::now();
        let stats = match std::mem::replace(&mut self.state, PaneState::Idle) {
            PaneState::Sampling(mut sampler) => {
                let sample = sampler.finish_interval();
                let proj = &self.proj;
                let stats = sample
                    .iter()
                    .map(|stratum| StratumStats::from_sample(stratum, |r| proj(r)))
                    .collect();
                self.runtime.checkin_samplers(vec![sampler]);
                stats
            }
            PaneState::Exact(mut acc) => acc.close_interval(),
            PaneState::Idle => Vec::new(),
        };
        let nanos = closing.elapsed().as_nanos() as u64;
        self.runtime.ingest_interval(
            pane,
            PanePayload::Stratified(stats),
            self.pane_arrived,
            nanos,
        );
        self.runtime.close_interval(pane.end);
        self.prev_pane_arrived = self.pane_arrived as usize;
    }
}

impl<R> Engine<R> for AggregatedEngine<'_, R> {
    fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError> {
        // The shared cursor aligns the first pane to the first item's
        // interval, yields quiet intervals as empty panes (each with its
        // own policy consultation, like the engines' empty
        // micro-batches), and jumps oversized gaps.
        let t = item.time.as_millis();
        while self.cursor.needs_close(t) {
            if matches!(self.state, PaneState::Idle) {
                self.open_pane();
            }
            self.close_pane();
            self.cursor.next(t);
        }
        if matches!(self.state, PaneState::Idle) {
            self.open_pane();
        }
        match &mut self.state {
            PaneState::Sampling(sampler) => sampler.observe(item.stratum, item.value),
            PaneState::Exact(acc) => acc.observe(item.stratum, &item.value),
            PaneState::Idle => unreachable!("a pane is open whenever an item is observed"),
        }
        self.pane_arrived += 1;
        Ok(())
    }

    fn push_chunk(&mut self, mut items: Vec<StreamItem<R>>) -> Result<(), SaError> {
        // The batch fast path: pane-cursor checks run once per pane
        // portion instead of once per item, and each portion goes to the
        // sampler/accumulator as one slice. Identical pane/RNG sequence to
        // the per-item loop, so results are bit-for-bit the same.
        while !items.is_empty() {
            let t = items[0].time.as_millis();
            while self.cursor.needs_close(t) {
                if matches!(self.state, PaneState::Idle) {
                    self.open_pane();
                }
                self.close_pane();
                self.cursor.next(t);
            }
            if matches!(self.state, PaneState::Idle) {
                self.open_pane();
            }
            let (_, end) = self.cursor.pane().expect("pane open after needs_close");
            let n = items.partition_point(|it| it.time.as_millis() < end);
            let rest = items.split_off(n);
            self.pane_arrived += items.len() as u64;
            match &mut self.state {
                PaneState::Sampling(sampler) => sampler.observe_batch(&mut items),
                PaneState::Exact(acc) => acc.observe_slice(&items),
                PaneState::Idle => unreachable!("a pane is open whenever items are observed"),
            }
            items = rest;
        }
        Ok(())
    }

    fn poll_windows(&mut self) -> Vec<WindowResult> {
        self.runtime.take_windows()
    }

    fn panes_closed(&self) -> u64 {
        self.runtime.panes_closed()
    }

    fn snapshot(&mut self) -> Result<EngineSnapshot, SaError> {
        let codec = self.require_codec()?;
        let mut state = Vec::new();
        self.cursor.start().encode(&mut state);
        put_varint(&mut state, self.pane_arrived);
        put_varint(&mut state, self.prev_pane_arrived as u64);
        match &self.state {
            PaneState::Idle => 0u8.encode(&mut state),
            PaneState::Sampling(sampler) => {
                1u8.encode(&mut state);
                sampler.encode_state_with(&mut state, &mut |v, out| (codec.encode)(v, out));
            }
            PaneState::Exact(acc) => {
                2u8.encode(&mut state);
                acc.encode_state(&mut state);
            }
        }
        self.runtime.encode_state(codec, &mut state);
        Ok(EngineSnapshot {
            engine: "aggregated".into(),
            pane: self.cursor.start(),
            state,
        })
    }

    fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), SaError> {
        let codec = self.require_codec()?;
        if snapshot.engine != "aggregated" {
            return Err(SaError::Checkpoint(format!(
                "cannot restore a '{}' snapshot into the aggregated engine",
                snapshot.engine
            )));
        }
        let mut r = WireReader::new(&snapshot.state);
        self.cursor.restore_start(Option::decode(&mut r)?);
        self.pane_arrived = r.read_varint()?;
        self.prev_pane_arrived = usize::decode(&mut r)?;
        self.state = match u8::decode(&mut r)? {
            0 => PaneState::Idle,
            // A mid-pane sampler was checked out of the runtime pool when
            // the snapshot was taken, so the pool state restored below has
            // it missing — close_pane checks it back in, as in the
            // original run.
            1 => PaneState::Sampling(OasrsSampler::decode_state_with(&mut r, &mut |r| {
                (codec.decode)(r)
            })?),
            2 => PaneState::Exact(ExactAccumulator::decode_state(
                &mut r,
                Arc::clone(&self.proj),
            )?),
            tag => {
                return Err(SaError::Wire(format!("unknown pane-state tag {tag}")));
            }
        };
        self.runtime.restore_state(&mut r, codec)?;
        r.finish()
    }

    fn finish(mut self: Box<Self>) -> RunOutput {
        if !matches!(self.state, PaneState::Idle) {
            self.close_pane();
        }
        self.runtime.finish()
    }
}
