//! Stratifying streams that do not arrive pre-stratified (§7-II).
//!
//! The design assumes the input is stratified by source (§2.3); §7-II
//! sketches what to do otherwise: "in more complex cases where we cannot
//! classify strata based on the sources, we need a pre-processing step to
//! stratify the input data stream", citing bootstrap estimation over a
//! sample of the stream. This module implements that pre-processing step:
//!
//! * [`QuantileStratifier`] — trains value-quantile cut points on a
//!   warm-up sample (the bootstrap estimate of the distribution) and then
//!   buckets arriving items in O(log k); items with similar magnitudes
//!   share a stratum, which is what stratified estimation needs for
//!   variance reduction.
//! * [`restratify`] — rewrites a stream's stratum ids using any
//!   classifier, leaving payloads and timestamps untouched.

use sa_types::{StratumId, StreamItem};

/// Assigns strata by value quantiles learned from a warm-up sample.
///
/// # Example
///
/// ```
/// use streamapprox::QuantileStratifier;
///
/// // Learn terciles from a warm-up sample.
/// let warmup: Vec<f64> = (0..300).map(f64::from).collect();
/// let stratifier = QuantileStratifier::train(&warmup, 3);
/// assert_eq!(stratifier.num_strata(), 3);
/// assert_eq!(stratifier.stratum_of(5.0).0, 0);
/// assert_eq!(stratifier.stratum_of(150.0).0, 1);
/// assert_eq!(stratifier.stratum_of(299.0).0, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileStratifier {
    /// Upper cut point of each stratum except the last (sorted).
    cuts: Vec<f64>,
}

impl QuantileStratifier {
    /// Learns `strata` equal-mass buckets from a warm-up sample.
    ///
    /// # Panics
    ///
    /// Panics if the warm-up sample is empty or `strata` is zero.
    pub fn train(warmup: &[f64], strata: usize) -> Self {
        assert!(!warmup.is_empty(), "warm-up sample must be non-empty");
        assert!(strata > 0, "need at least one stratum");
        let mut sorted: Vec<f64> = warmup.iter().copied().filter(|v| v.is_finite()).collect();
        assert!(
            !sorted.is_empty(),
            "warm-up sample must contain finite values"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        let cuts = (1..strata)
            .map(|k| {
                let idx = (k * n / strata).min(n - 1);
                sorted[idx]
            })
            .collect();
        QuantileStratifier { cuts }
    }

    /// Number of strata this classifier produces.
    pub fn num_strata(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The stratum a value belongs to.
    pub fn stratum_of(&self, value: f64) -> StratumId {
        // partition_point gives the count of cuts <= value, i.e. the bucket.
        let bucket = self.cuts.partition_point(|c| *c <= value);
        StratumId(bucket as u32)
    }
}

/// Rewrites every item's stratum id using `classify` over a projected
/// feature, preserving payloads and event times — the pre-processing step
/// that turns an unlabeled stream into OASRS-ready input.
pub fn restratify<R, F, C>(
    items: Vec<StreamItem<R>>,
    mut feature: F,
    mut classify: C,
) -> Vec<StreamItem<R>>
where
    F: FnMut(&R) -> f64,
    C: FnMut(f64) -> StratumId,
{
    items
        .into_iter()
        .map(|item| {
            let stratum = classify(feature(&item.value));
            StreamItem::new(stratum, item.time, item.value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sa_estimate::{accuracy_loss, estimate_sum, stats_of};
    use sa_sampling::{OasrsSampler, SizingPolicy};
    use sa_types::{Confidence, EventTime};

    #[test]
    fn quantile_buckets_are_balanced() {
        let warmup: Vec<f64> = (0..1_000).map(f64::from).collect();
        let s = QuantileStratifier::train(&warmup, 4);
        let mut counts = [0usize; 4];
        for v in 0..1_000 {
            counts[s.stratum_of(f64::from(v)).index()] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!((c as i64 - 250).abs() <= 1, "bucket {k}: {c}");
        }
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_buckets() {
        let s = QuantileStratifier::train(&[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(s.stratum_of(-100.0).0, 0);
        assert_eq!(s.stratum_of(100.0).0, 1);
    }

    #[test]
    fn single_stratum_maps_everything_to_zero() {
        let s = QuantileStratifier::train(&[5.0], 1);
        assert_eq!(s.num_strata(), 1);
        assert_eq!(s.stratum_of(f64::MIN).0, 0);
        assert_eq!(s.stratum_of(f64::MAX).0, 0);
    }

    #[test]
    #[should_panic(expected = "warm-up sample must be non-empty")]
    fn empty_warmup_rejected() {
        let _ = QuantileStratifier::train(&[], 3);
    }

    #[test]
    fn restratify_preserves_payload_and_time() {
        let items = vec![
            StreamItem::new(StratumId(0), EventTime::from_millis(5), 10.0),
            StreamItem::new(StratumId(0), EventTime::from_millis(6), 99.0),
        ];
        let s = QuantileStratifier::train(&[0.0, 50.0, 100.0], 2);
        let out = restratify(items, |v| *v, |f| s.stratum_of(f));
        assert_eq!(out[0].stratum.0, 0);
        assert_eq!(out[1].stratum.0, 1);
        assert_eq!(out[0].value, 10.0);
        assert_eq!(out[1].time, EventTime::from_millis(6));
    }

    /// The point of §7-II: on a heavy-tailed *unlabeled* stream, quantile
    /// stratification + OASRS beats unstratified reservoir sampling at the
    /// same budget.
    #[test]
    fn stratification_reduces_error_on_unlabeled_mixture() {
        let mut rng = SmallRng::seed_from_u64(77);
        // Unlabeled mixture: 95% small values, 5% huge ones.
        let raw: Vec<StreamItem<f64>> = (0..20_000)
            .map(|i| {
                let v = if rng.gen::<f64>() < 0.95 {
                    rng.gen_range(0.0..10.0)
                } else {
                    rng.gen_range(5_000.0..15_000.0)
                };
                StreamItem::new(StratumId(0), EventTime::from_millis(i), v)
            })
            .collect();
        let true_sum: f64 = raw.iter().map(|i| i.value).sum();
        let warmup: Vec<f64> = raw.iter().take(2_000).map(|i| i.value).collect();
        let stratifier = QuantileStratifier::train(&warmup, 8);
        let stratified = restratify(raw.clone(), |v| *v, |f| stratifier.stratum_of(f));

        const TRIALS: u64 = 40;
        const BUDGET: usize = 400;
        let mut flat_err = 0.0;
        let mut strat_err = 0.0;
        for seed in 0..TRIALS {
            let mut flat = OasrsSampler::new(SizingPolicy::SharedTotal(BUDGET), seed);
            for item in &raw {
                flat.observe(item.stratum, item.value);
            }
            let sample = flat.finish_interval();
            let est = estimate_sum(&stats_of(&sample, |v| *v), Confidence::P95);
            flat_err += accuracy_loss(est.value, true_sum);

            let mut strat = OasrsSampler::new(SizingPolicy::SharedTotal(BUDGET), seed);
            for item in &stratified {
                strat.observe(item.stratum, item.value);
            }
            let sample = strat.finish_interval();
            let est = estimate_sum(&stats_of(&sample, |v| *v), Confidence::P95);
            strat_err += accuracy_loss(est.value, true_sum);
        }
        assert!(
            strat_err < flat_err,
            "stratified error {} not below flat error {}",
            strat_err / TRIALS as f64,
            flat_err / TRIALS as f64
        );
    }
}
