//! Combining pane payloads into per-window `output ± error bound` results.

use crate::output::WindowResult;
use sa_estimate::{
    estimate_mean, estimate_mean_by_stratum, estimate_sum, estimate_sum_by_stratum, srs_mean,
    srs_mean_by_stratum, srs_sum, srs_sum_by_stratum, SrsSample, StratumStats,
};
use sa_types::{Confidence, StratumId, Window};
use std::collections::BTreeMap;

/// What one pane (one batch interval / one slide interval) produced, per
/// sampling worker.
#[derive(Debug, Clone, PartialEq)]
pub enum PanePayload {
    /// Per-stratum sufficient statistics — produced by OASRS, STS and
    /// native execution.
    Stratified(Vec<StratumStats>),
    /// An unstratified simple random sample of projected values — produced
    /// by the SRS baseline, which forgets stratum populations by design.
    Srs {
        /// `(stratum, projected value)` pairs of the sampled items.
        samples: Vec<(StratumId, f64)>,
        /// How many items arrived in the pane.
        population: u64,
    },
}

impl PanePayload {
    /// Items that arrived in the pane.
    pub fn population(&self) -> u64 {
        match self {
            PanePayload::Stratified(stats) => stats.iter().map(|s| s.population).sum(),
            PanePayload::Srs { population, .. } => *population,
        }
    }

    /// Items that were sampled/aggregated in the pane.
    pub fn sampled(&self) -> u64 {
        match self {
            PanePayload::Stratified(stats) => stats.iter().map(|s| s.sample_size()).sum(),
            PanePayload::Srs { samples, .. } => samples.len() as u64,
        }
    }
}

/// Merges the per-stratum statistics of all of a window's panes (same
/// stratum across panes/workers merges via Welford/Chan) and estimates all
/// four aggregates.
fn combine_stratified(
    window: Window,
    payloads: Vec<Vec<StratumStats>>,
    confidence: Confidence,
) -> WindowResult {
    // Parallel workers deliver their pane statistics in scheduler-dependent
    // order, and floating-point merges are not associative — impose a
    // canonical order so a run is bit-for-bit reproducible from its seed.
    let mut all: Vec<StratumStats> = payloads.into_iter().flatten().collect();
    all.sort_by_key(|s| {
        (
            s.stratum,
            s.population,
            s.acc.count(),
            s.acc.mean().to_bits(),
            s.acc.sample_variance().to_bits(),
        )
    });
    let mut merged: BTreeMap<StratumId, StratumStats> = BTreeMap::new();
    for stats in all {
        match merged.get_mut(&stats.stratum) {
            Some(m) => m.merge(&stats),
            None => {
                merged.insert(stats.stratum, stats);
            }
        }
    }
    let stats: Vec<StratumStats> = merged.into_values().collect();
    WindowResult {
        window,
        sum: estimate_sum(&stats, confidence),
        mean: estimate_mean(&stats, confidence),
        sum_by_stratum: estimate_sum_by_stratum(&stats, confidence),
        mean_by_stratum: estimate_mean_by_stratum(&stats, confidence),
        degraded: false,
        lost_items: 0,
    }
}

/// Concatenates a window's SRS pane samples (the per-pane fraction is
/// constant, so the union is a simple random sample of the window) and
/// estimates all four aggregates with the SRS/domain estimators.
fn combine_srs(
    window: Window,
    parts: Vec<(Vec<(StratumId, f64)>, u64)>,
    confidence: Confidence,
) -> WindowResult {
    let mut samples = Vec::new();
    let mut population = 0u64;
    for (s, p) in parts {
        samples.extend(s);
        population += p;
    }
    let sample = SrsSample::new(samples, population);
    WindowResult {
        window,
        sum: srs_sum(&sample, |v| *v, confidence),
        mean: srs_mean(&sample, |v| *v, confidence),
        sum_by_stratum: srs_sum_by_stratum(&sample, |v| *v, confidence),
        mean_by_stratum: srs_mean_by_stratum(&sample, |v| *v, confidence),
        degraded: false,
        lost_items: 0,
    }
}

/// Combines a completed window's pane payloads into a [`WindowResult`].
/// All payloads of one run have the same variant; mixing is a programming
/// error.
///
/// # Panics
///
/// Panics if stratified and SRS payloads are mixed within one window.
pub fn combine_window(
    window: Window,
    payloads: Vec<PanePayload>,
    confidence: Confidence,
) -> WindowResult {
    let mut stratified = Vec::new();
    let mut srs = Vec::new();
    for p in payloads {
        match p {
            PanePayload::Stratified(stats) => stratified.push(stats),
            PanePayload::Srs {
                samples,
                population,
            } => srs.push((samples, population)),
        }
    }
    match (stratified.is_empty(), srs.is_empty()) {
        (false, true) => combine_stratified(window, stratified, confidence),
        (true, false) => combine_srs(window, srs, confidence),
        (true, true) => combine_stratified(window, Vec::new(), confidence),
        (false, false) => panic!("mixed stratified and SRS panes in one window"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_estimate::Welford;
    use sa_types::EventTime;

    fn window() -> Window {
        Window::new(EventTime::from_secs(0), EventTime::from_secs(10))
    }

    fn stats(id: u32, pop: u64, values: &[f64]) -> StratumStats {
        let acc: Welford = values.iter().copied().collect();
        StratumStats::from_parts(StratumId(id), pop, acc)
    }

    #[test]
    fn stratified_panes_merge_per_stratum() {
        // Two panes, same stratum, fully sampled: exact sum 1+2+3+4.
        let payloads = vec![
            PanePayload::Stratified(vec![stats(0, 2, &[1.0, 2.0])]),
            PanePayload::Stratified(vec![stats(0, 2, &[3.0, 4.0])]),
        ];
        let r = combine_window(window(), payloads, Confidence::P95);
        assert!((r.sum.value - 10.0).abs() < 1e-12);
        assert_eq!(r.sum.bound.margin(), 0.0);
        assert!((r.mean.value - 2.5).abs() < 1e-12);
        assert_eq!(r.sum_by_stratum.len(), 1);
    }

    #[test]
    fn stratified_weights_apply_after_merge() {
        // One stratum: 4 sampled of 8 across two panes → weight 2.
        let payloads = vec![
            PanePayload::Stratified(vec![stats(0, 4, &[1.0, 2.0])]),
            PanePayload::Stratified(vec![stats(0, 4, &[3.0, 4.0])]),
        ];
        let r = combine_window(window(), payloads, Confidence::P95);
        assert!((r.sum.value - 20.0).abs() < 1e-12);
        assert_eq!(r.sum.sample_size, 4);
        assert_eq!(r.sum.population_size, 8);
    }

    #[test]
    fn srs_panes_concatenate() {
        let payloads = vec![
            PanePayload::Srs {
                samples: vec![(StratumId(0), 2.0)],
                population: 2,
            },
            PanePayload::Srs {
                samples: vec![(StratumId(0), 4.0)],
                population: 2,
            },
        ];
        let r = combine_window(window(), payloads, Confidence::P95);
        // 2 sampled of 4 → HT expansion (4/2)·6 = 12.
        assert!((r.sum.value - 12.0).abs() < 1e-12);
        assert!((r.mean.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_exact_zero() {
        let r = combine_window(window(), vec![], Confidence::P95);
        assert_eq!(r.sum.value, 0.0);
        assert_eq!(r.sum.bound.margin(), 0.0);
        assert!(r.sum_by_stratum.is_empty());
    }

    #[test]
    #[should_panic(expected = "mixed stratified and SRS panes")]
    fn mixed_payloads_rejected() {
        let payloads = vec![
            PanePayload::Stratified(vec![]),
            PanePayload::Srs {
                samples: vec![],
                population: 0,
            },
        ];
        let _ = combine_window(window(), payloads, Confidence::P95);
    }

    #[test]
    fn payload_counters() {
        let p = PanePayload::Stratified(vec![stats(0, 10, &[1.0, 2.0])]);
        assert_eq!(p.population(), 10);
        assert_eq!(p.sampled(), 2);
        let s = PanePayload::Srs {
            samples: vec![(StratumId(0), 1.0)],
            population: 5,
        };
        assert_eq!(s.population(), 5);
        assert_eq!(s.sampled(), 1);
    }
}
