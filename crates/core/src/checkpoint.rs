//! Bounded-error checkpoint & resume: snapshotting a live session's
//! mergeable state and replaying the tail of the stream after a restart.
//!
//! The paper's samplers make fault tolerance *cheap*: everything a window
//! needs is mergeable, O(sampling budget) state — reservoirs, per-stratum
//! statistics, counters — never the stream itself. A checkpoint is that
//! state serialized ([`sa_types::SessionSnapshot`] wrapping an engine's
//! [`sa_types::EngineSnapshot`]), sealed in the versioned snapshot frame
//! (`sa_net::snapshot`), and handed to a [`CheckpointStore`]. A restart
//! rebuilds the engine from the same query and configuration, restores the
//! serialized state, and — when the input is an `sa-aggregator` log —
//! seeks the consumer back to the offsets recorded in the snapshot, so the
//! resumed run continues draw-for-draw where the snapshot left off.
//!
//! # Snapshot-format versioning rules
//!
//! Serialized snapshots outlive processes, so their layout is governed by
//! `sa_net::SNAPSHOT_VERSION`, not the live-wire version:
//!
//! * Engine `state` payloads are tag-free and layout-pinned: **any**
//!   change — a new field, a reorder, a meaning change — must bump
//!   `sa_net::SNAPSHOT_VERSION`.
//! * Readers reject versions they do not speak; they never guess. A
//!   misread snapshot silently corrupts the resumed stream, which is
//!   strictly worse than restarting cold.
//! * An engine refuses to restore state produced under a different engine
//!   name (`EngineSnapshot::engine`), so a `"batched"` snapshot cannot be
//!   poured into a sharded engine even when the byte layouts happen to
//!   line up.
//!
//! What is deliberately *not* in a snapshot: wall-clock state (elapsed
//! run time restarts at resume) and cost-policy adaptation history (the
//! policy re-adapts within an interval or two; persisting it would couple
//! the snapshot format to every policy implementation).

use crate::combine::PanePayload;
use crate::cost::SizingDirective;
use crate::output::WindowResult;
use sa_types::wire::put_varint;
use sa_types::{SaError, SessionSnapshot, WireDecode, WireEncode, WireReader};
use std::fs;
use std::path::{Path, PathBuf};

/// A pair of function pointers serializing one record type `R` for
/// engine snapshots.
///
/// Engines place no codec bound on `R` in normal operation — records only
/// need to flow through the projection. Checkpointing is the one feature
/// that must write *records* (mid-pane reservoir contents) to disk, so it
/// is opt-in: [`crate::StreamApprox::checkpointable`] requires
/// `R: WireEncode + WireDecode` and injects this codec into the engine it
/// builds. An engine without a codec answers snapshot requests with
/// [`SaError::Checkpoint`].
pub struct RecordCodec<R> {
    pub(crate) encode: fn(&R, &mut Vec<u8>),
    pub(crate) decode: fn(&mut WireReader<'_>) -> Result<R, SaError>,
}

// Not derived: fn pointers are Copy for any `R`, but a derive would demand
// `R: Copy`.
impl<R> Clone for RecordCodec<R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<R> Copy for RecordCodec<R> {}

impl<R: WireEncode + WireDecode> RecordCodec<R> {
    /// The codec for any wire-codable record type.
    pub fn new() -> Self {
        RecordCodec {
            encode: |r, out| r.encode(out),
            decode: R::decode,
        }
    }
}

impl<R: WireEncode + WireDecode> Default for RecordCodec<R> {
    fn default() -> Self {
        RecordCodec::new()
    }
}

/// Where sealed snapshots live between a crash and the resume.
///
/// A store holds *one* snapshot — the latest; bounded-error recovery never
/// needs history, because each snapshot supersedes the previous one
/// entirely (state is mergeable and self-contained, not a delta chain).
pub trait CheckpointStore {
    /// Persists a sealed snapshot, replacing any previous one. The store
    /// must be atomic: a crash mid-save leaves the previous snapshot
    /// intact, never a torn file.
    ///
    /// # Errors
    ///
    /// [`SaError::Checkpoint`] if the snapshot cannot be persisted.
    fn save(&mut self, sealed: &[u8]) -> Result<(), SaError>;

    /// Loads the latest sealed snapshot, `None` when none was ever saved.
    ///
    /// # Errors
    ///
    /// [`SaError::Checkpoint`] if a snapshot exists but cannot be read.
    fn load(&self) -> Result<Option<Vec<u8>>, SaError>;
}

/// A file-backed [`CheckpointStore`]: one snapshot file, replaced
/// atomically through a write-to-temporary-then-rename.
///
/// # Example
///
/// ```no_run
/// use streamapprox::{CheckpointStore, FileCheckpointStore};
///
/// let mut store = FileCheckpointStore::new("/var/lib/app/session.snapshot");
/// store.save(b"sealed snapshot bytes").unwrap();
/// assert!(store.load().unwrap().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct FileCheckpointStore {
    path: PathBuf,
}

impl FileCheckpointStore {
    /// A store persisting to `path`. The parent directory must exist; the
    /// file itself need not.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileCheckpointStore { path: path.into() }
    }

    /// The snapshot file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl CheckpointStore for FileCheckpointStore {
    fn save(&mut self, sealed: &[u8]) -> Result<(), SaError> {
        // Write-then-rename so a crash mid-save can never tear the one
        // snapshot the next process will trust.
        let tmp = self.path.with_extension("snapshot.tmp");
        fs::write(&tmp, sealed)
            .map_err(|e| SaError::Checkpoint(format!("writing {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &self.path)
            .map_err(|e| SaError::Checkpoint(format!("replacing {}: {e}", self.path.display())))
    }

    fn load(&self) -> Result<Option<Vec<u8>>, SaError> {
        match fs::read(&self.path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(SaError::Checkpoint(format!(
                "reading {}: {e}",
                self.path.display()
            ))),
        }
    }
}

/// An in-memory [`CheckpointStore`] for tests and single-process
/// kill/restore drills.
#[derive(Debug, Default, Clone)]
pub struct MemoryCheckpointStore {
    latest: Option<Vec<u8>>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryCheckpointStore::default()
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&mut self, sealed: &[u8]) -> Result<(), SaError> {
        self.latest = Some(sealed.to_vec());
        Ok(())
    }

    fn load(&self) -> Result<Option<Vec<u8>>, SaError> {
        Ok(self.latest.clone())
    }
}

/// Encodes and seals a [`SessionSnapshot`] into the at-rest snapshot
/// frame — the bytes a [`CheckpointStore`] persists.
///
/// # Errors
///
/// [`SaError::Checkpoint`] if the encoded snapshot exceeds
/// [`sa_net::MAX_SNAPSHOT`].
pub fn seal_session_snapshot(snapshot: &SessionSnapshot) -> Result<Vec<u8>, SaError> {
    sa_net::seal_snapshot(&snapshot.to_wire_bytes())
}

/// Opens a sealed snapshot frame back into a [`SessionSnapshot`].
///
/// # Errors
///
/// [`SaError::Checkpoint`] on a bad frame (magic, version, length) and
/// [`SaError::Wire`] on a corrupt payload.
pub fn open_session_snapshot(sealed: &[u8]) -> Result<SessionSnapshot, SaError> {
    SessionSnapshot::from_wire_bytes(sa_net::open_snapshot(sealed)?)
}

// --- Core-local snapshot codecs -------------------------------------------
//
// These types live in this crate (not sa-types), so their wire layouts are
// defined here, next to the snapshot code that is their only consumer.
// They follow the same rules as `sa_types::wire`: tag-free layouts, strict
// decoding, and any change bumps `sa_net::SNAPSHOT_VERSION`.

pub(crate) fn encode_directive(d: &SizingDirective, out: &mut Vec<u8>) {
    match d {
        SizingDirective::Fraction(f) => {
            1u8.encode(out);
            f.encode(out);
        }
        SizingDirective::PerStratum(n) => {
            2u8.encode(out);
            n.encode(out);
        }
        SizingDirective::SharedTotal(n) => {
            3u8.encode(out);
            n.encode(out);
        }
        SizingDirective::Everything => 4u8.encode(out),
    }
}

pub(crate) fn decode_directive(r: &mut WireReader<'_>) -> Result<SizingDirective, SaError> {
    match u8::decode(r)? {
        1 => Ok(SizingDirective::Fraction(f64::decode(r)?)),
        2 => Ok(SizingDirective::PerStratum(usize::decode(r)?)),
        3 => Ok(SizingDirective::SharedTotal(usize::decode(r)?)),
        4 => Ok(SizingDirective::Everything),
        tag => Err(SaError::Wire(format!("unknown sizing-directive tag {tag}"))),
    }
}

pub(crate) fn encode_pane_payload(p: &PanePayload, out: &mut Vec<u8>) {
    match p {
        PanePayload::Stratified(stats) => {
            0u8.encode(out);
            stats.encode(out);
        }
        PanePayload::Srs {
            samples,
            population,
        } => {
            1u8.encode(out);
            samples.encode(out);
            population.encode(out);
        }
    }
}

pub(crate) fn decode_pane_payload(r: &mut WireReader<'_>) -> Result<PanePayload, SaError> {
    match u8::decode(r)? {
        0 => Ok(PanePayload::Stratified(Vec::decode(r)?)),
        1 => Ok(PanePayload::Srs {
            samples: Vec::decode(r)?,
            population: u64::decode(r)?,
        }),
        tag => Err(SaError::Wire(format!("unknown pane-payload tag {tag}"))),
    }
}

pub(crate) fn encode_window_result(w: &WindowResult, out: &mut Vec<u8>) {
    w.window.encode(out);
    w.sum.encode(out);
    w.mean.encode(out);
    w.sum_by_stratum.encode(out);
    w.mean_by_stratum.encode(out);
    w.degraded.encode(out);
    put_varint(out, w.lost_items);
}

pub(crate) fn decode_window_result(r: &mut WireReader<'_>) -> Result<WindowResult, SaError> {
    Ok(WindowResult {
        window: WireDecode::decode(r)?,
        sum: WireDecode::decode(r)?,
        mean: WireDecode::decode(r)?,
        sum_by_stratum: Vec::decode(r)?,
        mean_by_stratum: Vec::decode(r)?,
        degraded: bool::decode(r)?,
        lost_items: r.read_varint()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_estimate::{StratumStats, Welford};
    use sa_types::{ApproxResult, Confidence, ErrorBound, EventTime, StratumId, Window};

    #[test]
    fn record_codec_roundtrips_values() {
        let codec: RecordCodec<f64> = RecordCodec::new();
        let mut out = Vec::new();
        (codec.encode)(&3.25, &mut out);
        let mut r = WireReader::new(&out);
        assert_eq!((codec.decode)(&mut r).unwrap(), 3.25);
    }

    #[test]
    fn memory_store_keeps_latest_only() {
        let mut store = MemoryCheckpointStore::new();
        assert!(store.load().unwrap().is_none());
        store.save(b"one").unwrap();
        store.save(b"two").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), b"two");
    }

    #[test]
    fn file_store_survives_replacement_and_reports_missing_as_none() {
        let dir = std::env::temp_dir().join(format!(
            "sa-checkpoint-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let mut store = FileCheckpointStore::new(dir.join("session.snapshot"));
        assert!(store.load().unwrap().is_none());
        store.save(b"first").unwrap();
        store.save(b"second").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), b"second");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directive_codec_roundtrips_every_variant() {
        for d in [
            SizingDirective::Fraction(0.25),
            SizingDirective::PerStratum(7),
            SizingDirective::SharedTotal(1_000),
            SizingDirective::Everything,
        ] {
            let mut out = Vec::new();
            encode_directive(&d, &mut out);
            let mut r = WireReader::new(&out);
            assert_eq!(decode_directive(&mut r).unwrap(), d);
            assert_eq!(r.remaining(), 0);
        }
        let mut r = WireReader::new(&[9]);
        assert!(matches!(decode_directive(&mut r), Err(SaError::Wire(_))));
    }

    #[test]
    fn pane_payload_codec_roundtrips_both_variants() {
        let acc: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let payloads = [
            PanePayload::Stratified(vec![StratumStats::from_parts(StratumId(2), 9, acc)]),
            PanePayload::Srs {
                samples: vec![(StratumId(0), 1.5), (StratumId(1), -2.5)],
                population: 40,
            },
        ];
        for p in payloads {
            let mut out = Vec::new();
            encode_pane_payload(&p, &mut out);
            let mut r = WireReader::new(&out);
            assert_eq!(decode_pane_payload(&mut r).unwrap(), p);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn window_result_codec_roundtrips_bit_exact() {
        let result = |v: f64| ApproxResult::new(v, ErrorBound::new(0.5, Confidence::P95), 3, 10);
        let w = WindowResult {
            window: Window::new(EventTime::from_secs(0), EventTime::from_secs(10)),
            sum: result(10.125),
            mean: result(1.0125),
            sum_by_stratum: vec![(StratumId(0), result(4.0)), (StratumId(1), result(6.125))],
            mean_by_stratum: vec![(StratumId(0), result(2.0))],
            degraded: true,
            lost_items: 512,
        };
        let mut out = Vec::new();
        encode_window_result(&w, &mut out);
        let mut r = WireReader::new(&out);
        let back = decode_window_result(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, w);
        assert_eq!(back.sum.value.to_bits(), w.sum.value.to_bits());
    }
}
