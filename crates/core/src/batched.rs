//! The batched (Spark-Streaming-style) runners: StreamApprox and its three
//! baselines on the `sa-batched` engine.
//!
//! The architectural contrast the paper measures (§4.2.1) is *where*
//! sampling happens:
//!
//! * **StreamApprox** samples items "on-the-fly ... before items are
//!   transformed into RDDs": the per-batch OASRS pass runs on the raw
//!   receiver-side items, and only the (small) sample enters the engine as
//!   a dataset for the data-parallel query job.
//! * **SRS** builds the full dataset, then runs distributed ScaSRS on it —
//!   random keys for every item, a driver-side sort of the wait-list.
//! * **STS** builds the full dataset, then `groupBy(strata)` (a full hash
//!   shuffle with worker synchronization) and a per-stratum random sort.
//! * **Native** builds the full dataset and aggregates everything.

use crate::combine::{combine_window, PanePayload};
use crate::cost::{CostPolicy, IntervalFeedback, SizingDirective};
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::windowing::PaneWindower;
use sa_batched::{Cluster, MicroBatch, MicroBatcher, Pds};
use sa_estimate::{estimate_mean, StratumStats, Welford};
use sa_sampling::{OasrsSampler, SizingPolicy};
use sa_types::{StratumId, StreamItem};
use std::collections::BTreeMap;
use std::time::Instant;

/// Which batched system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchedSystem {
    /// Spark-based StreamApprox: OASRS before dataset formation.
    StreamApprox,
    /// Spark-based simple random sampling (`sample` via distributed
    /// ScaSRS).
    Srs,
    /// Spark-based stratified sampling (`groupBy` + per-stratum random
    /// sort).
    Sts,
    /// Native execution without sampling.
    Native,
}

impl std::fmt::Display for BatchedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchedSystem::StreamApprox => write!(f, "Spark-based StreamApprox"),
            BatchedSystem::Srs => write!(f, "Spark-based SRS"),
            BatchedSystem::Sts => write!(f, "Spark-based STS"),
            BatchedSystem::Native => write!(f, "Native Spark"),
        }
    }
}

/// Configuration of the batched engine for one run.
#[derive(Debug, Clone)]
pub struct BatchedConfig {
    /// The worker pool (topology decides shuffle locality).
    pub cluster: Cluster,
    /// Micro-batch interval in milliseconds (the paper sweeps 250–1000 ms,
    /// Figure 4c).
    pub batch_interval_ms: i64,
    /// Dataset partitions per batch.
    pub num_partitions: usize,
    /// Parallel receiver-side sampling workers for StreamApprox.
    pub sample_workers: usize,
    /// RNG seed for every sampling decision in the run.
    pub seed: u64,
}

impl BatchedConfig {
    /// A small-machine default: 250 ms batches on the given cluster.
    pub fn new(cluster: Cluster) -> Self {
        let workers = cluster.num_workers();
        BatchedConfig {
            cluster,
            batch_interval_ms: 250,
            num_partitions: workers.max(2),
            sample_workers: workers.max(1),
            seed: 0x5A5A,
        }
    }

    /// Sets the batch interval.
    #[must_use]
    pub fn with_batch_interval_ms(mut self, ms: i64) -> Self {
        assert!(ms > 0, "batch interval must be positive");
        self.batch_interval_ms = ms;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-pane sampler state for StreamApprox (kept across panes so the
/// fraction policy's capacity adaptation has history to work from).
struct SamplerPool<R> {
    directive: SizingDirective,
    samplers: Vec<OasrsSampler<R>>,
}

fn sizing_policy_for(directive: SizingDirective, batch_len: usize, workers: usize) -> SizingPolicy {
    match directive {
        SizingDirective::Fraction(f) => SizingPolicy::FractionOfPrevious {
            fraction: f,
            // First-interval guess: spread the fraction over an assumed
            // handful of strata; adapted from real counters afterwards.
            initial: (((f * batch_len as f64) as usize / workers.max(1) / 4).max(16)),
        },
        SizingDirective::PerStratum(n) => SizingPolicy::PerStratum(n),
        SizingDirective::SharedTotal(n) => SizingPolicy::SharedTotal(n),
        SizingDirective::Everything => {
            unreachable!("Everything is handled by the native pane path")
        }
    }
}

/// Splits a batch into `n` contiguous chunks for the sampling workers.
fn chunks_of<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let total = items.len();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    while items.len() > per {
        let rest = items.split_off(per);
        out.push(std::mem::replace(&mut items, rest));
    }
    out.push(items);
    while out.len() < n {
        out.push(Vec::new());
    }
    out
}

/// Runs one batched system over a recorded stream, returning the completed
/// windows and run metrics.
///
/// # Panics
///
/// Panics if an SRS/STS baseline is driven by a non-fraction budget (the
/// baselines are defined in terms of a sampling fraction; use
/// [`crate::FixedFraction`]).
pub fn run_batched<R>(
    config: &BatchedConfig,
    system: BatchedSystem,
    query: &Query<R>,
    policy: &mut dyn CostPolicy,
    items: Vec<StreamItem<R>>,
) -> RunOutput
where
    R: Send + Sync + Clone + 'static,
{
    let started = Instant::now();
    let mut windower: PaneWindower<PanePayload> = PaneWindower::new(query.window());
    let mut windows: Vec<WindowResult> = Vec::new();
    let mut ingested = 0u64;
    let mut aggregated = 0u64;
    let mut pool: Option<SamplerPool<R>> = None;

    for (pane_idx, batch) in MicroBatcher::new(items.into_iter(), config.batch_interval_ms).enumerate()
    {
        let directive = policy.interval_sizing();
        let pane_started = Instant::now();
        let batch_len = batch.items.len() as u64;
        let pane_window = batch.window;
        let payload = match (system, directive) {
            (BatchedSystem::Native, _) | (_, SizingDirective::Everything) => {
                native_pane(config, query, batch)
            }
            (BatchedSystem::StreamApprox, d) => {
                streamapprox_pane(config, query, batch, d, &mut pool)
            }
            (BatchedSystem::Srs, SizingDirective::Fraction(f)) => {
                srs_pane(config, query, batch, f, pane_idx as u64)
            }
            (BatchedSystem::Sts, SizingDirective::Fraction(f)) => {
                sts_pane(config, query, batch, f, pane_idx as u64)
            }
            (BatchedSystem::Srs | BatchedSystem::Sts, d) => {
                panic!("the {system} baseline needs a fraction budget, got {d:?}")
            }
        };
        let process_nanos = pane_started.elapsed().as_nanos() as u64;
        ingested += batch_len;
        aggregated += payload.sampled();
        let relative_error = match &payload {
            PanePayload::Stratified(stats) if !stats.is_empty() => {
                Some(estimate_mean(stats, query.confidence()).relative_error())
            }
            _ => None,
        };
        policy.observe(&IntervalFeedback {
            items: batch_len,
            sampled: payload.sampled(),
            process_nanos,
            relative_error,
        });
        windower.add_pane(pane_window, payload);
        for (window, panes) in windower.advance(pane_window.end) {
            windows.push(combine_window(window, panes, query.confidence()));
        }
    }
    for (window, panes) in windower.finish() {
        windows.push(combine_window(window, panes, query.confidence()));
    }
    RunOutput {
        windows,
        items_ingested: ingested,
        items_aggregated: aggregated,
        elapsed: started.elapsed(),
    }
}

/// StreamApprox pane: distributed OASRS on raw items, then a data-parallel
/// stats job over the sampled strata.
fn streamapprox_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    directive: SizingDirective,
    pool: &mut Option<SamplerPool<R>>,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let w = config.sample_workers.max(1);
    // (Re)build the sampler pool if the policy changed its directive.
    let rebuild = match pool {
        Some(p) => p.directive != directive,
        None => true,
    };
    if rebuild {
        let sizing = sizing_policy_for(directive, batch.items.len(), w);
        *pool = Some(SamplerPool {
            directive,
            samplers: (0..w)
                .map(|i| OasrsSampler::for_worker(sizing, config.seed, i, w))
                .collect(),
        });
    }
    let p = pool.as_mut().expect("pool just ensured");
    // Receiver-side sampling: each worker folds its chunk through its own
    // sampler — no synchronization, items never form a dataset.
    let samplers = std::mem::take(&mut p.samplers);
    let inputs: Vec<(OasrsSampler<R>, Vec<StreamItem<R>>)> = samplers
        .into_iter()
        .zip(chunks_of(batch.items, w))
        .collect();
    let results = config.cluster.run(inputs, |_, (mut sampler, chunk)| {
        for item in chunk {
            sampler.observe(item.stratum, item.value);
        }
        let sample = sampler.finish_interval();
        (sampler, sample)
    });
    let mut union: Option<sa_types::StratifiedSample<R>> = None;
    for (sampler, sample) in results {
        p.samplers.push(sampler);
        match &mut union {
            None => union = Some(sample),
            Some(u) => u.union(sample),
        }
    }
    let sample = union.expect("at least one sampling worker");
    // The data-parallel query job over the selected sample.
    let proj = query.projection();
    let stats = config.cluster.run(sample.into_strata(), move |_, stratum| {
        StratumStats::from_sample(&stratum, |r| proj(r))
    });
    PanePayload::Stratified(stats)
}

/// Native pane: full dataset, exact per-stratum statistics.
fn native_pane<R>(config: &BatchedConfig, query: &Query<R>, batch: MicroBatch<R>) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let proj = query.projection();
    let partials = Pds::from_vec(batch.items, config.num_partitions).map_partitions(
        &config.cluster,
        move |_, part: Vec<StreamItem<R>>| {
            let mut local: BTreeMap<StratumId, Welford> = BTreeMap::new();
            for item in part {
                local.entry(item.stratum).or_default().push(proj(&item.value));
            }
            local.into_iter().collect::<Vec<(StratumId, Welford)>>()
        },
    );
    let mut merged: BTreeMap<StratumId, Welford> = BTreeMap::new();
    for (stratum, acc) in partials.collect() {
        merged.entry(stratum).or_default().merge(&acc);
    }
    PanePayload::Stratified(
        merged
            .into_iter()
            .map(|(stratum, acc)| StratumStats::from_parts(stratum, acc.count(), acc))
            .collect(),
    )
}

/// SRS pane: full dataset, distributed ScaSRS, project the sample.
fn srs_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    fraction: f64,
    pane_idx: u64,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let n = batch.items.len();
    let k = ((n as f64 * fraction).ceil() as usize).min(n);
    let proj = query.projection();
    let samples: Vec<(StratumId, f64)> = Pds::from_vec(batch.items, config.num_partitions)
        .sample_exact(&config.cluster, k, config.seed ^ pane_idx.wrapping_mul(0x5125))
        .map(&config.cluster, move |item: StreamItem<R>| {
            (item.stratum, proj(&item.value))
        })
        .collect();
    PanePayload::Srs {
        samples,
        population: n as u64,
    }
}

/// STS pane: full dataset, key by stratum, groupBy shuffle, per-stratum
/// random-sort sampling, then the stats job.
fn sts_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    fraction: f64,
    pane_idx: u64,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let keyed = Pds::from_vec(batch.items, config.num_partitions).map(
        &config.cluster,
        |item: StreamItem<R>| (item.stratum, item.value),
    );
    let sample = keyed.sample_stratified_exact(
        &config.cluster,
        fraction,
        config.seed ^ pane_idx.wrapping_mul(0x575),
    );
    let proj = query.projection();
    let stats = config.cluster.run(sample.into_strata(), move |_, stratum| {
        StratumStats::from_sample(&stratum, |r| proj(r))
    });
    PanePayload::Stratified(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FixedFraction;
    use sa_types::{EventTime, WindowSpec};

    fn stream(per_stratum: &[(u32, usize)], duration_ms: i64) -> Vec<StreamItem<f64>> {
        // Deterministic values: stratum s item i has value s*1000 + (i%10).
        let parts: Vec<Vec<StreamItem<f64>>> = per_stratum
            .iter()
            .map(|&(s, n)| {
                let spacing = duration_ms as f64 / n as f64;
                (0..n)
                    .map(|i| {
                        StreamItem::new(
                            StratumId(s),
                            EventTime::from_millis((i as f64 * spacing) as i64),
                            f64::from(s) * 1_000.0 + (i % 10) as f64,
                        )
                    })
                    .collect()
            })
            .collect();
        sa_aggregator::merge_by_time(parts)
    }

    fn config() -> BatchedConfig {
        BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(250)
    }

    fn query() -> Query<f64> {
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
    }

    #[test]
    fn native_is_exact() {
        let items = stream(&[(0, 1_000), (1, 100)], 2_000);
        let true_sum_w0: f64 = items
            .iter()
            .filter(|i| i.time < EventTime::from_millis(1_000))
            .map(|i| i.value)
            .sum();
        let out = run_batched(
            &config(),
            BatchedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            items,
        );
        assert_eq!(out.items_ingested, 1_100);
        assert_eq!(out.items_aggregated, 1_100);
        let w0 = &out.windows[0];
        assert!((w0.sum.value - true_sum_w0).abs() < 1e-9);
        assert_eq!(w0.sum.bound.margin(), 0.0);
    }

    #[test]
    fn streamapprox_approximates_within_bounds() {
        let items = stream(&[(0, 2_000), (1, 200), (2, 20)], 2_000);
        let exact = run_batched(
            &config(),
            BatchedSystem::Native,
            &query(),
            &mut FixedFraction(1.0),
            items.clone(),
        );
        let approx = run_batched(
            &config(),
            BatchedSystem::StreamApprox,
            &query(),
            &mut FixedFraction(0.5),
            items,
        );
        assert!(approx.items_aggregated < approx.items_ingested);
        assert_eq!(approx.windows.len(), exact.windows.len());
        for (a, e) in approx.windows.iter().zip(&exact.windows) {
            assert_eq!(a.window, e.window);
            let loss = sa_estimate::accuracy_loss(a.mean.value, e.mean.value);
            assert!(loss < 0.25, "window {}: loss {loss}", a.window);
            // No stratum lost.
            assert_eq!(a.mean_by_stratum.len(), e.mean_by_stratum.len());
        }
    }

    #[test]
    fn sts_matches_population_counts() {
        let items = stream(&[(0, 1_000), (1, 50)], 1_000);
        let out = run_batched(
            &config(),
            BatchedSystem::Sts,
            &query(),
            &mut FixedFraction(0.4),
            items,
        );
        let w = &out.windows[0];
        assert_eq!(w.sum.population_size, 1_050);
        // STS samples proportionally: ~40% of each stratum.
        assert!(w.sum.sample_size >= 400);
    }

    #[test]
    fn srs_estimates_total_reasonably() {
        let items = stream(&[(0, 5_000)], 1_000);
        let exact: f64 = (0..5_000).map(|i| (i % 10) as f64).sum();
        let out = run_batched(
            &config(),
            BatchedSystem::Srs,
            &query(),
            &mut FixedFraction(0.5),
            items,
        );
        let w = &out.windows[0];
        assert!(
            sa_estimate::accuracy_loss(w.sum.value, exact) < 0.05,
            "sum {} vs {exact}",
            w.sum.value
        );
    }

    #[test]
    #[should_panic(expected = "needs a fraction budget")]
    fn srs_rejects_size_budgets() {
        let items = stream(&[(0, 100)], 500);
        let _ = run_batched(
            &config(),
            BatchedSystem::Srs,
            &query(),
            &mut crate::cost::FixedPerStratum(10),
            items,
        );
    }

    #[test]
    fn chunks_cover_everything() {
        let c = chunks_of((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(c.len(), 3);
        let flat: Vec<i32> = c.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        let single = chunks_of(vec![1], 4);
        assert_eq!(single.len(), 4);
        assert_eq!(single.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn sliding_windows_combine_batches() {
        let items = stream(&[(0, 4_000)], 4_000);
        let q = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_millis(2_000, 1_000));
        let out = run_batched(
            &config(),
            BatchedSystem::Native,
            &q,
            &mut FixedFraction(1.0),
            items,
        );
        // Windows: [0,2) [1,3) [2,4) plus the trailing flush [3,5).
        assert!(out.windows.len() >= 3);
        let w = &out.windows[0];
        assert_eq!(w.sum.population_size, 2_000);
    }
}
