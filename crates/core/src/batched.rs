//! The batched (Spark-Streaming-style) runners: StreamApprox and its three
//! baselines on the `sa-batched` engine.
//!
//! The architectural contrast the paper measures (§4.2.1) is *where*
//! sampling happens:
//!
//! * **StreamApprox** samples items "on-the-fly ... before items are
//!   transformed into RDDs": the per-batch OASRS pass runs on the raw
//!   receiver-side items, and only the (small) sample enters the engine as
//!   a dataset for the data-parallel query job.
//! * **SRS** builds the full dataset, then runs distributed ScaSRS on it —
//!   random keys for every item, a driver-side sort of the wait-list.
//! * **STS** builds the full dataset, then `groupBy(strata)` (a full hash
//!   shuffle with worker synchronization) and a per-stratum random sort.
//! * **Native** builds the full dataset and aggregates everything.
//!
//! This module is a thin adapter: it expresses only the engine-specific
//! parts above (dataset formation, cluster shuffles). The per-interval
//! loop — cost-policy feedback, sampler lifecycle, window assembly,
//! estimation — is the shared [`crate::runtime::ApproxRuntime`], and the
//! drive loop itself is [`BatchedEngine`], an incremental
//! [`Engine`](crate::Engine) that forms micro-batches as items arrive.
//! [`run_batched`] is a convenience wrapper: one session, one
//! `push_batch`, one `finish`.

use crate::checkpoint::RecordCodec;
use crate::combine::PanePayload;
use crate::cost::{CostPolicy, PolicyHandle, SizingDirective};
use crate::engine::Engine;
use crate::output::{RunOutput, WindowResult};
use crate::query::Query;
use crate::runtime::{ApproxRuntime, ExactAccumulator, PaneCursor};
use crate::session::StreamApprox;
use sa_batched::{Cluster, MicroBatch, Pds};
use sa_estimate::StratumStats;
use sa_types::wire::put_varint;
use sa_types::{
    EngineSnapshot, EventTime, RunSeed, SaError, StratumId, StreamItem, Window, WireDecode,
    WireEncode, WireReader,
};
use std::sync::Arc;
use std::time::Instant;

/// Which batched system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchedSystem {
    /// Spark-based StreamApprox: OASRS before dataset formation.
    StreamApprox,
    /// Spark-based simple random sampling (`sample` via distributed
    /// ScaSRS).
    Srs,
    /// Spark-based stratified sampling (`groupBy` + per-stratum random
    /// sort).
    Sts,
    /// Native execution without sampling.
    Native,
}

impl std::fmt::Display for BatchedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchedSystem::StreamApprox => write!(f, "Spark-based StreamApprox"),
            BatchedSystem::Srs => write!(f, "Spark-based SRS"),
            BatchedSystem::Sts => write!(f, "Spark-based STS"),
            BatchedSystem::Native => write!(f, "Native Spark"),
        }
    }
}

/// Configuration of the batched engine for one run, including which
/// batched [`system`](BatchedConfig::system) executes each pane.
#[derive(Debug, Clone)]
pub struct BatchedConfig {
    /// The worker pool (topology decides shuffle locality).
    pub cluster: Cluster,
    /// Which batched system runs the panes (StreamApprox by default).
    pub system: BatchedSystem,
    /// Micro-batch interval in milliseconds (the paper sweeps 250–1000 ms,
    /// Figure 4c).
    pub batch_interval_ms: i64,
    /// Dataset partitions per batch.
    pub num_partitions: usize,
    /// Parallel receiver-side sampling workers for StreamApprox.
    pub sample_workers: usize,
    /// Seed for every sampling decision in the run.
    pub seed: RunSeed,
}

impl BatchedConfig {
    /// A small-machine default: StreamApprox with 250 ms batches on the
    /// given cluster.
    pub fn new(cluster: Cluster) -> Self {
        let workers = cluster.num_workers();
        BatchedConfig {
            cluster,
            system: BatchedSystem::StreamApprox,
            batch_interval_ms: 250,
            num_partitions: workers.max(2),
            sample_workers: workers.max(1),
            seed: RunSeed::DEFAULT,
        }
    }

    /// Selects which batched system runs the panes.
    #[must_use]
    pub fn with_system(mut self, system: BatchedSystem) -> Self {
        self.system = system;
        self
    }

    /// Sets the batch interval.
    #[must_use]
    pub fn with_batch_interval_ms(mut self, ms: i64) -> Self {
        assert!(ms > 0, "batch interval must be positive");
        self.batch_interval_ms = ms;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: impl Into<RunSeed>) -> Self {
        self.seed = seed.into();
        self
    }
}

/// Splits a batch into `n` contiguous chunks for the sampling workers.
fn chunks_of<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let total = items.len();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    while items.len() > per {
        let rest = items.split_off(per);
        out.push(std::mem::replace(&mut items, rest));
    }
    out.push(items);
    while out.len() < n {
        out.push(Vec::new());
    }
    out
}

/// Runs one batched system over a recorded stream, returning the completed
/// windows and run metrics.
///
/// This is the one-shot convenience over an incremental
/// [`crate::ApproxSession`]: it builds a batched session, pushes the whole
/// recording, and finishes. Pushing the same items through a session by
/// hand — item by item or in arbitrary chunks — produces bit-for-bit the
/// same windows.
///
/// # Panics
///
/// Panics if an SRS/STS baseline is driven by a non-fraction budget (the
/// baselines are defined in terms of a sampling fraction; use
/// [`crate::FixedFraction`]), or if `items` is not in non-decreasing
/// event-time order.
#[must_use = "the run's windows and metrics are its only product"]
pub fn run_batched<R>(
    config: &BatchedConfig,
    system: BatchedSystem,
    query: &Query<R>,
    policy: &mut dyn CostPolicy,
    items: Vec<StreamItem<R>>,
) -> RunOutput
where
    R: Send + Sync + Clone + 'static,
{
    let mut session = StreamApprox::new(query.clone(), policy)
        .batched(config.clone().with_system(system))
        .start();
    session
        .push_batch(items)
        .expect("recorded streams are event-time ordered");
    session.finish()
}

/// The batched substrate as an incremental [`Engine`]: buffers the current
/// micro-batch, and every time an item crosses the batch-interval boundary
/// runs the pane job exactly as the one-shot path would — dataset
/// formation, cluster shuffles, OASRS before RDD formation — then advances
/// the runtime's watermark. Quiet intervals between items become empty
/// panes, mirroring `MicroBatcher`.
pub(crate) struct BatchedEngine<'p, R> {
    config: BatchedConfig,
    system: BatchedSystem,
    query: Query<R>,
    runtime: ApproxRuntime<'p, R>,
    pane_items: Vec<StreamItem<R>>,
    cursor: PaneCursor,
    pane_idx: u64,
    codec: Option<RecordCodec<R>>,
}

impl<'p, R> BatchedEngine<'p, R>
where
    R: Send + Sync + Clone + 'static,
{
    pub(crate) fn new(
        config: BatchedConfig,
        query: Query<R>,
        policy: impl Into<PolicyHandle<'p>>,
        codec: Option<RecordCodec<R>>,
    ) -> Self {
        let runtime = ApproxRuntime::new(&query, policy, config.seed, config.sample_workers.max(1));
        let cursor = PaneCursor::new(config.batch_interval_ms, query.window());
        let system = config.system;
        BatchedEngine {
            config,
            system,
            query,
            runtime,
            pane_items: Vec::new(),
            cursor,
            pane_idx: 0,
            codec,
        }
    }

    fn require_codec(&self) -> Result<RecordCodec<R>, SaError> {
        self.codec.ok_or_else(|| {
            SaError::Checkpoint(
                "engine built without a record codec; enable with StreamApprox::checkpointable"
                    .into(),
            )
        })
    }

    /// Closes the current pane — runs the pane job over the buffered
    /// items (possibly none, for a quiet interval) and advances the
    /// watermark to the pane end.
    fn close_pane(&mut self) {
        let (start, end) = self.cursor.pane().expect("close_pane needs an open pane");
        let window = Window::new(EventTime::from_millis(start), EventTime::from_millis(end));
        let batch = MicroBatch {
            window,
            items: std::mem::take(&mut self.pane_items),
        };
        let directive = self.runtime.interval_sizing();
        let pane_started = Instant::now();
        let arrived = batch.items.len() as u64;
        let payload = match (self.system, directive) {
            (BatchedSystem::Native, _) | (_, SizingDirective::Everything) => {
                native_pane(&self.config, &self.query, batch)
            }
            (BatchedSystem::StreamApprox, d) => {
                streamapprox_pane(&self.config, &self.query, batch, d, &mut self.runtime)
            }
            (BatchedSystem::Srs, SizingDirective::Fraction(f)) => {
                srs_pane(&self.config, &self.query, batch, f, self.pane_idx)
            }
            (BatchedSystem::Sts, SizingDirective::Fraction(f)) => {
                sts_pane(&self.config, &self.query, batch, f, self.pane_idx)
            }
            (BatchedSystem::Srs | BatchedSystem::Sts, d) => {
                panic!(
                    "the {} baseline needs a fraction budget, got {d:?}",
                    self.system
                )
            }
        };
        let process_nanos = pane_started.elapsed().as_nanos() as u64;
        self.runtime
            .ingest_interval(window, payload, arrived, process_nanos);
        self.runtime.close_interval(window.end);
        self.pane_idx += 1;
    }
}

impl<R> Engine<R> for BatchedEngine<'_, R>
where
    R: Send + Sync + Clone + 'static,
{
    fn push(&mut self, item: StreamItem<R>) -> Result<(), SaError> {
        // The shared cursor aligns the first pane to the first item's
        // interval, yields quiet intervals as empty panes (mirroring the
        // one-shot batcher), and jumps oversized gaps.
        let t = item.time.as_millis();
        while self.cursor.needs_close(t) {
            self.close_pane();
            self.cursor.next(t);
        }
        self.pane_items.push(item);
        Ok(())
    }

    fn push_chunk(&mut self, mut items: Vec<StreamItem<R>>) -> Result<(), SaError> {
        // Buffer whole pane portions at once: the cursor runs once per
        // pane boundary instead of once per item. Sampling happens at
        // close_pane either way, so this is trivially identical to the
        // per-item loop.
        while !items.is_empty() {
            let t = items[0].time.as_millis();
            while self.cursor.needs_close(t) {
                self.close_pane();
                self.cursor.next(t);
            }
            let (_, end) = self.cursor.pane().expect("pane open after needs_close");
            let n = items.partition_point(|it| it.time.as_millis() < end);
            let rest = items.split_off(n);
            if self.pane_items.is_empty() {
                self.pane_items = items;
            } else {
                self.pane_items.append(&mut items);
            }
            items = rest;
        }
        Ok(())
    }

    fn poll_windows(&mut self) -> Vec<WindowResult> {
        self.runtime.take_windows()
    }

    fn panes_closed(&self) -> u64 {
        self.runtime.panes_closed()
    }

    fn snapshot(&mut self) -> Result<EngineSnapshot, SaError> {
        let codec = self.require_codec()?;
        let mut state = Vec::new();
        put_varint(&mut state, self.pane_idx);
        self.cursor.start().encode(&mut state);
        // The open pane's buffered items: a micro-batch engine samples at
        // pane close, so mid-pane state is the raw buffer itself — still
        // O(pane), never O(stream).
        put_varint(&mut state, self.pane_items.len() as u64);
        for item in &self.pane_items {
            item.stratum.encode(&mut state);
            item.time.encode(&mut state);
            (codec.encode)(&item.value, &mut state);
        }
        self.runtime.encode_state(codec, &mut state);
        Ok(EngineSnapshot {
            engine: "batched".into(),
            pane: self.cursor.start(),
            state,
        })
    }

    fn restore(&mut self, snapshot: &EngineSnapshot) -> Result<(), SaError> {
        let codec = self.require_codec()?;
        if snapshot.engine != "batched" {
            return Err(SaError::Checkpoint(format!(
                "cannot restore a '{}' snapshot into the batched engine",
                snapshot.engine
            )));
        }
        let mut r = WireReader::new(&snapshot.state);
        self.pane_idx = r.read_varint()?;
        self.cursor.restore_start(Option::decode(&mut r)?);
        let n = r.read_len()?;
        let mut pane_items = Vec::with_capacity(n);
        for _ in 0..n {
            let stratum = StratumId::decode(&mut r)?;
            let time = EventTime::decode(&mut r)?;
            let value = (codec.decode)(&mut r)?;
            pane_items.push(StreamItem {
                stratum,
                time,
                value,
            });
        }
        self.pane_items = pane_items;
        self.runtime.restore_state(&mut r, codec)?;
        r.finish()
    }

    fn finish(mut self: Box<Self>) -> RunOutput {
        // A trailing pane exists exactly when items arrived since the last
        // boundary; quiet trailing intervals produce no pane, mirroring
        // the one-shot batcher.
        if !self.pane_items.is_empty() {
            self.close_pane();
        }
        self.runtime.finish()
    }
}

/// StreamApprox pane: distributed OASRS on raw items, then a data-parallel
/// stats job over the sampled strata.
fn streamapprox_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    directive: SizingDirective,
    runtime: &mut ApproxRuntime<'_, R>,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let samplers = runtime.checkout_samplers(directive, batch.items.len());
    let w = samplers.len();
    // Receiver-side sampling: each worker folds its chunk through its own
    // sampler — no synchronization, items never form a dataset.
    let inputs: Vec<_> = samplers
        .into_iter()
        .zip(chunks_of(batch.items, w))
        .collect();
    let results = config.cluster.run(inputs, |_, (mut sampler, mut chunk)| {
        // One batch call per worker chunk: same-stratum runs share a
        // lookup and skipped gaps cost no RNG draws.
        sampler.observe_batch(&mut chunk);
        let sample = sampler.finish_interval();
        (sampler, sample)
    });
    let mut returned = Vec::with_capacity(w);
    let mut union: Option<sa_types::StratifiedSample<R>> = None;
    for (sampler, sample) in results {
        returned.push(sampler);
        match &mut union {
            None => union = Some(sample),
            Some(u) => u.union(sample),
        }
    }
    runtime.checkin_samplers(returned);
    let sample = union.expect("at least one sampling worker");
    // The data-parallel query job over the selected sample.
    let proj = query.projection();
    let stats = config.cluster.run(sample.into_strata(), move |_, stratum| {
        StratumStats::from_sample(&stratum, |r| proj(r))
    });
    PanePayload::Stratified(stats)
}

/// Native pane: full dataset, exact per-stratum statistics per partition
/// (cross-partition strata merge during window combination).
fn native_pane<R>(config: &BatchedConfig, query: &Query<R>, batch: MicroBatch<R>) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let proj = query.projection();
    let partials = Pds::from_vec(batch.items, config.num_partitions).map_partitions(
        &config.cluster,
        move |_, part: Vec<StreamItem<R>>| {
            let mut acc = ExactAccumulator::new(Arc::clone(&proj));
            acc.observe_slice(&part);
            acc.close_interval()
        },
    );
    PanePayload::Stratified(partials.collect())
}

/// SRS pane: full dataset, distributed ScaSRS, project the sample.
fn srs_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    fraction: f64,
    pane_idx: u64,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let n = batch.items.len();
    let k = ((n as f64 * fraction).ceil() as usize).min(n);
    let proj = query.projection();
    let samples: Vec<(StratumId, f64)> = Pds::from_vec(batch.items, config.num_partitions)
        .sample_exact(
            &config.cluster,
            k,
            config.seed.derive(0x5125).derive(pane_idx).value(),
        )
        .map(&config.cluster, move |item: StreamItem<R>| {
            (item.stratum, proj(&item.value))
        })
        .collect();
    PanePayload::Srs {
        samples,
        population: n as u64,
    }
}

/// STS pane: full dataset, key by stratum, groupBy shuffle, per-stratum
/// random-sort sampling, then the stats job.
fn sts_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    fraction: f64,
    pane_idx: u64,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let keyed = Pds::from_vec(batch.items, config.num_partitions)
        .map(&config.cluster, |item: StreamItem<R>| {
            (item.stratum, item.value)
        });
    let sample = keyed.sample_stratified_exact(
        &config.cluster,
        fraction,
        config.seed.derive(0x575).derive(pane_idx).value(),
    );
    let proj = query.projection();
    let stats = config.cluster.run(sample.into_strata(), move |_, stratum| {
        StratumStats::from_sample(&stratum, |r| proj(r))
    });
    PanePayload::Stratified(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything() {
        let c = chunks_of((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(c.len(), 3);
        let flat: Vec<i32> = c.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        let single = chunks_of(vec![1], 4);
        assert_eq!(single.len(), 4);
        assert_eq!(single.iter().map(Vec::len).sum::<usize>(), 1);
    }
}
