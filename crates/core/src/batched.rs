//! The batched (Spark-Streaming-style) runners: StreamApprox and its three
//! baselines on the `sa-batched` engine.
//!
//! The architectural contrast the paper measures (§4.2.1) is *where*
//! sampling happens:
//!
//! * **StreamApprox** samples items "on-the-fly ... before items are
//!   transformed into RDDs": the per-batch OASRS pass runs on the raw
//!   receiver-side items, and only the (small) sample enters the engine as
//!   a dataset for the data-parallel query job.
//! * **SRS** builds the full dataset, then runs distributed ScaSRS on it —
//!   random keys for every item, a driver-side sort of the wait-list.
//! * **STS** builds the full dataset, then `groupBy(strata)` (a full hash
//!   shuffle with worker synchronization) and a per-stratum random sort.
//! * **Native** builds the full dataset and aggregates everything.
//!
//! This module is a thin adapter: it expresses only the engine-specific
//! parts above (dataset formation, cluster shuffles). The per-interval
//! loop — cost-policy feedback, sampler lifecycle, window assembly,
//! estimation — is the shared [`crate::runtime::ApproxRuntime`].

use crate::combine::PanePayload;
use crate::cost::{CostPolicy, SizingDirective};
use crate::output::RunOutput;
use crate::query::Query;
use crate::runtime::{ApproxRuntime, ExactAccumulator};
use sa_batched::{Cluster, MicroBatch, MicroBatcher, Pds};
use sa_estimate::StratumStats;
use sa_types::{RunSeed, StratumId, StreamItem};
use std::sync::Arc;
use std::time::Instant;

/// Which batched system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchedSystem {
    /// Spark-based StreamApprox: OASRS before dataset formation.
    StreamApprox,
    /// Spark-based simple random sampling (`sample` via distributed
    /// ScaSRS).
    Srs,
    /// Spark-based stratified sampling (`groupBy` + per-stratum random
    /// sort).
    Sts,
    /// Native execution without sampling.
    Native,
}

impl std::fmt::Display for BatchedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchedSystem::StreamApprox => write!(f, "Spark-based StreamApprox"),
            BatchedSystem::Srs => write!(f, "Spark-based SRS"),
            BatchedSystem::Sts => write!(f, "Spark-based STS"),
            BatchedSystem::Native => write!(f, "Native Spark"),
        }
    }
}

/// Configuration of the batched engine for one run.
#[derive(Debug, Clone)]
pub struct BatchedConfig {
    /// The worker pool (topology decides shuffle locality).
    pub cluster: Cluster,
    /// Micro-batch interval in milliseconds (the paper sweeps 250–1000 ms,
    /// Figure 4c).
    pub batch_interval_ms: i64,
    /// Dataset partitions per batch.
    pub num_partitions: usize,
    /// Parallel receiver-side sampling workers for StreamApprox.
    pub sample_workers: usize,
    /// Seed for every sampling decision in the run.
    pub seed: RunSeed,
}

impl BatchedConfig {
    /// A small-machine default: 250 ms batches on the given cluster.
    pub fn new(cluster: Cluster) -> Self {
        let workers = cluster.num_workers();
        BatchedConfig {
            cluster,
            batch_interval_ms: 250,
            num_partitions: workers.max(2),
            sample_workers: workers.max(1),
            seed: RunSeed::DEFAULT,
        }
    }

    /// Sets the batch interval.
    #[must_use]
    pub fn with_batch_interval_ms(mut self, ms: i64) -> Self {
        assert!(ms > 0, "batch interval must be positive");
        self.batch_interval_ms = ms;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: impl Into<RunSeed>) -> Self {
        self.seed = seed.into();
        self
    }
}

/// Splits a batch into `n` contiguous chunks for the sampling workers.
fn chunks_of<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let total = items.len();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    while items.len() > per {
        let rest = items.split_off(per);
        out.push(std::mem::replace(&mut items, rest));
    }
    out.push(items);
    while out.len() < n {
        out.push(Vec::new());
    }
    out
}

/// Runs one batched system over a recorded stream, returning the completed
/// windows and run metrics.
///
/// # Panics
///
/// Panics if an SRS/STS baseline is driven by a non-fraction budget (the
/// baselines are defined in terms of a sampling fraction; use
/// [`crate::FixedFraction`]).
pub fn run_batched<R>(
    config: &BatchedConfig,
    system: BatchedSystem,
    query: &Query<R>,
    policy: &mut dyn CostPolicy,
    items: Vec<StreamItem<R>>,
) -> RunOutput
where
    R: Send + Sync + Clone + 'static,
{
    let mut runtime = ApproxRuntime::new(query, policy, config.seed, config.sample_workers.max(1));
    for (pane_idx, batch) in
        MicroBatcher::new(items.into_iter(), config.batch_interval_ms).enumerate()
    {
        let directive = runtime.interval_sizing();
        let pane_started = Instant::now();
        let arrived = batch.items.len() as u64;
        let pane_window = batch.window;
        let payload = match (system, directive) {
            (BatchedSystem::Native, _) | (_, SizingDirective::Everything) => {
                native_pane(config, query, batch)
            }
            (BatchedSystem::StreamApprox, d) => {
                streamapprox_pane(config, query, batch, d, &mut runtime)
            }
            (BatchedSystem::Srs, SizingDirective::Fraction(f)) => {
                srs_pane(config, query, batch, f, pane_idx as u64)
            }
            (BatchedSystem::Sts, SizingDirective::Fraction(f)) => {
                sts_pane(config, query, batch, f, pane_idx as u64)
            }
            (BatchedSystem::Srs | BatchedSystem::Sts, d) => {
                panic!("the {system} baseline needs a fraction budget, got {d:?}")
            }
        };
        let process_nanos = pane_started.elapsed().as_nanos() as u64;
        runtime.ingest_interval(pane_window, payload, arrived, process_nanos);
        runtime.close_interval(pane_window.end);
    }
    runtime.drain_windows()
}

/// StreamApprox pane: distributed OASRS on raw items, then a data-parallel
/// stats job over the sampled strata.
fn streamapprox_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    directive: SizingDirective,
    runtime: &mut ApproxRuntime<'_, R>,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let samplers = runtime.checkout_samplers(directive, batch.items.len());
    let w = samplers.len();
    // Receiver-side sampling: each worker folds its chunk through its own
    // sampler — no synchronization, items never form a dataset.
    let inputs: Vec<_> = samplers
        .into_iter()
        .zip(chunks_of(batch.items, w))
        .collect();
    let results = config.cluster.run(inputs, |_, (mut sampler, chunk)| {
        for item in chunk {
            sampler.observe(item.stratum, item.value);
        }
        let sample = sampler.finish_interval();
        (sampler, sample)
    });
    let mut returned = Vec::with_capacity(w);
    let mut union: Option<sa_types::StratifiedSample<R>> = None;
    for (sampler, sample) in results {
        returned.push(sampler);
        match &mut union {
            None => union = Some(sample),
            Some(u) => u.union(sample),
        }
    }
    runtime.checkin_samplers(returned);
    let sample = union.expect("at least one sampling worker");
    // The data-parallel query job over the selected sample.
    let proj = query.projection();
    let stats = config.cluster.run(sample.into_strata(), move |_, stratum| {
        StratumStats::from_sample(&stratum, |r| proj(r))
    });
    PanePayload::Stratified(stats)
}

/// Native pane: full dataset, exact per-stratum statistics per partition
/// (cross-partition strata merge during window combination).
fn native_pane<R>(config: &BatchedConfig, query: &Query<R>, batch: MicroBatch<R>) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let proj = query.projection();
    let partials = Pds::from_vec(batch.items, config.num_partitions).map_partitions(
        &config.cluster,
        move |_, part: Vec<StreamItem<R>>| {
            let mut acc = ExactAccumulator::new(Arc::clone(&proj));
            for item in part {
                acc.observe(item.stratum, &item.value);
            }
            acc.close_interval()
        },
    );
    PanePayload::Stratified(partials.collect())
}

/// SRS pane: full dataset, distributed ScaSRS, project the sample.
fn srs_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    fraction: f64,
    pane_idx: u64,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let n = batch.items.len();
    let k = ((n as f64 * fraction).ceil() as usize).min(n);
    let proj = query.projection();
    let samples: Vec<(StratumId, f64)> = Pds::from_vec(batch.items, config.num_partitions)
        .sample_exact(
            &config.cluster,
            k,
            config.seed.derive(0x5125).derive(pane_idx).value(),
        )
        .map(&config.cluster, move |item: StreamItem<R>| {
            (item.stratum, proj(&item.value))
        })
        .collect();
    PanePayload::Srs {
        samples,
        population: n as u64,
    }
}

/// STS pane: full dataset, key by stratum, groupBy shuffle, per-stratum
/// random-sort sampling, then the stats job.
fn sts_pane<R>(
    config: &BatchedConfig,
    query: &Query<R>,
    batch: MicroBatch<R>,
    fraction: f64,
    pane_idx: u64,
) -> PanePayload
where
    R: Send + Sync + Clone + 'static,
{
    let keyed = Pds::from_vec(batch.items, config.num_partitions)
        .map(&config.cluster, |item: StreamItem<R>| {
            (item.stratum, item.value)
        });
    let sample = keyed.sample_stratified_exact(
        &config.cluster,
        fraction,
        config.seed.derive(0x575).derive(pane_idx).value(),
    );
    let proj = query.projection();
    let stats = config.cluster.run(sample.into_strata(), move |_, stratum| {
        StratumStats::from_sample(&stratum, |r| proj(r))
    });
    PanePayload::Stratified(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything() {
        let c = chunks_of((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(c.len(), 3);
        let flat: Vec<i32> = c.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        let single = chunks_of(vec![1], 4);
        assert_eq!(single.len(), 4);
        assert_eq!(single.iter().map(Vec::len).sum::<usize>(), 1);
    }
}
