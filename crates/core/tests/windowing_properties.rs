//! Property-based tests for pane-based window assembly: the windower must
//! deliver every pane to exactly the windows that contain it, never
//! duplicate a window, and tolerate any watermark cadence.

use proptest::prelude::*;
use sa_types::{EventTime, Window, WindowSpec};
use streamapprox::PaneWindower;

fn pane(start: i64, len: i64) -> Window {
    Window::new(
        EventTime::from_millis(start),
        EventTime::from_millis(start + len),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Feeding contiguous panes and advancing with arbitrary watermark
    /// steps: every emitted window carries exactly the panes whose start
    /// lies inside it, windows are emitted once, in end order, and a final
    /// finish() drains the rest.
    #[test]
    fn panes_route_to_exactly_their_windows(
        pane_count in 1usize..60,
        pane_factor in 1i64..4,
        overlap in 1i64..4,
        wm_steps in proptest::collection::vec(1i64..5_000, 1..30),
    ) {
        // pane length divides slide; slide divides size.
        let pane_ms = 100 * pane_factor;
        let slide = pane_ms; // one pane per slide
        let size = slide * overlap;
        let spec = WindowSpec::sliding_millis(size, slide);
        let mut windower: PaneWindower<usize> = PaneWindower::new(spec);

        let mut emitted: Vec<(Window, Vec<usize>)> = Vec::new();
        let mut next_pane = 0usize;
        let mut wm = 0i64;
        for step in wm_steps {
            // Add all panes that would have closed by the new watermark.
            wm += step;
            while (next_pane as i64 + 1) * pane_ms <= wm {
                windower.add_pane(pane(next_pane as i64 * pane_ms, pane_ms), next_pane);
                next_pane += 1;
            }
            emitted.extend(windower.advance(EventTime::from_millis(wm)));
        }
        // Add any stragglers and flush.
        while next_pane < pane_count {
            windower.add_pane(pane(next_pane as i64 * pane_ms, pane_ms), next_pane);
            next_pane += 1;
        }
        emitted.extend(windower.finish());

        // Windows unique and ordered by end.
        for pair in emitted.windows(2) {
            prop_assert!(pair[0].0.end <= pair[1].0.end);
            prop_assert_ne!(pair[0].0, pair[1].0);
        }
        // Every window's payload is exactly the panes it contains (among
        // panes added before it was emitted — guaranteed by construction).
        for (w, panes) in &emitted {
            let expected: Vec<usize> = (0..next_pane)
                .filter(|&p| {
                    let start = p as i64 * pane_ms;
                    start >= w.start.as_millis() && start < w.end.as_millis()
                })
                .collect();
            prop_assert_eq!(panes.clone(), expected, "window {}", w);
        }
        // Every pane that has a fully-closed window appears somewhere.
        let covered: std::collections::BTreeSet<usize> =
            emitted.iter().flat_map(|(_, ps)| ps.iter().copied()).collect();
        if let Some((last_window, _)) = emitted.last() {
            for p in 0..next_pane {
                let start = p as i64 * pane_ms;
                if start < last_window.end.as_millis() {
                    prop_assert!(covered.contains(&p), "pane {} lost", p);
                }
            }
        }
    }

    /// advance is idempotent for a non-advancing watermark and never
    /// re-emits a window.
    #[test]
    fn watermark_monotonicity(
        panes in 1usize..40,
        replays in 1usize..5,
    ) {
        let spec = WindowSpec::sliding_millis(1_000, 500);
        let mut windower: PaneWindower<usize> = PaneWindower::new(spec);
        for p in 0..panes {
            windower.add_pane(pane(p as i64 * 500, 500), p);
        }
        let wm = EventTime::from_millis(panes as i64 * 500);
        let first = windower.advance(wm);
        for _ in 0..replays {
            prop_assert!(windower.advance(wm).is_empty());
            prop_assert!(windower
                .advance(EventTime::from_millis(wm.as_millis() - 250))
                .is_empty());
        }
        // finish drains the remaining tail exactly once.
        let tail = windower.finish();
        let all: Vec<Window> = first.iter().chain(&tail).map(|(w, _)| *w).collect();
        let mut dedup = all.clone();
        dedup.dedup();
        prop_assert_eq!(all, dedup);
        prop_assert!(windower.finish().is_empty());
    }
}
