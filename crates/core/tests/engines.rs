//! Behavioural tests of both engine adapters over the shared runtime:
//! native exactness, sampling accuracy, baseline semantics. (Moved from
//! the engines' unit-test modules when the shared per-interval loop was
//! extracted into `runtime` — these only exercise the public API.)

use sa_batched::Cluster;
use sa_types::{EventTime, StratumId, StreamItem, WindowSpec};
use streamapprox::{
    run_batched, run_pipelined, BatchedConfig, BatchedSystem, FixedFraction, FixedPerStratum,
    PipelinedConfig, PipelinedSystem, Query,
};

/// Deterministic values: stratum `s` item `i` has value `s·scale + (i%10)`.
fn stream(per_stratum: &[(u32, usize)], duration_ms: i64, scale: f64) -> Vec<StreamItem<f64>> {
    let parts: Vec<Vec<StreamItem<f64>>> = per_stratum
        .iter()
        .map(|&(s, n)| {
            let spacing = duration_ms as f64 / n as f64;
            (0..n)
                .map(|i| {
                    StreamItem::new(
                        StratumId(s),
                        EventTime::from_millis((i as f64 * spacing) as i64),
                        f64::from(s) * scale + (i % 10) as f64,
                    )
                })
                .collect()
        })
        .collect();
    sa_aggregator::merge_by_time(parts)
}

fn config() -> BatchedConfig {
    BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(250)
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
}

#[test]
fn native_is_exact() {
    let items = stream(&[(0, 1_000), (1, 100)], 2_000, 1_000.0);
    let true_sum_w0: f64 = items
        .iter()
        .filter(|i| i.time < EventTime::from_millis(1_000))
        .map(|i| i.value)
        .sum();
    let out = run_batched(
        &config(),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        items,
    );
    assert_eq!(out.items_ingested, 1_100);
    assert_eq!(out.items_aggregated, 1_100);
    let w0 = &out.windows[0];
    assert!((w0.sum.value - true_sum_w0).abs() < 1e-9);
    assert_eq!(w0.sum.bound.margin(), 0.0);
}

#[test]
fn streamapprox_approximates_within_bounds() {
    let items = stream(&[(0, 2_000), (1, 200), (2, 20)], 2_000, 1_000.0);
    let exact = run_batched(
        &config(),
        BatchedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        items.clone(),
    );
    let approx = run_batched(
        &config(),
        BatchedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.5),
        items,
    );
    assert!(approx.items_aggregated < approx.items_ingested);
    assert_eq!(approx.windows.len(), exact.windows.len());
    for (a, e) in approx.windows.iter().zip(&exact.windows) {
        assert_eq!(a.window, e.window);
        let loss = sa_estimate::accuracy_loss(a.mean.value, e.mean.value);
        assert!(loss < 0.25, "window {}: loss {loss}", a.window);
        // No stratum lost.
        assert_eq!(a.mean_by_stratum.len(), e.mean_by_stratum.len());
    }
}

#[test]
fn sts_matches_population_counts() {
    let items = stream(&[(0, 1_000), (1, 50)], 1_000, 1_000.0);
    let out = run_batched(
        &config(),
        BatchedSystem::Sts,
        &query(),
        &mut FixedFraction(0.4),
        items,
    );
    let w = &out.windows[0];
    assert_eq!(w.sum.population_size, 1_050);
    // STS samples proportionally: ~40% of each stratum.
    assert!(w.sum.sample_size >= 400);
}

#[test]
fn srs_estimates_total_reasonably() {
    let items = stream(&[(0, 5_000)], 1_000, 1_000.0);
    let exact: f64 = (0..5_000).map(|i| (i % 10) as f64).sum();
    let out = run_batched(
        &config(),
        BatchedSystem::Srs,
        &query(),
        &mut FixedFraction(0.5),
        items,
    );
    let w = &out.windows[0];
    assert!(
        sa_estimate::accuracy_loss(w.sum.value, exact) < 0.05,
        "sum {} vs {exact}",
        w.sum.value
    );
}

#[test]
#[should_panic(expected = "needs a fraction budget")]
fn srs_rejects_size_budgets() {
    let items = stream(&[(0, 100)], 500, 1_000.0);
    let _ = run_batched(
        &config(),
        BatchedSystem::Srs,
        &query(),
        &mut FixedPerStratum(10),
        items,
    );
}

#[test]
fn sliding_windows_combine_batches() {
    let items = stream(&[(0, 4_000)], 4_000, 1_000.0);
    let q = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_millis(2_000, 1_000));
    let out = run_batched(
        &config(),
        BatchedSystem::Native,
        &q,
        &mut FixedFraction(1.0),
        items,
    );
    // Windows: [0,2) [1,3) [2,4) plus the trailing flush [3,5).
    assert!(out.windows.len() >= 3);
    let w = &out.windows[0];
    assert_eq!(w.sum.population_size, 2_000);
}

#[test]
fn native_pipelined_is_exact() {
    let items = stream(&[(0, 1_000), (1, 100)], 2_000, 100.0);
    let exact_w0: f64 = items
        .iter()
        .filter(|i| i.time < EventTime::from_millis(1_000))
        .map(|i| i.value)
        .sum();
    let out = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        items,
    );
    assert_eq!(out.items_ingested, 1_100);
    assert_eq!(out.items_aggregated, 1_100);
    let w0 = &out.windows[0];
    assert!((w0.sum.value - exact_w0).abs() < 1e-9, "{}", w0.sum.value);
    assert_eq!(w0.sum.bound.margin(), 0.0);
}

#[test]
fn streamapprox_pipelined_tracks_native() {
    let items = stream(&[(0, 3_000), (1, 300), (2, 30)], 3_000, 100.0);
    let exact = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        items.clone(),
    );
    let approx = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.5),
        items,
    );
    assert!(approx.items_aggregated < approx.items_ingested);
    assert_eq!(approx.windows.len(), exact.windows.len());
    for (a, e) in approx.windows.iter().zip(&exact.windows) {
        assert_eq!(a.window, e.window);
        let loss = sa_estimate::accuracy_loss(a.mean.value, e.mean.value);
        assert!(loss < 0.25, "window {}: loss {loss}", a.window);
    }
}

#[test]
fn sliding_windows_assemble_from_slide_panes() {
    let items = stream(&[(0, 4_000)], 4_000, 100.0);
    let q = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_millis(2_000, 1_000));
    let out = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::Native,
        &q,
        &mut FixedFraction(1.0),
        items,
    );
    assert!(out.windows.len() >= 3);
    let w0 = &out.windows[0];
    assert_eq!(w0.window.len_millis(), 2_000);
    assert_eq!(w0.sum.population_size, 2_000);
}

#[test]
fn minority_stratum_survives_sampling() {
    // 10,000 vs 10 items; the sampler must keep stratum 1 in every window.
    let items = stream(&[(0, 10_000), (1, 10)], 1_000, 100.0);
    let out = run_pipelined(
        &PipelinedConfig::new(),
        PipelinedSystem::StreamApprox,
        &query(),
        &mut FixedFraction(0.1),
        items,
    );
    let w0 = &out.windows[0];
    assert!(
        w0.stratum_mean(StratumId(1)).is_some(),
        "minority stratum lost"
    );
}

#[test]
fn parallel_workers_union_correctly() {
    let items = stream(&[(0, 2_000)], 1_000, 100.0);
    let out = run_pipelined(
        &PipelinedConfig::new().with_sample_workers(4),
        PipelinedSystem::Native,
        &query(),
        &mut FixedFraction(1.0),
        items,
    );
    // All 2,000 items counted exactly once across the 4 workers.
    assert_eq!(out.windows[0].sum.population_size, 2_000);
}
