//! Wire-format impls for the mergeable sampler state.
//!
//! A serialized [`OasrsSampler`] carries *everything* that determines its
//! future behaviour: per-stratum reservoirs with their skip-ahead jump
//! state, the adaptive capacity plan, and the full RNG state. That is what
//! makes the distributed tier's bit-identity guarantee possible —
//! `decode(encode(sampler))` is indistinguishable from the original, so
//! merging shipped digests equals merging the in-process samplers they
//! came from, draw for draw.
//!
//! Decoders enforce the same invariants the constructors do
//! ([`Reservoir::new`] and `SizingPolicy` validation panic on violations;
//! the wire layer reports [`SaError::Wire`] instead) plus the
//! representation invariants a hostile payload could otherwise smuggle
//! past them: an over-full reservoir, a seen-counter below the held count,
//! out-of-order strata, or the all-zero xoshiro state the generator can
//! never reach.

use crate::oasrs::{OasrsSampler, SizingPolicy, MAX_STRATUM_ID};
use crate::reservoir::{Jump, Reservoir};
use crate::scasrs::ScasrsStats;
use rand::rngs::SmallRng;
use sa_types::wire::{put_u64_le, put_varint};
use sa_types::{SaError, StratumId, WireDecode, WireEncode, WireReader};
use std::collections::BTreeMap;

impl WireEncode for Jump {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.skip);
    }
}

impl WireDecode for Jump {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(Jump {
            skip: r.read_varint()?,
        })
    }
}

impl<T> Reservoir<T> {
    /// Encodes the reservoir's full state — capacity, seen counter, jump
    /// state, and held items — serializing each item through the caller's
    /// `item` codec. This is the state-extraction hook checkpointing uses
    /// for record types that carry their codec out-of-band; the
    /// [`WireEncode`] impl is this with `item = WireEncode::encode`.
    pub fn encode_state_with(&self, out: &mut Vec<u8>, item: &mut dyn FnMut(&T, &mut Vec<u8>)) {
        self.capacity.encode(out);
        put_varint(out, self.seen);
        self.jump.encode(out);
        put_varint(out, self.items.len() as u64);
        for v in &self.items {
            item(v, out);
        }
    }

    /// Decodes a reservoir serialized by
    /// [`encode_state_with`](Reservoir::encode_state_with), reading each
    /// item through the caller's `item` codec and enforcing the same
    /// representation invariants as the [`WireDecode`] impl.
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] on malformed input, an over-full
    /// reservoir, or a seen counter below the held count.
    pub fn decode_state_with(
        r: &mut WireReader<'_>,
        item: &mut dyn FnMut(&mut WireReader<'_>) -> Result<T, SaError>,
    ) -> Result<Self, SaError> {
        let capacity = usize::decode(r)?;
        let seen = r.read_varint()?;
        let jump = Option::<Jump>::decode(r)?;
        let len = r.read_len()?;
        let mut items = Vec::with_capacity(len.min(capacity.max(1)));
        for _ in 0..len {
            items.push(item(r)?);
        }
        if capacity == 0 {
            return Err(SaError::Wire("reservoir capacity zero".to_string()));
        }
        if items.len() > capacity {
            return Err(SaError::Wire(format!(
                "reservoir holds {} items over capacity {capacity}",
                items.len()
            )));
        }
        if seen < items.len() as u64 {
            return Err(SaError::Wire(format!(
                "reservoir seen counter {seen} below held count {}",
                items.len()
            )));
        }
        Ok(Reservoir {
            items,
            capacity,
            seen,
            jump,
        })
    }
}

impl<T: WireEncode> WireEncode for Reservoir<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.encode_state_with(out, &mut |v, out| v.encode(out));
    }
}

impl<T: WireDecode> WireDecode for Reservoir<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Reservoir::decode_state_with(r, &mut T::decode)
    }
}

impl WireEncode for SizingPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            SizingPolicy::PerStratum(n) => {
                out.push(0);
                n.encode(out);
            }
            SizingPolicy::SharedTotal(n) => {
                out.push(1);
                n.encode(out);
            }
            SizingPolicy::FractionOfPrevious { fraction, initial } => {
                out.push(2);
                fraction.encode(out);
                initial.encode(out);
            }
        }
    }
}

impl WireDecode for SizingPolicy {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let policy = match r.read_u8()? {
            0 => SizingPolicy::PerStratum(usize::decode(r)?),
            1 => SizingPolicy::SharedTotal(usize::decode(r)?),
            2 => SizingPolicy::FractionOfPrevious {
                fraction: r.read_f64()?,
                initial: usize::decode(r)?,
            },
            t => return Err(SaError::Wire(format!("unknown sizing policy tag {t}"))),
        };
        let valid = match policy {
            SizingPolicy::PerStratum(n) | SizingPolicy::SharedTotal(n) => n > 0,
            SizingPolicy::FractionOfPrevious { fraction, initial } => {
                fraction > 0.0 && fraction <= 1.0 && initial > 0
            }
        };
        if !valid {
            return Err(SaError::Wire(format!("invalid sizing policy {policy:?}")));
        }
        Ok(policy)
    }
}

impl<V> OasrsSampler<V> {
    /// Encodes the sampler's full state — sizing policy, every stratum
    /// reservoir with its jump state, the adaptive capacity plan, and the
    /// RNG words — serializing each held item through the caller's `item`
    /// codec. This is the state-extraction hook checkpointing uses for
    /// record types that carry their codec out-of-band; the [`WireEncode`]
    /// impl is this with `item = WireEncode::encode`.
    pub fn encode_state_with(&self, out: &mut Vec<u8>, item: &mut dyn FnMut(&V, &mut Vec<u8>)) {
        self.sizing.encode(out);
        // The sparse stratum table ships as (index, reservoir) pairs in
        // ascending index order; the flat table rebuilds on decode.
        put_varint(out, self.active as u64);
        for (idx, slot) in self.strata.iter().enumerate() {
            if let Some(res) = slot {
                idx.encode(out);
                res.encode_state_with(out, item);
            }
        }
        put_varint(out, self.next_capacity.len() as u64);
        for (id, cap) in &self.next_capacity {
            id.encode(out);
            cap.encode(out);
        }
        for word in self.rng.state() {
            put_u64_le(out, word);
        }
    }

    /// Decodes a sampler serialized by
    /// [`encode_state_with`](OasrsSampler::encode_state_with), reading
    /// each held item through the caller's `item` codec. The decoded
    /// sampler continues the original's random stream draw for draw.
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] on malformed input or any smuggled
    /// invariant violation (out-of-order strata, zero planned capacity,
    /// the all-zero RNG state).
    pub fn decode_state_with(
        r: &mut WireReader<'_>,
        item: &mut dyn FnMut(&mut WireReader<'_>) -> Result<V, SaError>,
    ) -> Result<Self, SaError> {
        let sizing = SizingPolicy::decode(r)?;
        let present = r.read_len()?;
        let mut strata: Vec<Option<Reservoir<V>>> = Vec::new();
        let mut last_idx: Option<usize> = None;
        for _ in 0..present {
            let idx = usize::decode(r)?;
            if idx >= MAX_STRATUM_ID {
                return Err(SaError::Wire(format!("stratum index {idx} too sparse")));
            }
            if last_idx.is_some_and(|prev| idx <= prev) {
                return Err(SaError::Wire(format!(
                    "stratum indices out of order at {idx}"
                )));
            }
            last_idx = Some(idx);
            let res = Reservoir::<V>::decode_state_with(r, item)?;
            if idx >= strata.len() {
                strata.resize_with(idx + 1, || None);
            }
            strata[idx] = Some(res);
        }
        let plans = r.read_len()?;
        let mut next_capacity = BTreeMap::new();
        let mut last_id: Option<StratumId> = None;
        for _ in 0..plans {
            let id = StratumId::decode(r)?;
            let cap = usize::decode(r)?;
            if last_id.is_some_and(|prev| id <= prev) {
                return Err(SaError::Wire(format!(
                    "capacity plan strata out of order at {id}"
                )));
            }
            if cap == 0 {
                return Err(SaError::Wire(format!("zero planned capacity for {id}")));
            }
            last_id = Some(id);
            next_capacity.insert(id, cap);
        }
        let state = [
            r.read_u64_le()?,
            r.read_u64_le()?,
            r.read_u64_le()?,
            r.read_u64_le()?,
        ];
        if state == [0; 4] {
            return Err(SaError::Wire("all-zero rng state".to_string()));
        }
        Ok(OasrsSampler {
            sizing,
            strata,
            active: present,
            next_capacity,
            rng: SmallRng::from_state(state),
        })
    }
}

impl<V: WireEncode> WireEncode for OasrsSampler<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.encode_state_with(out, &mut |v, out| v.encode(out));
    }
}

impl<V: WireDecode> WireDecode for OasrsSampler<V> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        OasrsSampler::decode_state_with(r, &mut V::decode)
    }
}

impl WireEncode for ScasrsStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.accepted_directly.encode(out);
        self.waitlisted.encode(out);
        self.rejected_directly.encode(out);
    }
}

impl WireDecode for ScasrsStats {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(ScasrsStats {
            accepted_directly: usize::decode(r)?,
            waitlisted: usize::decode(r)?,
            rejected_directly: usize::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn reservoir_roundtrips_with_jump_state() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut res = Reservoir::new(4);
        for x in 0..100u32 {
            res.observe(x as f64, &mut rng);
        }
        let back = Reservoir::<f64>::from_wire_bytes(&res.to_wire_bytes()).unwrap();
        assert_eq!(back, res);
    }

    #[test]
    fn sampler_roundtrip_continues_the_same_stream() {
        // The decoded sampler must not just *look* equal: observed further,
        // it must draw the exact same random decisions.
        let mut a = OasrsSampler::new(SizingPolicy::SharedTotal(16), 9);
        for i in 0..500u32 {
            a.observe(StratumId(i % 3), f64::from(i));
        }
        let mut b = OasrsSampler::<f64>::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        assert_eq!(a, b);
        for i in 0..500u32 {
            a.observe(StratumId(i % 5), f64::from(i) * 0.5);
            b.observe(StratumId(i % 5), f64::from(i) * 0.5);
        }
        assert_eq!(a.finish_interval(), b.finish_interval());
        // Capacity plans survived too.
        assert_eq!(a, b);
    }

    #[test]
    fn hostile_sampler_payloads_rejected() {
        let mut good = OasrsSampler::new(SizingPolicy::PerStratum(2), 1);
        good.observe(StratumId(0), 1.0f64);
        let bytes = good.to_wire_bytes();
        // Every truncation errors instead of panicking.
        for cut in 0..bytes.len() {
            assert!(OasrsSampler::<f64>::from_wire_bytes(&bytes[..cut]).is_err());
        }
        // All-zero RNG state.
        let mut zeroed = bytes.clone();
        let n = zeroed.len();
        zeroed[n - 32..].fill(0);
        assert!(matches!(
            OasrsSampler::<f64>::from_wire_bytes(&zeroed),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn overfull_reservoir_rejected() {
        let mut bytes = Vec::new();
        1usize.encode(&mut bytes); // capacity 1
        put_varint(&mut bytes, 2); // seen 2
        Option::<Jump>::None.encode(&mut bytes);
        vec![1.0f64, 2.0].encode(&mut bytes); // 2 items > capacity
        assert!(matches!(
            Reservoir::<f64>::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn undercounted_reservoir_rejected() {
        let mut bytes = Vec::new();
        4usize.encode(&mut bytes); // capacity
        put_varint(&mut bytes, 1); // seen 1 < 2 held
        Option::<Jump>::None.encode(&mut bytes);
        vec![1.0f64, 2.0].encode(&mut bytes);
        assert!(matches!(
            Reservoir::<f64>::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn state_hooks_roundtrip_codec_less_records() {
        // A record type with no WireEncode/WireDecode impls: the state
        // hooks carry its codec as closures instead.
        #[derive(Debug, Clone, PartialEq)]
        struct Rec {
            t: i64,
            v: f64,
        }
        let mut a = OasrsSampler::new(SizingPolicy::SharedTotal(8), 42);
        for i in 0..300i64 {
            a.observe(
                StratumId((i % 4) as u32),
                Rec {
                    t: i,
                    v: i as f64 * 0.25,
                },
            );
        }
        let mut bytes = Vec::new();
        a.encode_state_with(&mut bytes, &mut |rec, out| {
            rec.t.encode(out);
            rec.v.encode(out);
        });
        let mut r = WireReader::new(&bytes);
        let mut b = OasrsSampler::<Rec>::decode_state_with(&mut r, &mut |r| {
            Ok(Rec {
                t: i64::decode(r)?,
                v: r.read_f64()?,
            })
        })
        .unwrap();
        r.finish().unwrap();
        assert_eq!(a, b);
        // Observed further, both draw the same random decisions.
        for i in 0..300i64 {
            let rec = Rec {
                t: i,
                v: i as f64 * 0.5,
            };
            a.observe(StratumId((i % 6) as u32), rec.clone());
            b.observe(StratumId((i % 6) as u32), rec);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn scasrs_stats_roundtrip() {
        let stats = ScasrsStats {
            accepted_directly: 10,
            waitlisted: 3,
            rejected_directly: 99,
        };
        let back = ScasrsStats::from_wire_bytes(&stats.to_wire_bytes()).unwrap();
        assert_eq!(back, stats);
    }
}
