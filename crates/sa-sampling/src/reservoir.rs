//! Classic reservoir sampling (Vitter 1985; Algorithm 1 in the paper),
//! accelerated by skip-ahead gap sampling once the reservoir is full.
//!
//! A [`Reservoir`] maintains a uniform random sample of fixed capacity `N`
//! over a stream of unknown length: the first `N` items fill the reservoir,
//! and the `i`-th item (`i > N`) is accepted with probability `N/i`,
//! replacing a random incumbent. Every item seen so far has the same
//! `N/i` probability of being in the reservoir at any point.
//!
//! # The skip-ahead fast path
//!
//! The naive Algorithm 1 (kept as [`Reservoir::observe`]'s fallback
//! branch) pays one RNG draw and one branch per item — `O(n)` draws for a
//! stream of `n` items, even though only `O(N log(n/N))` items are ever
//! accepted. The skip-ahead family — Vitter's Algorithms X/Z for uniform
//! reservoirs, the exponential jumps of A-ExpJ (Efraimidis & Spirakis
//! 2006) for weighted ones — inverts the loop: instead of asking "is this
//! item accepted?" per item, draw the *gap* to the next accepted item once
//! per acceptance and skip everything in between with zero randomness.
//!
//! With the reservoir full and `t` items seen, the gap `S` (the number of
//! rejected items before the next acceptance) has the exact distribution
//!
//! ```text
//! P(S ≥ s) = ∏_{i=1}^{s} (1 - N/(t+i))
//! ```
//!
//! This kernel samples `S` by direct CDF inversion — Vitter's
//! Algorithm X: draw one uniform `V ∈ (0,1)` and scan for the smallest
//! `s` with `P(S ≥ s+1) ≤ V`, accumulating the tail product one factor at
//! a time. The scan costs one floating-point multiply per *skipped* item
//! and no RNG or transcendental calls at all, so an acceptance costs
//! exactly two RNG draws (the gap's `V`, the replacement slot) no matter
//! how many items it skips — where Algorithm 1 pays a `gen_range` on
//! every single item. (Vitter's Algorithm Z and A-ExpJ instead spend
//! `exp`/`ln` calls per acceptance to jump in O(1); at the sampling
//! fractions this runtime targets, where mean gaps are short, the
//! multiply scan is cheaper than transcendental jump arithmetic while
//! drawing from the *same exact gap law*.)
//!
//! Because inversion uses only the public counters `(t, N)`, the skip
//! state is valid from **any** uniform reservoir state — a fresh fill, a
//! [`shrink_to`](Reservoir::shrink_to) re-budget, or a
//! [`merge_with`](Reservoir::merge_with) union all simply re-arm on the
//! next observation. The inclusion probabilities are exactly
//! Algorithm 1's `N/i` (the chi-square equivalence tests below and the
//! proptests in `tests/properties.rs` hold the selection distribution to
//! it). The only fallback to per-item draws is a near-saturated `seen`
//! counter (possible after merging astronomically long streams), where an
//! eager gap scan could overshoot the stream's real end by an unbounded
//! amount.
//!
//! [`observe_batch`](Reservoir::observe_batch) and
//! [`observe_run`](Reservoir::observe_run) feed whole slices/runs through
//! the same state machine, consuming skipped runs with one `seen += k`
//! bump and no RNG calls — the batch ingest fast path the engines build
//! on. Per-item and batch observation draw from the RNG in exactly the
//! same order, so the two paths produce bit-for-bit identical reservoirs
//! from the same seed.

use rand::{PreparedUniform, Rng};
use serde::{Deserialize, Serialize};

/// The seen-count-weighted union behind every merge in this crate: draws
/// up to `capacity` items from two uniform samples over *disjoint*
/// streams, choosing each slot's source with probability proportional to
/// the population mass the source still represents, then a uniformly
/// random item from it, without replacement.
///
/// If both inputs are uniform samples of their streams (inclusion
/// probability `|a|/ca` resp. `|b|/cb`), the output is a uniform sample
/// of the combined stream: every one of the `ca + cb` original items ends
/// up in the union with the same probability. This one routine backs
/// [`Reservoir::merge_with`], [`crate::OasrsSampler::merge_with`],
/// [`crate::merge_stratum_samples`] and [`crate::merge_srs_samples`].
///
/// Counters saturate rather than overflow: two near-`u64::MAX` seen
/// counts merge into a (still proportionally-drawn) saturated total
/// instead of panicking.
pub(crate) fn weighted_union<T, R: Rng + ?Sized>(
    mut a: Vec<T>,
    mut ca: u64,
    mut b: Vec<T>,
    mut cb: u64,
    capacity: usize,
    rng: &mut R,
) -> Vec<T> {
    let mut out = Vec::with_capacity(capacity.min(a.len() + b.len()));
    while out.len() < capacity && (!a.is_empty() || !b.is_empty()) {
        let take_a = if a.is_empty() {
            false
        } else if b.is_empty() {
            true
        } else {
            // Draw proportionally to the remaining represented mass.
            rng.gen_range(0..ca.saturating_add(cb)) < ca
        };
        let src_items = if take_a { &mut a } else { &mut b };
        let idx = rng.gen_range(0..src_items.len());
        out.push(src_items.swap_remove(idx));
        if take_a {
            ca = ca.saturating_sub(1);
        } else {
            cb = cb.saturating_sub(1);
        }
    }
    out
}

/// Beyond this many items seen, gap sampling yields to per-item draws:
/// the inversion scan's cost is one multiply per *skipped* item, and with
/// a (near-)saturated counter — mergers of astronomically long streams —
/// a single eagerly-drawn gap of order `t/N` could dwarf the number of
/// items that will ever actually arrive.
const GAP_SCAN_LIMIT: u64 = 1 << 32;

/// The armed skip-ahead state: how many more items to reject without
/// consulting the RNG before the next acceptance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct Jump {
    pub(crate) skip: u64,
}

/// A uniform draw from the open interval `(0, 1)` — `gen::<f64>()` can
/// return exactly `0.0`, which would force every inversion scan to run
/// the tail product all the way to underflow.
fn unit_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

/// A fixed-capacity uniform reservoir sample over a stream.
///
/// # Example
///
/// ```
/// use sa_sampling::Reservoir;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut res = Reservoir::new(10);
/// for x in 0..1_000 {
///     res.observe(x, &mut rng);
/// }
/// assert_eq!(res.len(), 10);
/// assert_eq!(res.seen(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reservoir<T> {
    pub(crate) items: Vec<T>,
    pub(crate) capacity: usize,
    pub(crate) seen: u64,
    /// Pre-drawn skip-ahead state; `None` means "arm on the next full
    /// observation" (underfull, freshly mutated, or deserialized).
    #[serde(default)]
    pub(crate) jump: Option<Jump>,
}

impl<T> Reservoir<T> {
    /// Creates an empty reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-slot reservoir can never
    /// represent its stream and Equation 1's weight would be undefined.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            items: Vec::with_capacity(capacity.min(1_024)),
            capacity,
            seen: 0,
            jump: None,
        }
    }

    /// Draws the gap to the next accepted item by exact CDF inversion
    /// (Vitter's Algorithm X): the smallest `s` with
    /// `∏_{i=1}^{s+1} (1 - N/(t+i)) ≤ V`, one multiply per scanned item
    /// and a single RNG draw. Caller guarantees `seen < GAP_SCAN_LIMIT`.
    fn arm_jump<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let v = unit_open(rng);
        let n = self.capacity as f64;
        let mut t = self.seen as f64;
        let mut tail = 1.0; // running P(S ≥ skip + 1)
        let mut skip = 0u64;
        loop {
            t += 1.0;
            tail *= (t - n) / t;
            // `tail` is strictly decreasing and underflows to 0.0 in the
            // limit, so the scan always terminates.
            if tail <= v {
                break;
            }
            skip += 1;
        }
        self.jump = Some(Jump { skip });
    }

    /// Whether the skip-ahead fast path applies: the reservoir is full
    /// and the counter far enough from saturation for eager gap scans.
    #[inline]
    fn gap_mode(&self) -> bool {
        self.items.len() == self.capacity && self.seen < GAP_SCAN_LIMIT
    }

    /// Offers one stream item to the reservoir (Algorithm 1, with the
    /// skip-ahead fast path of the module docs once the reservoir is
    /// full).
    ///
    /// Returns `true` if the item was admitted (possibly evicting an
    /// incumbent), `false` if it was rejected. On the fast path a
    /// rejection costs no RNG draw at all.
    pub fn observe<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) -> bool {
        if self.items.len() < self.capacity {
            // Fill phase: every item enters.
            self.seen += 1;
            self.items.push(item);
            true
        } else if self.gap_mode() {
            if self.jump.is_none() {
                self.arm_jump(rng);
            }
            let jump = self.jump.as_mut().expect("armed above");
            if jump.skip > 0 {
                jump.skip -= 1;
                self.seen += 1;
                false
            } else {
                self.seen += 1;
                let slot = rng.gen_range(0..self.capacity);
                self.items[slot] = item;
                self.arm_jump(rng);
                true
            }
        } else {
            // Exact per-item fallback (near-saturated counter): accept
            // the i-th item with probability N/i, then replace a
            // uniformly random incumbent. Sampling j uniformly from
            // [0, i) and admitting iff j < N does both draws with one
            // sample.
            self.seen = self.seen.saturating_add(1);
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
                true
            } else {
                false
            }
        }
    }

    /// Offers a run of `count` items through the batch fast path,
    /// materializing only the accepted ones: `accept(offset)` is called
    /// with strictly increasing offsets in `0..count`, once per item that
    /// enters the reservoir; skipped items are never touched.
    ///
    /// Whole skipped gaps are consumed with one `seen += k` bump and zero
    /// RNG calls. The RNG draw order is identical to offering the same
    /// `count` items through [`observe`](Reservoir::observe) one at a
    /// time, so batch and per-item observation are bit-for-bit
    /// interchangeable.
    pub fn observe_run<R, F>(&mut self, count: u64, rng: &mut R, mut accept: F)
    where
        R: Rng + ?Sized,
        F: FnMut(u64) -> T,
    {
        let mut off = 0u64;
        // Fill phase: every item enters until the reservoir is full.
        while off < count && self.items.len() < self.capacity {
            self.seen += 1;
            let item = accept(off);
            self.items.push(item);
            off += 1;
        }
        // Replacement-slot draws for the whole run share one prepared
        // sampler: the capacity is fixed for the run's duration, so
        // Lemire's rejection threshold and the range checks are set up
        // once per accepting run instead of once per accepted item —
        // while consuming a `u64` stream bit-identical to `gen_range`
        // (so batch and per-item paths still agree exactly).
        let mut slot_draw: Option<PreparedUniform> = None;
        while off < count && self.gap_mode() {
            if self.jump.is_none() {
                self.arm_jump(rng);
            }
            let jump = self.jump.as_mut().expect("armed above");
            let remaining = count - off;
            if jump.skip >= remaining {
                // The rest of the run falls inside the current gap.
                jump.skip -= remaining;
                self.seen += remaining;
                return;
            }
            let gap = jump.skip;
            off += gap;
            self.seen += gap + 1;
            let draw = *slot_draw.get_or_insert_with(|| PreparedUniform::new(self.capacity as u64));
            let slot = draw.sample(rng) as usize;
            self.items[slot] = accept(off);
            self.arm_jump(rng);
            off += 1;
        }
        // Exact per-item fallback (near-saturated counter) for the rest.
        while off < count {
            self.seen = self.seen.saturating_add(1);
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = accept(off);
            }
            off += 1;
        }
    }

    /// Offers a slice of items through the batch fast path — skipped runs
    /// cost one counter bump, accepted items one clone.
    pub fn observe_batch<R: Rng + ?Sized>(&mut self, items: &[T], rng: &mut R)
    where
        T: Clone,
    {
        self.observe_run(items.len() as u64, rng, |off| items[off as usize].clone());
    }

    /// The sampled items, in reservoir order (not stream order).
    #[inline]
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items currently in the reservoir (`Y = min(seen, N)`).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds no items yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity `N`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of items offered so far (the stratum counter `C`).
    #[inline]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether the reservoir has filled to capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Shrinks the capacity to `new_capacity`, evicting uniformly random
    /// items if the reservoir currently holds more than that.
    ///
    /// Removing uniformly random elements from a uniform sample leaves a
    /// uniform sample, so this preserves the reservoir invariant. Used when
    /// an adaptive sizing policy reallocates budget after new strata appear.
    /// The skip-ahead state re-arms for the new capacity on the next
    /// observation — gap inversion is valid from any uniform state (see
    /// module docs).
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity` is zero.
    pub fn shrink_to<R: Rng + ?Sized>(&mut self, new_capacity: usize, rng: &mut R) {
        assert!(new_capacity > 0, "reservoir capacity must be positive");
        while self.items.len() > new_capacity {
            let victim = rng.gen_range(0..self.items.len());
            self.items.swap_remove(victim);
        }
        self.capacity = new_capacity;
        self.jump = None;
    }

    /// Grows the capacity to `new_capacity` (no-op if not larger).
    ///
    /// Note that growing mid-stream makes the sample slightly
    /// *under-weighted* for the already-seen prefix; OASRS only grows
    /// capacities at interval boundaries where the reservoir is fresh.
    pub fn grow_to(&mut self, new_capacity: usize) {
        if new_capacity > self.capacity {
            self.capacity = new_capacity;
            self.jump = None;
        }
    }

    /// Resets the reservoir for a new time interval, keeping the capacity.
    pub fn reset(&mut self) {
        self.items.clear();
        self.seen = 0;
        self.jump = None;
    }

    /// Consumes the reservoir, returning `(items, seen)`.
    pub fn into_parts(self) -> (Vec<T>, u64) {
        (self.items, self.seen)
    }

    /// Merges two reservoirs over *disjoint* streams into a single reservoir
    /// of capacity `capacity`, preserving uniformity over the union.
    ///
    /// Each output slot is drawn from `self` with probability proportional
    /// to the number of items `self` has seen (and from `other` otherwise),
    /// without replacement — the textbook seen-count-weighted
    /// distributed-reservoir merge. This is the
    /// single-reservoir building block; the paper-faithful path for merging
    /// whole *stratified* shard samples is [`crate::OasrsSampler::merge_with`]
    /// (per-stratum weighted unions plus counter bookkeeping) and the
    /// sample-level [`crate::merge_stratified`]. The `N/w`-capacity union of
    /// `StratifiedSample::union` (§3.2) remains the right combine when
    /// capacities were split across workers up front.
    ///
    /// The merged reservoir re-arms its skip-ahead state on the next
    /// observation; seen counts saturate at `u64::MAX` instead of
    /// overflowing (and a saturated counter observes further through the
    /// exact per-item fallback).
    pub fn merge_with<R: Rng + ?Sized>(
        self,
        other: Reservoir<T>,
        capacity: usize,
        rng: &mut R,
    ) -> Reservoir<T> {
        assert!(capacity > 0, "reservoir capacity must be positive");
        let (a, ca) = self.into_parts();
        let (b, cb) = other.into_parts();
        let mut merged = Reservoir::new(capacity);
        merged.seen = ca.saturating_add(cb);
        merged.items = weighted_union(a, ca, b, cb, capacity, rng);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn fills_up_before_sampling() {
        let mut r = Reservoir::new(5);
        let mut g = rng(1);
        for x in 0..5 {
            assert!(r.observe(x, &mut g));
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
        assert!(r.is_full());
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = Reservoir::new(8);
        let mut g = rng(2);
        for x in 0..10_000 {
            r.observe(x, &mut g);
            assert!(r.len() <= 8);
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Reservoir::<u8>::new(0);
    }

    #[test]
    fn short_stream_keeps_everything() {
        let mut r = Reservoir::new(100);
        let mut g = rng(3);
        for x in 0..7 {
            r.observe(x, &mut g);
        }
        assert_eq!(r.len(), 7);
        assert_eq!(r.seen(), 7);
        assert!(!r.is_full());
    }

    /// Statistical check of uniformity: over many trials, each of the 20
    /// stream items should land in a 5-slot reservoir about 25% of the time.
    #[test]
    fn selection_is_approximately_uniform() {
        const TRIALS: usize = 20_000;
        const STREAM: usize = 20;
        const CAP: usize = 5;
        let mut counts = [0u32; STREAM];
        let mut g = rng(42);
        for _ in 0..TRIALS {
            let mut r = Reservoir::new(CAP);
            for x in 0..STREAM {
                r.observe(x, &mut g);
            }
            for &x in r.items() {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * CAP as f64 / STREAM as f64;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "item {x}: count {c}, expected ~{expected}");
        }
    }

    /// The classic per-item Algorithm 1 loop, as the pre-skip-ahead code
    /// ran it — the reference the chi-square equivalence tests compare
    /// the fast path against.
    fn classic_sample(stream: usize, cap: usize, g: &mut SmallRng) -> Vec<usize> {
        let mut items: Vec<usize> = Vec::new();
        for x in 0..stream {
            let seen = (x + 1) as u64;
            if items.len() < cap {
                items.push(x);
            } else {
                let j = g.gen_range(0..seen);
                if (j as usize) < cap {
                    items[j as usize] = x;
                }
            }
        }
        items
    }

    /// Chi-square equivalence of the skip-ahead path against the classic
    /// per-item Algorithm 1: per-position inclusion counts from the two
    /// implementations must be statistically indistinguishable.
    ///
    /// Two-sample homogeneity statistic `Σ (O₁ - O₂)² / (O₁ + O₂)` over
    /// the 32 stream positions, compared against the χ²₃₂ 0.999 quantile
    /// (≈ 62.5). Seeds are fixed, so the test is deterministic.
    #[test]
    fn skip_ahead_matches_classic_chi_square() {
        const TRIALS: usize = 40_000;
        const STREAM: usize = 32;
        const CAP: usize = 5;
        let mut skip_counts = [0f64; STREAM];
        let mut classic_counts = [0f64; STREAM];
        let mut g_skip = rng(0xA11CE);
        let mut g_classic = rng(0xB0B);
        for _ in 0..TRIALS {
            let mut r = Reservoir::new(CAP);
            for x in 0..STREAM {
                r.observe(x, &mut g_skip);
            }
            for &x in r.items() {
                skip_counts[x] += 1.0;
            }
            for &x in &classic_sample(STREAM, CAP, &mut g_classic) {
                classic_counts[x] += 1.0;
            }
        }
        let mut chi2 = 0.0;
        for (o1, o2) in skip_counts.iter().zip(&classic_counts) {
            chi2 += (o1 - o2).powi(2) / (o1 + o2);
        }
        assert!(
            chi2 < 62.5,
            "skip-ahead vs classic inclusion frequencies diverge: chi2 {chi2:.1} \
             (threshold 62.5 = chi2_32 at p=0.999)\nskip:    {skip_counts:?}\nclassic: {classic_counts:?}"
        );
        // And both must match the theoretical uniform N/n inclusion rate.
        let expected = TRIALS as f64 * CAP as f64 / STREAM as f64;
        let var = TRIALS as f64 * (CAP as f64 / STREAM as f64) * (1.0 - CAP as f64 / STREAM as f64);
        let mut gof = 0.0;
        for o in skip_counts {
            gof += (o - expected).powi(2) / var;
        }
        assert!(
            gof < 62.5,
            "skip-ahead inclusion frequencies not uniform: chi2 {gof:.1}"
        );
    }

    /// Batch observation is the same state machine as per-item observation:
    /// identical seed, identical reservoir, bit for bit — for every way of
    /// splitting the stream into runs.
    #[test]
    fn observe_batch_is_bit_identical_to_per_item() {
        const STREAM: u32 = 5_000;
        const CAP: usize = 16;
        let items: Vec<u32> = (0..STREAM).collect();
        let mut g = rng(99);
        let mut per_item = Reservoir::new(CAP);
        for &x in &items {
            per_item.observe(x, &mut g);
        }
        for chunk in [1usize, 7, 64, 1_024, STREAM as usize] {
            let mut g = rng(99);
            let mut batched = Reservoir::new(CAP);
            for run in items.chunks(chunk) {
                batched.observe_batch(run, &mut g);
            }
            assert_eq!(batched, per_item, "chunk size {chunk}");
        }
    }

    /// Mid-stream capacity changes re-arm the skip state — and per-item
    /// and batch observation stay bit-for-bit identical across them.
    #[test]
    fn shrink_keeps_paths_bit_identical() {
        const CAP: usize = 10;
        let mut g1 = rng(5);
        let mut g2 = rng(5);
        let mut a = Reservoir::new(CAP);
        let mut b = Reservoir::new(CAP);
        for x in 0..500u32 {
            a.observe(x, &mut g1);
        }
        b.observe_batch(&(0..500u32).collect::<Vec<_>>(), &mut g2);
        a.shrink_to(4, &mut g1);
        b.shrink_to(4, &mut g2);
        for x in 500..900u32 {
            a.observe(x, &mut g1);
        }
        b.observe_batch(&(500..900u32).collect::<Vec<_>>(), &mut g2);
        assert_eq!(a, b);
        assert_eq!(a.seen(), 900);
    }

    /// The uniformity oracle for the post-shrink re-arm: shrinking keeps
    /// the sample uniform and skip-ahead continues from the shrunk state
    /// with the exact `N/i` inclusion law.
    #[test]
    fn shrink_then_observe_stays_uniform() {
        const TRIALS: usize = 30_000;
        const STREAM: usize = 24;
        let mut counts = [0u32; STREAM];
        let mut g = rng(0x5EED);
        for _ in 0..TRIALS {
            let mut r = Reservoir::new(8);
            for x in 0..12 {
                r.observe(x, &mut g);
            }
            r.shrink_to(4, &mut g);
            for x in 12..STREAM {
                r.observe(x, &mut g);
            }
            assert_eq!(r.len(), 4);
            for &x in r.items() {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * 4.0 / STREAM as f64;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.08, "item {x}: count {c}, expected ~{expected}");
        }
    }

    /// The skipped-run counter bump must account every item exactly once,
    /// and acceptances stay at the `O(N log(n/N))` the gap law predicts.
    #[test]
    fn observe_run_counts_every_item() {
        let mut r = Reservoir::new(4);
        let mut g = rng(11);
        let mut accepted = 0u64;
        r.observe_run(100_000, &mut g, |_| {
            accepted += 1;
            0u8
        });
        assert_eq!(r.seen(), 100_000);
        assert_eq!(r.len(), 4);
        assert!(accepted >= 4, "at least the fill must be accepted");
        assert!(
            accepted < 1_000,
            "O(N log(n/N)) acceptances expected, got {accepted}"
        );
    }

    #[test]
    fn reset_clears_state_but_keeps_capacity() {
        let mut r = Reservoir::new(4);
        let mut g = rng(5);
        for x in 0..100 {
            r.observe(x, &mut g);
        }
        r.reset();
        assert_eq!(r.len(), 0);
        assert_eq!(r.seen(), 0);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn shrink_preserves_sample_size_bound() {
        let mut r = Reservoir::new(10);
        let mut g = rng(6);
        for x in 0..50 {
            r.observe(x, &mut g);
        }
        r.shrink_to(3, &mut g);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        // seen is untouched; the reservoir still represents 50 items.
        assert_eq!(r.seen(), 50);
    }

    #[test]
    fn grow_only_increases() {
        let mut r = Reservoir::<u8>::new(5);
        r.grow_to(3);
        assert_eq!(r.capacity(), 5);
        r.grow_to(9);
        assert_eq!(r.capacity(), 9);
    }

    #[test]
    fn merge_is_uniform_over_union() {
        // Merge a reservoir over items 0..10 with one over items 10..30;
        // every item should appear with probability ~cap/30.
        const TRIALS: usize = 30_000;
        const CAP: usize = 6;
        let mut counts = [0u32; 30];
        let mut g = rng(7);
        for _ in 0..TRIALS {
            let mut ra = Reservoir::new(CAP);
            let mut rb = Reservoir::new(CAP);
            for x in 0..10 {
                ra.observe(x, &mut g);
            }
            for x in 10..30 {
                rb.observe(x, &mut g);
            }
            let merged = ra.merge_with(rb, CAP, &mut g);
            assert_eq!(merged.len(), CAP);
            assert_eq!(merged.seen(), 30);
            for &x in merged.items() {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * CAP as f64 / 30.0;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.08, "item {x}: count {c}, expected ~{expected}");
        }
    }

    #[test]
    fn merge_handles_underfull_inputs() {
        let mut g = rng(8);
        let mut ra = Reservoir::new(5);
        ra.observe(1, &mut g);
        let rb = Reservoir::new(5);
        let merged = ra.merge_with(rb, 5, &mut g);
        assert_eq!(merged.items(), &[1]);
        assert_eq!(merged.seen(), 1);
    }

    #[test]
    fn merge_saturates_near_max_seen_counts() {
        let mut g = rng(9);
        let mut ra = Reservoir::new(3);
        let mut rb = Reservoir::new(3);
        for x in 0..5 {
            ra.observe(x, &mut g);
            rb.observe(x + 10, &mut g);
        }
        // Forge astronomically large counters via parts-level surgery:
        // merging must saturate, not panic.
        let (a_items, _) = ra.into_parts();
        let (b_items, _) = rb.into_parts();
        let merged = weighted_union(a_items, u64::MAX - 1, b_items, u64::MAX - 1, 3, &mut g);
        assert_eq!(merged.len(), 3);
    }

    /// A (near-)saturated counter must keep working — per-item fallback,
    /// no gap scan — instead of hanging in an astronomically long
    /// inversion scan, on both the per-item and the batch path.
    #[test]
    fn saturated_counter_falls_back_to_per_item() {
        let mut g = rng(10);
        let mut ra = Reservoir::new(3);
        let mut rb = Reservoir::new(3);
        for x in 0..5u64 {
            ra.observe(x, &mut g);
            rb.observe(x + 10, &mut g);
        }
        let mut merged = ra.merge_with(rb, 3, &mut g);
        merged.seen = u64::MAX - 50;
        for x in 0..100u64 {
            merged.observe(x + 100, &mut g);
            assert_eq!(merged.len(), 3);
        }
        assert_eq!(merged.seen(), u64::MAX);
        merged.observe_run(1_000, &mut g, |off| off);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.seen(), u64::MAX);
    }
}
