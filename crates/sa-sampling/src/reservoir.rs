//! Classic reservoir sampling (Vitter 1985; Algorithm 1 in the paper).
//!
//! A [`Reservoir`] maintains a uniform random sample of fixed capacity `N`
//! over a stream of unknown length: the first `N` items fill the reservoir,
//! and the `i`-th item (`i > N`) is accepted with probability `N/i`,
//! replacing a random incumbent. Every item seen so far has the same
//! `N/i` probability of being in the reservoir at any point.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The seen-count-weighted union behind every merge in this crate: draws
/// up to `capacity` items from two uniform samples over *disjoint*
/// streams, choosing each slot's source with probability proportional to
/// the population mass the source still represents, then a uniformly
/// random item from it, without replacement.
///
/// If both inputs are uniform samples of their streams (inclusion
/// probability `|a|/ca` resp. `|b|/cb`), the output is a uniform sample
/// of the combined stream: every one of the `ca + cb` original items ends
/// up in the union with the same probability. This one routine backs
/// [`Reservoir::merge_with`], [`crate::OasrsSampler::merge_with`],
/// [`crate::merge_stratum_samples`] and [`crate::merge_srs_samples`].
pub(crate) fn weighted_union<T, R: Rng + ?Sized>(
    mut a: Vec<T>,
    mut ca: u64,
    mut b: Vec<T>,
    mut cb: u64,
    capacity: usize,
    rng: &mut R,
) -> Vec<T> {
    let mut out = Vec::with_capacity(capacity.min(a.len() + b.len()));
    while out.len() < capacity && (!a.is_empty() || !b.is_empty()) {
        let take_a = if a.is_empty() {
            false
        } else if b.is_empty() {
            true
        } else {
            // Draw proportionally to the remaining represented mass.
            rng.gen_range(0..(ca + cb)) < ca
        };
        let src_items = if take_a { &mut a } else { &mut b };
        let idx = rng.gen_range(0..src_items.len());
        out.push(src_items.swap_remove(idx));
        if take_a {
            ca = ca.saturating_sub(1);
        } else {
            cb = cb.saturating_sub(1);
        }
    }
    out
}

/// A fixed-capacity uniform reservoir sample over a stream.
///
/// # Example
///
/// ```
/// use sa_sampling::Reservoir;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut res = Reservoir::new(10);
/// for x in 0..1_000 {
///     res.observe(x, &mut rng);
/// }
/// assert_eq!(res.len(), 10);
/// assert_eq!(res.seen(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
}

impl<T> Reservoir<T> {
    /// Creates an empty reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-slot reservoir can never
    /// represent its stream and Equation 1's weight would be undefined.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            items: Vec::with_capacity(capacity.min(1_024)),
            capacity,
            seen: 0,
        }
    }

    /// Offers one stream item to the reservoir (Algorithm 1).
    ///
    /// Returns `true` if the item was admitted (possibly evicting an
    /// incumbent), `false` if it was rejected.
    pub fn observe<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) -> bool {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            true
        } else {
            // Accept the i-th item with probability N/i, then replace a
            // uniformly random incumbent. Sampling j uniformly from [0, i)
            // and admitting iff j < N does both draws with one sample.
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
                true
            } else {
                false
            }
        }
    }

    /// The sampled items, in reservoir order (not stream order).
    #[inline]
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items currently in the reservoir (`Y = min(seen, N)`).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds no items yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity `N`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of items offered so far (the stratum counter `C`).
    #[inline]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether the reservoir has filled to capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Shrinks the capacity to `new_capacity`, evicting uniformly random
    /// items if the reservoir currently holds more than that.
    ///
    /// Removing uniformly random elements from a uniform sample leaves a
    /// uniform sample, so this preserves the reservoir invariant. Used when
    /// an adaptive sizing policy reallocates budget after new strata appear.
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity` is zero.
    pub fn shrink_to<R: Rng + ?Sized>(&mut self, new_capacity: usize, rng: &mut R) {
        assert!(new_capacity > 0, "reservoir capacity must be positive");
        while self.items.len() > new_capacity {
            let victim = rng.gen_range(0..self.items.len());
            self.items.swap_remove(victim);
        }
        self.capacity = new_capacity;
    }

    /// Grows the capacity to `new_capacity` (no-op if not larger).
    ///
    /// Note that growing mid-stream makes the sample slightly
    /// *under-weighted* for the already-seen prefix; OASRS only grows
    /// capacities at interval boundaries where the reservoir is fresh.
    pub fn grow_to(&mut self, new_capacity: usize) {
        if new_capacity > self.capacity {
            self.capacity = new_capacity;
        }
    }

    /// Resets the reservoir for a new time interval, keeping the capacity.
    pub fn reset(&mut self) {
        self.items.clear();
        self.seen = 0;
    }

    /// Consumes the reservoir, returning `(items, seen)`.
    pub fn into_parts(self) -> (Vec<T>, u64) {
        (self.items, self.seen)
    }

    /// Merges two reservoirs over *disjoint* streams into a single reservoir
    /// of capacity `capacity`, preserving uniformity over the union.
    ///
    /// Each output slot is drawn from `self` with probability proportional
    /// to the number of items `self` has seen (and from `other` otherwise),
    /// without replacement — the textbook seen-count-weighted
    /// distributed-reservoir merge. This is the
    /// single-reservoir building block; the paper-faithful path for merging
    /// whole *stratified* shard samples is [`crate::OasrsSampler::merge_with`]
    /// (per-stratum weighted unions plus counter bookkeeping) and the
    /// sample-level [`crate::merge_stratified`]. The `N/w`-capacity union of
    /// `StratifiedSample::union` (§3.2) remains the right combine when
    /// capacities were split across workers up front.
    pub fn merge_with<R: Rng + ?Sized>(
        self,
        other: Reservoir<T>,
        capacity: usize,
        rng: &mut R,
    ) -> Reservoir<T> {
        assert!(capacity > 0, "reservoir capacity must be positive");
        let (a, ca) = self.into_parts();
        let (b, cb) = other.into_parts();
        let mut merged = Reservoir::new(capacity);
        merged.seen = ca + cb;
        merged.items = weighted_union(a, ca, b, cb, capacity, rng);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn fills_up_before_sampling() {
        let mut r = Reservoir::new(5);
        let mut g = rng(1);
        for x in 0..5 {
            assert!(r.observe(x, &mut g));
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
        assert!(r.is_full());
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = Reservoir::new(8);
        let mut g = rng(2);
        for x in 0..10_000 {
            r.observe(x, &mut g);
            assert!(r.len() <= 8);
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Reservoir::<u8>::new(0);
    }

    #[test]
    fn short_stream_keeps_everything() {
        let mut r = Reservoir::new(100);
        let mut g = rng(3);
        for x in 0..7 {
            r.observe(x, &mut g);
        }
        assert_eq!(r.len(), 7);
        assert_eq!(r.seen(), 7);
        assert!(!r.is_full());
    }

    /// Statistical check of uniformity: over many trials, each of the 20
    /// stream items should land in a 5-slot reservoir about 25% of the time.
    #[test]
    fn selection_is_approximately_uniform() {
        const TRIALS: usize = 20_000;
        const STREAM: usize = 20;
        const CAP: usize = 5;
        let mut counts = [0u32; STREAM];
        let mut g = rng(42);
        for _ in 0..TRIALS {
            let mut r = Reservoir::new(CAP);
            for x in 0..STREAM {
                r.observe(x, &mut g);
            }
            for &x in r.items() {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * CAP as f64 / STREAM as f64;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "item {x}: count {c}, expected ~{expected}");
        }
    }

    #[test]
    fn reset_clears_state_but_keeps_capacity() {
        let mut r = Reservoir::new(4);
        let mut g = rng(5);
        for x in 0..100 {
            r.observe(x, &mut g);
        }
        r.reset();
        assert_eq!(r.len(), 0);
        assert_eq!(r.seen(), 0);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn shrink_preserves_sample_size_bound() {
        let mut r = Reservoir::new(10);
        let mut g = rng(6);
        for x in 0..50 {
            r.observe(x, &mut g);
        }
        r.shrink_to(3, &mut g);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        // seen is untouched; the reservoir still represents 50 items.
        assert_eq!(r.seen(), 50);
    }

    #[test]
    fn grow_only_increases() {
        let mut r = Reservoir::<u8>::new(5);
        r.grow_to(3);
        assert_eq!(r.capacity(), 5);
        r.grow_to(9);
        assert_eq!(r.capacity(), 9);
    }

    #[test]
    fn merge_is_uniform_over_union() {
        // Merge a reservoir over items 0..10 with one over items 10..30;
        // every item should appear with probability ~cap/30.
        const TRIALS: usize = 30_000;
        const CAP: usize = 6;
        let mut counts = [0u32; 30];
        let mut g = rng(7);
        for _ in 0..TRIALS {
            let mut ra = Reservoir::new(CAP);
            let mut rb = Reservoir::new(CAP);
            for x in 0..10 {
                ra.observe(x, &mut g);
            }
            for x in 10..30 {
                rb.observe(x, &mut g);
            }
            let merged = ra.merge_with(rb, CAP, &mut g);
            assert_eq!(merged.len(), CAP);
            assert_eq!(merged.seen(), 30);
            for &x in merged.items() {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * CAP as f64 / 30.0;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.08, "item {x}: count {c}, expected ~{expected}");
        }
    }

    #[test]
    fn merge_handles_underfull_inputs() {
        let mut g = rng(8);
        let mut ra = Reservoir::new(5);
        ra.observe(1, &mut g);
        let rb = Reservoir::new(5);
        let merged = ra.merge_with(rb, 5, &mut g);
        assert_eq!(merged.items(), &[1]);
        assert_eq!(merged.seen(), 1);
    }
}
