//! Sampling algorithms for approximate stream analytics.
//!
//! This crate implements the sampling layer of the StreamApprox
//! reproduction (Middleware 2017):
//!
//! * [`Reservoir`] — classic fixed-capacity reservoir sampling
//!   (Vitter 1985; Algorithm 1 of the paper), with a skip-ahead gap
//!   sampler (Vitter's Algorithm X family) and batch `observe_run` /
//!   `observe_batch` entry points that skip whole rejected runs with
//!   zero RNG draws.
//! * [`OasrsSampler`] — **Online Adaptive Stratified Reservoir Sampling**
//!   (Algorithm 3), the paper's core contribution: one reservoir and one
//!   counter per sub-stream, Equation-1 weights, adaptive per-interval
//!   capacities, and synchronization-free distributed execution via
//!   [`OasrsSampler::for_worker`] + `StratifiedSample::union`.
//! * [`scasrs_sample`] — the two-threshold random-sort simple random
//!   sampling behind Apache Spark's `sample` (Meng, ICML 2013), used as the
//!   paper's SRS baseline.
//! * [`sample_by_key`] / [`sample_by_key_exact`] — Spark's stratified
//!   sampling operators, used as the paper's STS baseline.
//! * [`BernoulliSampler`] — plain coin-flip sampling.
//!
//! # The mergeable-sampler layer
//!
//! Shard-local samples combine without bias, so sampling parallelizes
//! across workers. Two schemes are supported:
//!
//! * **split capacity** ([`OasrsSampler::for_worker`] +
//!   `StratifiedSample::union`): each of `w` workers runs reservoirs of
//!   size `N/w`, and the union concatenates them — the paper's §3.2
//!   distributed execution.
//! * **full capacity + weighted merge** ([`OasrsSampler::merge_with`],
//!   [`merge_stratified`] / [`merge_stratum_samples`] /
//!   [`merge_all_stratified`], [`merge_srs_samples`]): each shard runs at
//!   full capacity and the shard-local samples are united by the
//!   seen-count-weighted reservoir union, which preserves uniform
//!   inclusion probabilities even when shards saw very different volumes.
//!   This is the mergeable path the sharded engine builds on.
//!
//! All samplers are deterministic given a seed, which keeps every
//! experiment in the benchmark harness reproducible.
//!
//! # Quick start
//!
//! ```
//! use sa_sampling::{OasrsSampler, SizingPolicy};
//! use sa_types::StratumId;
//!
//! let mut sampler = OasrsSampler::new(SizingPolicy::PerStratum(100), 7);
//! for i in 0..10_000u32 {
//!     sampler.observe(StratumId(i % 3), f64::from(i));
//! }
//! let sample = sampler.finish_interval();
//! assert_eq!(sample.num_strata(), 3);
//! assert_eq!(sample.total_sampled(), 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bernoulli;
mod oasrs;
mod reservoir;
mod scasrs;
mod stratified;
mod wire;

pub use bernoulli::BernoulliSampler;
pub use oasrs::{OasrsSampler, SizingPolicy};
pub use reservoir::Reservoir;
pub use scasrs::{
    merge_srs_samples, random_sort_sample, scasrs_sample, scasrs_sample_with_stats,
    scasrs_thresholds, ScasrsStats, SCASRS_DELTA,
};
pub use stratified::{
    group_by_stratum, merge_all_stratified, merge_stratified, merge_stratum_samples, sample_by_key,
    sample_by_key_exact,
};
