//! Plain Bernoulli (coin-flip) sampling, the cheapest possible baseline and
//! a building block for Spark's `sampleByKey`.

use rand::Rng;

/// A stateless Bernoulli sampler: keeps each item independently with a fixed
/// probability.
///
/// # Example
///
/// ```
/// use sa_sampling::BernoulliSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(9);
/// let sampler = BernoulliSampler::new(0.5);
/// let kept = (0..10_000).filter(|_| sampler.keep(&mut rng)).count();
/// assert!((kept as f64 - 5_000.0).abs() < 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliSampler {
    fraction: f64,
}

impl BernoulliSampler {
    /// Creates a sampler keeping items with probability `fraction`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn new(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "sampling fraction must be in (0, 1]"
        );
        BernoulliSampler { fraction }
    }

    /// The configured keep probability.
    #[inline]
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Flips the coin for one item.
    #[inline]
    pub fn keep<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.fraction >= 1.0 || rng.gen::<f64>() < self.fraction
    }

    /// Filters a batch, returning the kept items.
    pub fn sample<T, R: Rng + ?Sized>(&self, items: Vec<T>, rng: &mut R) -> Vec<T> {
        items.into_iter().filter(|_| self.keep(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn full_fraction_keeps_all() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = BernoulliSampler::new(1.0);
        assert_eq!(s.sample((0..100).collect::<Vec<_>>(), &mut rng).len(), 100);
    }

    #[test]
    fn keep_rate_tracks_fraction() {
        let mut rng = SmallRng::seed_from_u64(2);
        for &f in &[0.1, 0.5, 0.9] {
            let s = BernoulliSampler::new(f);
            let kept = (0..50_000).filter(|_| s.keep(&mut rng)).count() as f64;
            let expected = 50_000.0 * f;
            assert!(
                (kept - expected).abs() < expected * 0.1 + 100.0,
                "f={f}: kept {kept}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sampling fraction must be in (0, 1]")]
    fn rejects_fraction_above_one() {
        let _ = BernoulliSampler::new(1.1);
    }

    #[test]
    #[should_panic(expected = "sampling fraction must be in (0, 1]")]
    fn rejects_zero() {
        let _ = BernoulliSampler::new(0.0);
    }
}
