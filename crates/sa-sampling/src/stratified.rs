//! Spark-style stratified sampling — the paper's improved STS baseline
//! (§4.1.1).
//!
//! Apache Spark offers two stratified samplers over keyed data:
//!
//! * `sampleByKey(fractions)` — one pass of per-stratum Bernoulli coin
//!   flips; the realized per-stratum sample size is random.
//! * `sampleByKeyExact(fractions)` — draws exactly `⌈f·C_k⌉` items per
//!   stratum by running ScaSRS within each stratum, which requires knowing
//!   the stratum counts (a full pass / groupBy) first.
//!
//! Both operate on *already grouped* data: in a real Spark job the grouping
//! is a `groupBy(strata)` shuffle with worker synchronization, which is
//! exactly the overhead StreamApprox avoids (§4.1). The batched engine in
//! `sa-batched` wires these functions behind a real hash shuffle so the
//! baseline pays that cost honestly.

use crate::reservoir::weighted_union;
use crate::scasrs::scasrs_sample;
use rand::Rng;
use sa_types::{StratifiedSample, StratumId, StratumSample};

/// Per-stratum Bernoulli sampling (Spark's `sampleByKey`).
///
/// Each item of stratum `k` is kept independently with probability
/// `fraction`; the realized sample size is binomial. Weights generalize to
/// `C_k / Y_k` (Horvitz–Thompson), see [`StratumSample::weight`].
///
/// # Example
///
/// ```
/// use sa_sampling::sample_by_key;
/// use sa_types::StratumId;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let groups = vec![(StratumId(0), (0..1000).collect::<Vec<i32>>())];
/// let sample = sample_by_key(groups, 0.1, &mut rng);
/// let s0 = sample.stratum(StratumId(0)).unwrap();
/// assert!(s0.sample_size() > 50 && s0.sample_size() < 150);
/// ```
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]`.
pub fn sample_by_key<T, R: Rng + ?Sized>(
    groups: Vec<(StratumId, Vec<T>)>,
    fraction: f64,
    rng: &mut R,
) -> StratifiedSample<T> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "sampling fraction must be in (0, 1]"
    );
    let mut out = StratifiedSample::new();
    for (stratum, items) in groups {
        let population = items.len() as u64;
        let capacity = ((population as f64 * fraction).ceil() as usize).max(1);
        let selected: Vec<T> = items
            .into_iter()
            .filter(|_| rng.gen::<f64>() < fraction)
            .collect();
        out.push(StratumSample::new(stratum, selected, population, capacity));
    }
    out
}

/// Exact per-stratum sampling (Spark's `sampleByKeyExact`): draws exactly
/// `⌈fraction · C_k⌉` items from each stratum via ScaSRS.
///
/// This is the more accurate but more expensive baseline: on top of the
/// grouping shuffle it runs a per-stratum random sort. The per-stratum
/// sample size stays *proportional to the stratum size*, which the paper
/// identifies as the reason STS cannot keep up with OASRS's fixed-size
/// reservoirs throughput-wise (§5.2).
///
/// # Example
///
/// ```
/// use sa_sampling::sample_by_key_exact;
/// use sa_types::StratumId;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(2);
/// let groups = vec![
///     (StratumId(0), (0..100).collect::<Vec<i32>>()),
///     (StratumId(1), (0..10).collect::<Vec<i32>>()),
/// ];
/// let sample = sample_by_key_exact(groups, 0.3, &mut rng);
/// assert_eq!(sample.stratum(StratumId(0)).unwrap().sample_size(), 30);
/// assert_eq!(sample.stratum(StratumId(1)).unwrap().sample_size(), 3);
/// ```
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]`.
pub fn sample_by_key_exact<T, R: Rng + ?Sized>(
    groups: Vec<(StratumId, Vec<T>)>,
    fraction: f64,
    rng: &mut R,
) -> StratifiedSample<T> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "sampling fraction must be in (0, 1]"
    );
    let mut out = StratifiedSample::new();
    for (stratum, items) in groups {
        let population = items.len() as u64;
        let target = ((population as f64 * fraction).ceil() as usize).min(items.len());
        let selected = scasrs_sample(items, target, rng);
        out.push(StratumSample::new(
            stratum,
            selected,
            population,
            target.max(1),
        ));
    }
    out
}

/// Merges two samples of the *same stratum* drawn over disjoint portions
/// of its sub-stream into one sample of at most `capacity` items, via the
/// seen-count-weighted reservoir union (the per-stratum step of
/// [`merge_stratified`]). Populations sum; inclusion probabilities stay
/// uniform over the combined sub-stream.
///
/// # Panics
///
/// Panics if the two samples describe different strata.
pub fn merge_stratum_samples<T, R: Rng + ?Sized>(
    a: StratumSample<T>,
    b: StratumSample<T>,
    capacity: usize,
    rng: &mut R,
) -> StratumSample<T> {
    assert_eq!(
        a.stratum, b.stratum,
        "cannot merge samples of different strata"
    );
    let stratum = a.stratum;
    let population = a.population + b.population;
    let items = weighted_union(a.items, a.population, b.items, b.population, capacity, rng);
    StratumSample::new(stratum, items, population, capacity)
}

/// Merges two stratified samples drawn by shard-local samplers that each
/// ran at *full* per-stratum capacity over disjoint portions of one
/// stream — the sample-level form of `OasrsSampler::merge_with`.
///
/// Strata present on both sides are united down to the larger of their two
/// capacities by [`merge_stratum_samples`]; strata only one side saw pass
/// through unchanged. Contrast with `StratifiedSample::union` (§3.2),
/// which concatenates per-worker reservoirs of *split* capacity `N/w` and
/// therefore sums capacities instead.
pub fn merge_stratified<T, R: Rng + ?Sized>(
    a: StratifiedSample<T>,
    b: StratifiedSample<T>,
    rng: &mut R,
) -> StratifiedSample<T> {
    let mut out = StratifiedSample::new();
    let mut rhs = b.into_strata().into_iter().peekable();
    for sa in a.into_strata() {
        while rhs
            .peek()
            .is_some_and(|sb: &StratumSample<T>| sb.stratum < sa.stratum)
        {
            out.push(rhs.next().expect("peeked"));
        }
        if rhs.peek().is_some_and(|sb| sb.stratum == sa.stratum) {
            let sb = rhs.next().expect("peeked");
            let capacity = sa.capacity.max(sb.capacity);
            out.push(merge_stratum_samples(sa, sb, capacity, rng));
        } else {
            out.push(sa);
        }
    }
    for sb in rhs {
        out.push(sb);
    }
    out
}

/// Folds any number of shard-local stratified samples into one, merging in
/// the order given — callers pass shards in a canonical order (ascending
/// shard index) so the RNG draws, and therefore the run, are reproducible.
pub fn merge_all_stratified<T, R: Rng + ?Sized>(
    parts: impl IntoIterator<Item = StratifiedSample<T>>,
    rng: &mut R,
) -> StratifiedSample<T> {
    let mut merged: Option<StratifiedSample<T>> = None;
    for part in parts {
        merged = Some(match merged {
            None => part,
            Some(acc) => merge_stratified(acc, part, rng),
        });
    }
    merged.unwrap_or_else(StratifiedSample::new)
}

/// Groups a flat keyed batch by stratum, preserving encounter order of
/// strata. This is the single-machine analogue of `groupBy(strata)`; the
/// distributed version (with its shuffle) lives in `sa-batched`.
pub fn group_by_stratum<T>(items: Vec<(StratumId, T)>) -> Vec<(StratumId, Vec<T>)> {
    let mut order: Vec<StratumId> = Vec::new();
    let mut buckets: std::collections::HashMap<StratumId, Vec<T>> =
        std::collections::HashMap::new();
    for (k, v) in items {
        buckets
            .entry(k)
            .or_insert_with(|| {
                order.push(k);
                Vec::new()
            })
            .push(v);
    }
    order
        .into_iter()
        .map(|k| {
            let v = buckets.remove(&k).expect("bucket exists for seen key");
            (k, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn groups(sizes: &[(u32, usize)]) -> Vec<(StratumId, Vec<usize>)> {
        sizes
            .iter()
            .map(|&(k, n)| (StratumId(k), (0..n).collect()))
            .collect()
    }

    #[test]
    fn exact_sampler_hits_exact_sizes() {
        let mut g = rng(1);
        let sample = sample_by_key_exact(groups(&[(0, 1000), (1, 50), (2, 3)]), 0.2, &mut g);
        assert_eq!(sample.stratum(StratumId(0)).unwrap().sample_size(), 200);
        assert_eq!(sample.stratum(StratumId(1)).unwrap().sample_size(), 10);
        // ceil(0.2 * 3) = 1
        assert_eq!(sample.stratum(StratumId(2)).unwrap().sample_size(), 1);
    }

    #[test]
    fn exact_sampler_is_proportional_unlike_oasrs() {
        // The defining contrast with OASRS: a 10× bigger stratum gets a 10×
        // bigger sample.
        let mut g = rng(2);
        let sample = sample_by_key_exact(groups(&[(0, 10_000), (1, 1_000)]), 0.5, &mut g);
        let y0 = sample.stratum(StratumId(0)).unwrap().sample_size();
        let y1 = sample.stratum(StratumId(1)).unwrap().sample_size();
        assert_eq!(y0, 10 * y1);
    }

    #[test]
    fn bernoulli_sampler_concentrates_around_fraction() {
        let mut g = rng(3);
        let sample = sample_by_key(groups(&[(0, 100_000)]), 0.25, &mut g);
        let y = sample.stratum(StratumId(0)).unwrap().sample_size() as f64;
        assert!((y - 25_000.0).abs() < 1_000.0, "y = {y}");
    }

    #[test]
    fn no_stratum_is_dropped() {
        let mut g = rng(4);
        let sample = sample_by_key_exact(groups(&[(0, 10_000), (7, 1)]), 0.1, &mut g);
        assert_eq!(sample.num_strata(), 2);
        assert_eq!(sample.stratum(StratumId(7)).unwrap().sample_size(), 1);
    }

    #[test]
    fn weights_reflect_populations() {
        let mut g = rng(5);
        let sample = sample_by_key_exact(groups(&[(0, 100)]), 0.25, &mut g);
        let s0 = sample.stratum(StratumId(0)).unwrap();
        // Y = 25 of C = 100 → weight 4.
        assert!((s0.weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn full_fraction_keeps_everything() {
        let mut g = rng(6);
        let sample = sample_by_key_exact(groups(&[(0, 57)]), 1.0, &mut g);
        let s0 = sample.stratum(StratumId(0)).unwrap();
        assert_eq!(s0.sample_size(), 57);
        assert_eq!(s0.weight(), 1.0);
    }

    #[test]
    fn group_by_stratum_partitions_correctly() {
        let flat = vec![
            (StratumId(1), "a"),
            (StratumId(0), "b"),
            (StratumId(1), "c"),
            (StratumId(2), "d"),
            (StratumId(0), "e"),
        ];
        let grouped = group_by_stratum(flat);
        // Encounter order of strata: 1, 0, 2.
        assert_eq!(grouped[0], (StratumId(1), vec!["a", "c"]));
        assert_eq!(grouped[1], (StratumId(0), vec!["b", "e"]));
        assert_eq!(grouped[2], (StratumId(2), vec!["d"]));
    }

    #[test]
    fn merge_stratum_samples_sums_population_and_respects_capacity() {
        let mut g = rng(9);
        let a = StratumSample::new(StratumId(0), vec![1.0, 2.0, 3.0], 9, 3);
        let b = StratumSample::new(StratumId(0), vec![4.0, 5.0, 6.0], 6, 3);
        let m = merge_stratum_samples(a, b, 3, &mut g);
        assert_eq!(m.population, 15);
        assert_eq!(m.sample_size(), 3);
        assert_eq!(m.capacity, 3);
        assert!((m.weight() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_stratified_walks_disjoint_and_shared_strata() {
        let mut g = rng(10);
        let a: StratifiedSample<f64> = [
            StratumSample::new(StratumId(0), vec![1.0], 4, 2),
            StratumSample::new(StratumId(2), vec![2.0, 3.0], 8, 2),
        ]
        .into_iter()
        .collect();
        let b: StratifiedSample<f64> = [
            StratumSample::new(StratumId(1), vec![9.0], 1, 2),
            StratumSample::new(StratumId(2), vec![4.0, 5.0], 6, 2),
        ]
        .into_iter()
        .collect();
        let m = merge_stratified(a, b, &mut g);
        assert_eq!(m.num_strata(), 3);
        assert_eq!(m.stratum(StratumId(0)).unwrap().population, 4);
        assert_eq!(m.stratum(StratumId(1)).unwrap().items, vec![9.0]);
        let shared = m.stratum(StratumId(2)).unwrap();
        assert_eq!(shared.population, 14);
        assert_eq!(shared.sample_size(), 2);
        assert_eq!(shared.capacity, 2);
    }

    #[test]
    fn merge_all_stratified_folds_in_order() {
        let mut g = rng(11);
        let parts: Vec<StratifiedSample<f64>> = (0..3)
            .map(|i| {
                [StratumSample::new(StratumId(0), vec![f64::from(i)], 5, 2)]
                    .into_iter()
                    .collect()
            })
            .collect();
        let m = merge_all_stratified(parts, &mut g);
        let s = m.stratum(StratumId(0)).unwrap();
        assert_eq!(s.population, 15);
        assert_eq!(s.sample_size(), 2);
        let empty: Vec<StratifiedSample<f64>> = Vec::new();
        assert!(merge_all_stratified(empty, &mut g).is_empty());
    }

    #[test]
    #[should_panic(expected = "sampling fraction must be in (0, 1]")]
    fn rejects_zero_fraction() {
        let mut g = rng(7);
        let _ = sample_by_key(groups(&[(0, 10)]), 0.0, &mut g);
    }

    #[test]
    fn bernoulli_per_stratum_uniformity() {
        // Each item must be included with ~the same probability.
        const TRIALS: usize = 5_000;
        let mut counts = [0u32; 20];
        let mut g = rng(8);
        for _ in 0..TRIALS {
            let sample = sample_by_key(groups(&[(0, 20)]), 0.4, &mut g);
            for &x in &sample.stratum(StratumId(0)).unwrap().items {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * 0.4;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "item {x}: count {c} vs expected {expected}");
        }
    }
}
