//! Online Adaptive Stratified Reservoir Sampling — OASRS (Algorithm 3 and
//! §3.2 of the paper).
//!
//! OASRS combines stratified and reservoir sampling without the drawbacks of
//! either: it never overlooks a sub-stream regardless of popularity, needs no
//! advance knowledge of sub-stream statistics, and runs in one pass with no
//! synchronization between workers.
//!
//! Per time interval the sampler maintains, for every sub-stream `S_i` seen
//! so far, a [`Reservoir`] of size `N_i` and a counter `C_i`. At the end of
//! the interval each stratum yields its `Y_i = min(C_i, N_i)` sampled items
//! and the weight `W_i = max(C_i / N_i, 1)` of Equation 1, packaged as a
//! [`StratifiedSample`] for the estimators.

use crate::reservoir::Reservoir;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_types::{StratifiedSample, StratumId, StratumSample, StreamItem};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How per-stratum reservoir capacities `N_i` are chosen (the paper's
/// "adaptive cost function considering the specified query budget", §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizingPolicy {
    /// Every stratum gets a reservoir of exactly this many slots. This is
    /// the paper's headline configuration: "a sample of a fixed size for
    /// each sub-stream" (§5.2).
    PerStratum(usize),
    /// A total budget split evenly across the strata seen so far. When a new
    /// stratum appears mid-interval, existing reservoirs shrink (by uniform
    /// random eviction, which preserves uniformity) so the total stays
    /// within budget.
    SharedTotal(usize),
    /// Adaptive fraction targeting: each stratum's capacity for the *next*
    /// interval is `ceil(fraction × C_i)` of the interval that just ended,
    /// starting from `initial` for strata never seen before. This is how a
    /// sampling-fraction budget maps onto size-based reservoirs while
    /// tracking fluctuating arrival rates.
    FractionOfPrevious {
        /// Target sampling fraction in `(0, 1]`.
        fraction: f64,
        /// Capacity used for a stratum's first interval.
        initial: usize,
    },
}

impl SizingPolicy {
    fn validate(&self) {
        match *self {
            SizingPolicy::PerStratum(n) | SizingPolicy::SharedTotal(n) => {
                assert!(n > 0, "sampling budget must be positive")
            }
            SizingPolicy::FractionOfPrevious { fraction, initial } => {
                assert!(
                    fraction > 0.0 && fraction <= 1.0,
                    "sampling fraction must be in (0, 1]"
                );
                assert!(initial > 0, "initial capacity must be positive");
            }
        }
    }
}

/// The OASRS sampler for one worker over one (or many) time intervals.
///
/// Call [`observe`](OasrsSampler::observe) for every arriving item and
/// [`finish_interval`](OasrsSampler::finish_interval) at each interval
/// boundary (batch or window slide); the sampler re-arms itself for the next
/// interval, carrying capacity decisions forward per the sizing policy.
///
/// # Example
///
/// ```
/// use sa_sampling::{OasrsSampler, SizingPolicy};
/// use sa_types::StratumId;
///
/// let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(3), 42);
/// // Sub-stream 0 sends 6 items, sub-stream 1 sends 2.
/// for v in 0..6 {
///     oasrs.observe(StratumId(0), v as f64);
/// }
/// for v in 0..2 {
///     oasrs.observe(StratumId(1), v as f64);
/// }
/// let sample = oasrs.finish_interval();
/// let s0 = sample.stratum(StratumId(0)).unwrap();
/// let s1 = sample.stratum(StratumId(1)).unwrap();
/// assert_eq!((s0.sample_size(), s0.weight()), (3, 2.0)); // C=6 > N=3 → W=C/N
/// assert_eq!((s1.sample_size(), s1.weight()), (2, 1.0)); // C=2 ≤ N=3 → W=1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OasrsSampler<V> {
    pub(crate) sizing: SizingPolicy,
    /// Per-stratum reservoirs, indexed by stratum id. Sampling sits on the
    /// hot receiving path, so lookup must be an array index: stratum ids
    /// are expected to be small and dense (the aggregator assigns them per
    /// source). `None` marks ids not seen this interval.
    pub(crate) strata: Vec<Option<Reservoir<V>>>,
    pub(crate) active: usize,
    /// Capacities carried into the next interval (FractionOfPrevious).
    pub(crate) next_capacity: BTreeMap<StratumId, usize>,
    pub(crate) rng: SmallRng,
}

/// Guard against sparse stratum ids blowing up the flat table.
pub(crate) const MAX_STRATUM_ID: usize = 1 << 20;

impl<V> OasrsSampler<V> {
    /// Creates a sampler with the given sizing policy and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the policy's budget, fraction or initial capacity is
    /// invalid (zero budget, fraction outside `(0, 1]`).
    pub fn new(sizing: SizingPolicy, seed: u64) -> Self {
        sizing.validate();
        OasrsSampler {
            sizing,
            strata: Vec::new(),
            active: 0,
            next_capacity: BTreeMap::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Creates the sampler for worker `worker` of `num_workers` in the
    /// paper's distributed execution (§3.2): per-stratum capacities become
    /// `ceil(N_i / w)` and the RNG is decorrelated per worker. Union the
    /// per-worker results with [`StratifiedSample::union`].
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`, `worker >= num_workers`, or the policy
    /// is invalid.
    pub fn for_worker(sizing: SizingPolicy, seed: u64, worker: usize, num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        assert!(worker < num_workers, "worker index out of range");
        let shard = |n: usize| n.div_ceil(num_workers);
        let sharded = match sizing {
            SizingPolicy::PerStratum(n) => SizingPolicy::PerStratum(shard(n).max(1)),
            SizingPolicy::SharedTotal(n) => SizingPolicy::SharedTotal(shard(n).max(1)),
            SizingPolicy::FractionOfPrevious { fraction, initial } => {
                SizingPolicy::FractionOfPrevious {
                    fraction,
                    initial: shard(initial).max(1),
                }
            }
        };
        // Per-worker seeds derive through the run-wide rule so workers draw
        // independent streams and runs reproduce across engines.
        let worker_seed = sa_types::RunSeed::new(seed).for_worker(worker).value();
        Self::new(sharded, worker_seed)
    }

    /// The sizing policy in force.
    pub fn sizing(&self) -> SizingPolicy {
        self.sizing
    }

    /// Number of distinct strata observed in the current interval.
    pub fn num_strata(&self) -> usize {
        self.active
    }

    /// Total items offered in the current interval (`ΣC_i`).
    pub fn total_seen(&self) -> u64 {
        self.strata.iter().flatten().map(Reservoir::seen).sum()
    }

    /// Total items currently held (`ΣY_i`).
    pub fn total_held(&self) -> u64 {
        self.strata.iter().flatten().map(|r| r.len() as u64).sum()
    }

    /// Capacity a brand-new stratum would receive right now, given that it
    /// will make `|S| = active` strata in total.
    fn capacity_for_new_stratum(&self, stratum: StratumId, active: usize) -> usize {
        match self.sizing {
            SizingPolicy::PerStratum(n) => n,
            SizingPolicy::SharedTotal(total) => (total / active).max(1),
            SizingPolicy::FractionOfPrevious { initial, .. } => self
                .next_capacity
                .get(&stratum)
                .copied()
                .unwrap_or(initial)
                .max(1),
        }
    }

    /// Registers a stratum seen for the first time this interval (the cold
    /// path of [`observe`](OasrsSampler::observe)).
    #[cold]
    fn admit_stratum(&mut self, stratum: StratumId) {
        let idx = stratum.index();
        assert!(idx < MAX_STRATUM_ID, "stratum id {idx} too sparse");
        if idx >= self.strata.len() {
            self.strata.resize_with(idx + 1, || None);
        }
        self.active += 1;
        let cap = self.capacity_for_new_stratum(stratum, self.active);
        self.strata[idx] = Some(Reservoir::new(cap));
        if let SizingPolicy::SharedTotal(total) = self.sizing {
            // Rebalance: all strata share the budget evenly.
            let per = (total / self.active).max(1);
            for r in self.strata.iter_mut().flatten() {
                if r.capacity() > per {
                    r.shrink_to(per, &mut self.rng);
                } else {
                    r.grow_to(per);
                }
            }
        }
    }

    /// Offers one item to the sampler (the inner loop of Algorithm 3).
    ///
    /// Unknown strata are registered on first sight — OASRS needs no advance
    /// knowledge of the sub-stream population.
    #[inline]
    pub fn observe(&mut self, stratum: StratumId, value: V) {
        let idx = stratum.index();
        if idx >= self.strata.len() || self.strata[idx].is_none() {
            self.admit_stratum(stratum);
        }
        let r = self.strata[idx].as_mut().expect("stratum admitted");
        r.observe(value, &mut self.rng);
    }

    /// Convenience: offers a [`StreamItem`], routing by its stratum.
    pub fn observe_item(&mut self, item: StreamItem<V>) {
        self.observe(item.stratum, item.value);
    }

    /// Offers a whole batch of items, hoisting the per-item stratum
    /// lookup/admission out of the inner loop: consecutive items sharing
    /// a stratum form a *run*, and each run goes through one stratum
    /// lookup plus one [`Reservoir::observe_run`] call, which consumes
    /// skipped gaps with a counter bump and zero RNG draws. Accepted
    /// items are moved out of the batch; skipped items are dropped
    /// without being touched. The batch is *drained*: it comes back empty
    /// with its allocation intact, so callers on a hot path can recycle
    /// the buffer instead of allocating a fresh one per chunk.
    ///
    /// The RNG draw order is identical to calling
    /// [`observe_item`](OasrsSampler::observe_item) once per item, so
    /// batch and per-item observation produce bit-for-bit identical
    /// sampler state from the same seed — chunk boundaries are invisible
    /// to the sample.
    pub fn observe_batch(&mut self, items: &mut Vec<StreamItem<V>>) {
        let mut iter = items.drain(..);
        while let Some(first) = iter.next() {
            let stratum = first.stratum;
            // Length of the run of same-stratum followers still in the
            // iterator (the run itself is `tail + 1` items with `first`).
            let tail = iter
                .as_slice()
                .iter()
                .take_while(|it| it.stratum == stratum)
                .count();
            let idx = stratum.index();
            if idx >= self.strata.len() || self.strata[idx].is_none() {
                self.admit_stratum(stratum);
            }
            let r = self.strata[idx].as_mut().expect("stratum admitted");
            let mut first = Some(first);
            // Followers already pulled out of `iter` for this run.
            let mut consumed = 0usize;
            r.observe_run((tail + 1) as u64, &mut self.rng, |off| {
                if off == 0 {
                    first.take().expect("offset 0 visited at most once").value
                } else {
                    let follower = off as usize - 1;
                    let item = iter
                        .nth(follower - consumed)
                        .expect("accepted offset within run");
                    consumed = follower + 1;
                    item.value
                }
            });
            if consumed < tail {
                // Drop the skipped tail of the run in one jump.
                iter.nth(tail - consumed - 1);
            }
        }
    }

    /// Ends the current time interval: returns the weighted
    /// [`StratifiedSample`] and re-arms the sampler for the next interval.
    ///
    /// Under [`SizingPolicy::FractionOfPrevious`] the realized per-stratum
    /// counters set the next interval's capacities, which is what makes the
    /// sampler *adaptive* to fluctuating arrival rates.
    pub fn finish_interval(&mut self) -> StratifiedSample<V> {
        let mut out = StratifiedSample::new();
        let strata = std::mem::take(&mut self.strata);
        self.active = 0;
        for (idx, slot) in strata.into_iter().enumerate() {
            let Some(reservoir) = slot else { continue };
            let id = StratumId(idx as u32);
            let capacity = reservoir.capacity();
            let (items, seen) = reservoir.into_parts();
            if let SizingPolicy::FractionOfPrevious { fraction, .. } = self.sizing {
                let next = ((seen as f64 * fraction).ceil() as usize).max(1);
                self.next_capacity.insert(id, next);
            }
            out.push(StratumSample::new(id, items, seen, capacity));
        }
        out
    }

    /// Discards the current interval's state without producing a sample.
    pub fn reset(&mut self) {
        self.strata.clear();
        self.active = 0;
    }

    /// Merges another sampler's current-interval state into this one — the
    /// paper-faithful distributed combine for shard-local OASRS samplers
    /// that each ran at *full* per-stratum capacity over disjoint portions
    /// of the same stream.
    ///
    /// Per stratum, the two reservoirs are united by the seen-count-weighted
    /// reservoir union (the generalization of [`Reservoir::merge_with`]):
    /// each slot of the merged reservoir is drawn from a side with
    /// probability proportional to the population mass it still represents,
    /// so every item either shard observed keeps the same inclusion
    /// probability `N_i / (C_i^a + C_i^b)`. Counters sum, and the merged
    /// capacity is the larger of the two — shards duplicate one fixed
    /// budget rather than splitting it, unlike
    /// [`for_worker`](OasrsSampler::for_worker)'s `N/w` scheme whose
    /// combine is `StratifiedSample::union`.
    ///
    /// Strata only `other` saw are adopted wholesale (with a
    /// [`SizingPolicy::SharedTotal`] rebalance when that overflows the
    /// shared budget), and [`SizingPolicy::FractionOfPrevious`] capacity
    /// plans merge by taking the larger per-stratum plan. Randomness for
    /// the union draws comes from `self`'s RNG, so merging in a canonical
    /// shard order keeps runs reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the two samplers run different sizing policies.
    pub fn merge_with(&mut self, other: OasrsSampler<V>) {
        assert_eq!(
            self.sizing, other.sizing,
            "cannot merge samplers with different sizing policies"
        );
        if other.strata.len() > self.strata.len() {
            self.strata.resize_with(other.strata.len(), || None);
        }
        for (idx, slot) in other.strata.into_iter().enumerate() {
            let Some(theirs) = slot else { continue };
            match self.strata[idx].take() {
                Some(ours) => {
                    let capacity = ours.capacity().max(theirs.capacity());
                    self.strata[idx] = Some(ours.merge_with(theirs, capacity, &mut self.rng));
                }
                None => {
                    self.strata[idx] = Some(theirs);
                    self.active += 1;
                }
            }
        }
        if let SizingPolicy::SharedTotal(total) = self.sizing {
            // The two sides distributed the shared budget over *their own*
            // active-stratum counts, so the merged per-stratum capacities
            // can overflow the budget even when no stratum was adopted
            // (e.g. one side had spread the budget thinner than the
            // other). Rebalance unconditionally, exactly as a mid-interval
            // admission does.
            if let Some(per) = total.checked_div(self.active) {
                let per = per.max(1);
                for r in self.strata.iter_mut().flatten() {
                    if r.capacity() > per {
                        r.shrink_to(per, &mut self.rng);
                    } else {
                        r.grow_to(per);
                    }
                }
            }
        }
        for (id, cap) in other.next_capacity {
            self.next_capacity
                .entry(id)
                .and_modify(|c| *c = (*c).max(cap))
                .or_insert(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(oasrs: &mut OasrsSampler<f64>, stratum: u32, n: usize) {
        for v in 0..n {
            oasrs.observe(StratumId(stratum), v as f64);
        }
    }

    /// Chunk boundaries and run grouping must be invisible: feeding the
    /// same interleaved multi-stratum stream through `observe_batch` in
    /// any chunking produces bit-for-bit the per-item sampler state.
    #[test]
    fn observe_batch_is_bit_identical_to_per_item() {
        let items: Vec<StreamItem<f64>> = (0..20_000u32)
            .map(|i| {
                // Bursty stratum pattern: long same-stratum runs with
                // occasional singletons, so both the run fast path and the
                // run-of-one path are exercised.
                let stratum = if i % 97 == 0 { 3 } else { (i / 64) % 3 };
                StreamItem::new(
                    StratumId(stratum),
                    sa_types::EventTime::from_millis(i as i64),
                    f64::from(i),
                )
            })
            .collect();
        let mut per_item = OasrsSampler::new(SizingPolicy::PerStratum(50), 77);
        for item in items.clone() {
            per_item.observe_item(item);
        }
        for chunk in [1usize, 13, 256, 20_000] {
            let mut batched = OasrsSampler::new(SizingPolicy::PerStratum(50), 77);
            for run in items.chunks(chunk) {
                batched.observe_batch(&mut run.to_vec());
            }
            assert_eq!(
                batched.finish_interval(),
                per_item.clone().finish_interval(),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn matches_figure_two_worked_example() {
        // Figure 2 of the paper: reservoirs of size 3; C1=6, C2=4, C3=2
        // → W1 = 6/3, W2 = 4/3, W3 = 1.
        let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(3), 1);
        feed(&mut oasrs, 1, 6);
        feed(&mut oasrs, 2, 4);
        feed(&mut oasrs, 3, 2);
        let sample = oasrs.finish_interval();
        let w = |id: u32| sample.stratum(StratumId(id)).unwrap().weight();
        assert_eq!(w(1), 2.0);
        assert!((w(2) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(w(3), 1.0);
    }

    #[test]
    fn no_substream_is_overlooked() {
        // One stratum floods, another sends a single item; OASRS must keep
        // the minority item (the property SRS lacks, §5.4).
        let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(10), 2);
        feed(&mut oasrs, 0, 100_000);
        oasrs.observe(StratumId(1), 123.0);
        let sample = oasrs.finish_interval();
        let minority = sample.stratum(StratumId(1)).unwrap();
        assert_eq!(minority.items, vec![123.0]);
        assert_eq!(minority.weight(), 1.0);
    }

    #[test]
    fn counters_track_arrivals_exactly() {
        let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(5), 3);
        feed(&mut oasrs, 0, 17);
        feed(&mut oasrs, 1, 3);
        assert_eq!(oasrs.total_seen(), 20);
        assert_eq!(oasrs.num_strata(), 2);
        let sample = oasrs.finish_interval();
        assert_eq!(sample.stratum(StratumId(0)).unwrap().population, 17);
        assert_eq!(sample.stratum(StratumId(1)).unwrap().population, 3);
    }

    #[test]
    fn finish_interval_resets_state() {
        let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(4), 4);
        feed(&mut oasrs, 0, 10);
        let first = oasrs.finish_interval();
        assert_eq!(first.total_population(), 10);
        assert_eq!(oasrs.num_strata(), 0);
        feed(&mut oasrs, 0, 2);
        let second = oasrs.finish_interval();
        assert_eq!(second.total_population(), 2);
        assert_eq!(second.stratum(StratumId(0)).unwrap().sample_size(), 2);
    }

    #[test]
    fn shared_total_rebalances_on_new_strata() {
        let mut oasrs = OasrsSampler::new(SizingPolicy::SharedTotal(12), 5);
        feed(&mut oasrs, 0, 100);
        // Alone, stratum 0 gets the whole budget.
        assert_eq!(oasrs.total_held(), 12);
        feed(&mut oasrs, 1, 100);
        feed(&mut oasrs, 2, 100);
        let sample = oasrs.finish_interval();
        // Budget is now split three ways: 4 slots each.
        for id in 0..3 {
            let s = sample.stratum(StratumId(id)).unwrap();
            assert_eq!(s.capacity, 4, "stratum {id}");
            assert_eq!(s.sample_size(), 4, "stratum {id}");
        }
        assert_eq!(sample.total_sampled(), 12);
    }

    #[test]
    fn fraction_policy_adapts_capacity_to_arrivals() {
        let mut oasrs = OasrsSampler::new(
            SizingPolicy::FractionOfPrevious {
                fraction: 0.5,
                initial: 4,
            },
            6,
        );
        // First interval: capacity is the initial guess.
        feed(&mut oasrs, 0, 100);
        let first = oasrs.finish_interval();
        assert_eq!(first.stratum(StratumId(0)).unwrap().capacity, 4);
        // Second interval: capacity adapted to 50% of the observed 100.
        feed(&mut oasrs, 0, 100);
        let second = oasrs.finish_interval();
        let s = second.stratum(StratumId(0)).unwrap();
        assert_eq!(s.capacity, 50);
        assert_eq!(s.sample_size(), 50);
        assert!((s.weight() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_policy_tracks_rate_changes() {
        let mut oasrs = OasrsSampler::new(
            SizingPolicy::FractionOfPrevious {
                fraction: 0.1,
                initial: 10,
            },
            7,
        );
        feed(&mut oasrs, 0, 1_000);
        oasrs.finish_interval();
        // Arrival rate drops 10×; capacity follows on the next boundary.
        feed(&mut oasrs, 0, 100);
        let s2 = oasrs.finish_interval();
        assert_eq!(s2.stratum(StratumId(0)).unwrap().capacity, 100);
        feed(&mut oasrs, 0, 100);
        let s3 = oasrs.finish_interval();
        assert_eq!(s3.stratum(StratumId(0)).unwrap().capacity, 10);
    }

    #[test]
    fn worker_sharding_splits_capacity() {
        let a: OasrsSampler<f64> = OasrsSampler::for_worker(SizingPolicy::PerStratum(10), 9, 0, 4);
        assert_eq!(a.sizing(), SizingPolicy::PerStratum(3));
        let b: OasrsSampler<f64> = OasrsSampler::for_worker(SizingPolicy::PerStratum(10), 9, 3, 4);
        assert_eq!(b.sizing(), SizingPolicy::PerStratum(3));
    }

    #[test]
    fn distributed_union_reconstructs_global_sample() {
        // Two workers each see half of a sub-stream; the union of their
        // samples must carry the full counter so the weight is correct.
        let sizing = SizingPolicy::PerStratum(10);
        let mut w0 = OasrsSampler::for_worker(sizing, 11, 0, 2);
        let mut w1 = OasrsSampler::for_worker(sizing, 11, 1, 2);
        feed(&mut w0, 0, 50);
        feed(&mut w1, 0, 50);
        let mut global = w0.finish_interval();
        global.union(w1.finish_interval());
        let s = global.stratum(StratumId(0)).unwrap();
        assert_eq!(s.population, 100);
        assert_eq!(s.sample_size(), 10); // 5 + 5
        assert_eq!(s.capacity, 10);
        assert!((s.weight() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_keeps_one_budget() {
        // Two shards at full capacity 3 over one stratum: the merged state
        // must represent all 10 arrivals with a single 3-slot reservoir,
        // giving the Equation-1 weight 10/3.
        let mut a = OasrsSampler::new(SizingPolicy::PerStratum(3), 21);
        let mut b = OasrsSampler::new(SizingPolicy::PerStratum(3), 22);
        feed(&mut a, 0, 6);
        feed(&mut b, 0, 4);
        a.merge_with(b);
        assert_eq!(a.total_seen(), 10);
        assert_eq!(a.total_held(), 3);
        let sample = a.finish_interval();
        let s = sample.stratum(StratumId(0)).unwrap();
        assert_eq!(s.population, 10);
        assert_eq!(s.sample_size(), 3);
        assert_eq!(s.capacity, 3);
        assert!((s.weight() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adopts_strata_only_the_other_shard_saw() {
        let mut a = OasrsSampler::new(SizingPolicy::PerStratum(4), 23);
        let mut b = OasrsSampler::new(SizingPolicy::PerStratum(4), 24);
        feed(&mut a, 0, 5);
        feed(&mut b, 7, 2);
        a.merge_with(b);
        assert_eq!(a.num_strata(), 2);
        let sample = a.finish_interval();
        assert_eq!(sample.stratum(StratumId(7)).unwrap().sample_size(), 2);
        assert_eq!(sample.stratum(StratumId(0)).unwrap().population, 5);
    }

    #[test]
    fn merge_rebalances_shared_total_budget() {
        let mut a = OasrsSampler::new(SizingPolicy::SharedTotal(8), 25);
        let mut b = OasrsSampler::new(SizingPolicy::SharedTotal(8), 26);
        feed(&mut a, 0, 50);
        feed(&mut b, 1, 50);
        a.merge_with(b);
        // Two strata now share the one 8-slot budget: 4 + 4.
        assert!(a.total_held() <= 8);
        let sample = a.finish_interval();
        assert_eq!(sample.stratum(StratumId(0)).unwrap().sample_size(), 4);
        assert_eq!(sample.stratum(StratumId(1)).unwrap().sample_size(), 4);
    }

    #[test]
    fn merge_rebalances_shared_total_even_without_adopted_strata() {
        // A spread its 8-slot budget over strata {0, 1} (4 + 4); B gave
        // its whole budget to stratum 1 (capacity 8). The merge takes
        // stratum 1's capacity to max(4, 8) = 8, so without an
        // unconditional rebalance the merged sampler would hold 12 items
        // against the 8-slot shared budget.
        let mut a = OasrsSampler::new(SizingPolicy::SharedTotal(8), 27);
        let mut b = OasrsSampler::new(SizingPolicy::SharedTotal(8), 28);
        feed(&mut a, 0, 50);
        feed(&mut a, 1, 50);
        feed(&mut b, 1, 50);
        a.merge_with(b);
        assert!(a.total_held() <= 8, "held {} of budget 8", a.total_held());
        let sample = a.finish_interval();
        assert_eq!(sample.stratum(StratumId(0)).unwrap().sample_size(), 4);
        assert_eq!(sample.stratum(StratumId(1)).unwrap().sample_size(), 4);
    }

    #[test]
    #[should_panic(expected = "different sizing policies")]
    fn merge_rejects_mismatched_policies() {
        let mut a = OasrsSampler::<f64>::new(SizingPolicy::PerStratum(3), 0);
        let b = OasrsSampler::<f64>::new(SizingPolicy::PerStratum(4), 0);
        a.merge_with(b);
    }

    #[test]
    fn observe_item_routes_by_stratum() {
        use sa_types::EventTime;
        let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(2), 12);
        oasrs.observe_item(StreamItem::new(
            StratumId(3),
            EventTime::from_millis(0),
            1.5,
        ));
        let sample = oasrs.finish_interval();
        assert_eq!(sample.stratum(StratumId(3)).unwrap().items, vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "sampling fraction must be in (0, 1]")]
    fn invalid_fraction_rejected() {
        let _ = OasrsSampler::<f64>::new(
            SizingPolicy::FractionOfPrevious {
                fraction: 1.5,
                initial: 1,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn bad_worker_index_rejected() {
        let _ = OasrsSampler::<f64>::for_worker(SizingPolicy::PerStratum(1), 0, 2, 2);
    }

    /// Within one stratum, OASRS selection must stay uniform (it is plain
    /// reservoir sampling per stratum).
    #[test]
    fn per_stratum_uniformity() {
        const TRIALS: usize = 10_000;
        let mut counts = [0u32; 12];
        for t in 0..TRIALS {
            let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(4), t as u64);
            for v in 0..12 {
                oasrs.observe(StratumId(0), v as f64);
            }
            let sample = oasrs.finish_interval();
            for &v in &sample.stratum(StratumId(0)).unwrap().items {
                counts[v as usize] += 1;
            }
        }
        let expected = TRIALS as f64 * 4.0 / 12.0;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.08, "value {v}: count {c} vs expected {expected}");
        }
    }
}
