//! ScaSRS — scalable simple random sampling via random sort with two
//! thresholds (Meng, ICML 2013), the algorithm behind Apache Spark's
//! `sample`/`takeSample` that the paper uses as its SRS baseline (§4.1.1).
//!
//! To draw exactly `s` of `n` items, every item is assigned a uniform random
//! key in `[0, 1)` and the `s` smallest keys win. Sorting all of "Big Data"
//! is the bottleneck, so Spark bounds the sort with two thresholds around
//! `p = s/n`:
//!
//! * keys below a low threshold `l` are **selected immediately**,
//! * keys above a high threshold `h` are **discarded immediately**,
//! * only the narrow wait-list in between is sorted.
//!
//! With failure probability `δ`, `l` and `h` are chosen from Bernstein-style
//! tail bounds so that w.h.p. at most `s` keys fall below `l` and at least
//! `s` fall below `h`; the expected wait-list is only `O(√(s·ln(1/δ)))`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Failure probability used for the threshold derivation, matching Spark's
/// default order of magnitude.
pub const SCASRS_DELTA: f64 = 1e-4;

/// Counters describing how much work a ScaSRS pass did — used by the
/// `ablation_threshold` benchmark to show how the two thresholds shrink the
/// sort volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ScasrsStats {
    /// Items accepted below the low threshold without sorting.
    pub accepted_directly: usize,
    /// Items that entered the wait-list (and were sorted).
    pub waitlisted: usize,
    /// Items rejected above the high threshold without sorting.
    pub rejected_directly: usize,
}

impl ScasrsStats {
    /// Accumulates the work counters of another ScaSRS pass (another
    /// shard or partition of the same draw) — counters are additive.
    pub fn merge(&mut self, other: ScasrsStats) {
        self.accepted_directly += other.accepted_directly;
        self.waitlisted += other.waitlisted;
        self.rejected_directly += other.rejected_directly;
    }
}

/// Merges two simple random samples drawn over *disjoint* populations into
/// one SRS of at most `s` items over the combined population — the SRS
/// counterpart of the per-stratum weighted reservoir union (each output
/// slot is drawn from a side with probability proportional to the
/// population mass it still represents).
///
/// Used to combine shard-local ScaSRS draws without re-sorting: if each
/// input is uniform over its `pop`, the merge is uniform over
/// `pop_a + pop_b`.
pub fn merge_srs_samples<T, R: Rng + ?Sized>(
    a: Vec<T>,
    pop_a: u64,
    b: Vec<T>,
    pop_b: u64,
    s: usize,
    rng: &mut R,
) -> Vec<T> {
    crate::reservoir::weighted_union(a, pop_a, b, pop_b, s, rng)
}

/// The `(l, h)` thresholds around `p = s/n` for failure probability `delta`.
///
/// `h` satisfies `P(Binomial(n, h) < s) ≤ δ` (so rejecting keys above `h`
/// w.h.p. still leaves `s` candidates) and `l` satisfies
/// `P(Binomial(n, l) > s) ≤ δ` (so accepting keys below `l` w.h.p. does not
/// overshoot `s`). Formulas follow Meng (ICML'13), §3.
///
/// # Panics
///
/// Panics if `n == 0` or `delta` is not in `(0, 1)`.
pub fn scasrs_thresholds(s: usize, n: usize, delta: f64) -> (f64, f64) {
    assert!(n > 0, "population must be non-empty");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let p = s as f64 / n as f64;
    let nf = n as f64;
    let g1 = -delta.ln() / nf;
    let g2 = -(2.0 * delta.ln()) / (3.0 * nf);
    let high = (p + g1 + (g1 * g1 + 2.0 * g1 * p).sqrt()).min(1.0);
    let low = (p + g2 - (g2 * g2 + 3.0 * g2 * p).sqrt()).max(0.0);
    (low, high)
}

/// Draws a simple random sample of exactly `min(s, n)` items using the
/// two-threshold random-sort algorithm, returning the sample and the work
/// counters.
///
/// The returned sample is uniform over all `n`-choose-`s` subsets (up to the
/// `δ` failure probability, in which case the wait-list is exhausted and the
/// sample may come up short — exactly Spark's behaviour).
///
/// # Example
///
/// ```
/// use sa_sampling::scasrs_sample_with_stats;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let (sample, stats) = scasrs_sample_with_stats((0..10_000).collect(), 100, &mut rng);
/// assert_eq!(sample.len(), 100);
/// // The two thresholds spare almost everything from the sort.
/// assert!(stats.waitlisted < 1_000);
/// assert!(stats.rejected_directly > 8_000);
/// ```
pub fn scasrs_sample_with_stats<T, R: Rng + ?Sized>(
    items: Vec<T>,
    s: usize,
    rng: &mut R,
) -> (Vec<T>, ScasrsStats) {
    let n = items.len();
    let mut stats = ScasrsStats::default();
    if s == 0 {
        stats.rejected_directly = n;
        return (Vec::new(), stats);
    }
    if s >= n {
        stats.accepted_directly = n;
        return (items, stats);
    }
    let (low, high) = scasrs_thresholds(s, n, SCASRS_DELTA);
    let mut accepted: Vec<T> = Vec::with_capacity(s);
    let mut waitlist: Vec<(f64, T)> = Vec::new();
    for item in items {
        let key: f64 = rng.gen();
        if key < low {
            accepted.push(item);
        } else if key > high {
            stats.rejected_directly += 1;
        } else {
            waitlist.push((key, item));
        }
    }
    stats.accepted_directly = accepted.len();
    stats.waitlisted = waitlist.len();
    if accepted.len() < s {
        // Sort only the wait-list — this is the step whose cost the
        // thresholds bound.
        waitlist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("keys are finite"));
        let need = s - accepted.len();
        accepted.extend(waitlist.into_iter().take(need).map(|(_, t)| t));
    } else {
        // The low threshold overshot (probability ≤ δ): trim uniformly.
        while accepted.len() > s {
            let victim = rng.gen_range(0..accepted.len());
            accepted.swap_remove(victim);
        }
    }
    (accepted, stats)
}

/// Draws a simple random sample of exactly `min(s, n)` items; see
/// [`scasrs_sample_with_stats`] for the mechanism.
pub fn scasrs_sample<T, R: Rng + ?Sized>(items: Vec<T>, s: usize, rng: &mut R) -> Vec<T> {
    scasrs_sample_with_stats(items, s, rng).0
}

/// The naive random-sort sample: assign keys to *all* items, fully sort,
/// take the `s` smallest. Identical distribution to [`scasrs_sample`] but
/// pays the full `O(n log n)` sort — kept for the threshold ablation.
pub fn random_sort_sample<T, R: Rng + ?Sized>(items: Vec<T>, s: usize, rng: &mut R) -> Vec<T> {
    let mut keyed: Vec<(f64, T)> = items.into_iter().map(|t| (rng.gen(), t)).collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("keys are finite"));
    keyed.truncate(s);
    keyed.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn thresholds_bracket_p() {
        let (l, h) = scasrs_thresholds(100, 10_000, SCASRS_DELTA);
        let p = 0.01;
        assert!(l < p, "low {l} must be below p");
        assert!(h > p, "high {h} must be above p");
        assert!(l >= 0.0 && h <= 1.0);
    }

    #[test]
    fn thresholds_tighten_with_n() {
        let (l1, h1) = scasrs_thresholds(100, 1_000, SCASRS_DELTA);
        let (l2, h2) = scasrs_thresholds(10_000, 100_000, SCASRS_DELTA);
        // Same p = 0.1; the bracket must shrink as n grows.
        assert!(h2 - l2 < h1 - l1);
    }

    #[test]
    fn exact_sample_size() {
        let mut g = rng(1);
        for &(n, s) in &[
            (1_000usize, 10usize),
            (1_000, 500),
            (1_000, 999),
            (50, 50),
            (50, 60),
        ] {
            let sample = scasrs_sample((0..n).collect(), s, &mut g);
            assert_eq!(sample.len(), s.min(n), "n={n} s={s}");
        }
    }

    #[test]
    fn zero_sample_is_empty() {
        let mut g = rng(2);
        let (sample, stats) = scasrs_sample_with_stats(vec![1, 2, 3], 0, &mut g);
        assert!(sample.is_empty());
        assert_eq!(stats.rejected_directly, 3);
    }

    #[test]
    fn sample_has_no_duplicates() {
        let mut g = rng(3);
        let mut sample = scasrs_sample((0..10_000).collect::<Vec<u32>>(), 200, &mut g);
        sample.sort_unstable();
        sample.dedup();
        assert_eq!(sample.len(), 200);
    }

    #[test]
    fn waitlist_is_small() {
        let mut g = rng(4);
        let (_, stats) = scasrs_sample_with_stats((0..100_000).collect(), 1_000, &mut g);
        // Expected wait-list is O(sqrt(s ln 1/δ)) ≈ a few hundred; allow
        // generous slack.
        assert!(
            stats.waitlisted < 5_000,
            "waitlist unexpectedly large: {}",
            stats.waitlisted
        );
        assert!(stats.accepted_directly <= 1_000);
    }

    #[test]
    fn selection_is_approximately_uniform() {
        const TRIALS: usize = 4_000;
        const N: usize = 40;
        const S: usize = 10;
        let mut counts = [0u32; N];
        let mut g = rng(5);
        for _ in 0..TRIALS {
            for x in scasrs_sample((0..N).collect(), S, &mut g) {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * S as f64 / N as f64;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "item {x}: count {c} vs expected {expected}");
        }
    }

    #[test]
    fn naive_random_sort_agrees_on_size_and_uniformity() {
        const TRIALS: usize = 4_000;
        const N: usize = 30;
        const S: usize = 6;
        let mut counts = [0u32; N];
        let mut g = rng(6);
        for _ in 0..TRIALS {
            let sample = random_sort_sample((0..N).collect(), S, &mut g);
            assert_eq!(sample.len(), S);
            for x in sample {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * S as f64 / N as f64;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "item {x}: count {c} vs expected {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn thresholds_reject_empty_population() {
        let _ = scasrs_thresholds(1, 0, SCASRS_DELTA);
    }

    #[test]
    fn stats_merge_is_additive() {
        let mut a = ScasrsStats {
            accepted_directly: 1,
            waitlisted: 2,
            rejected_directly: 3,
        };
        a.merge(ScasrsStats {
            accepted_directly: 10,
            waitlisted: 20,
            rejected_directly: 30,
        });
        assert_eq!(a.accepted_directly, 11);
        assert_eq!(a.waitlisted, 22);
        assert_eq!(a.rejected_directly, 33);
    }

    #[test]
    fn merged_srs_is_uniform_over_combined_population() {
        // Shard A sampled 4 of 10 (items 0..10), shard B 4 of 20
        // (items 10..30); the merged 4-of-30 must include every original
        // item with probability ~4/30.
        const TRIALS: usize = 30_000;
        const S: usize = 4;
        let mut counts = [0u32; 30];
        let mut g = rng(9);
        for _ in 0..TRIALS {
            let a = scasrs_sample((0..10).collect::<Vec<usize>>(), S, &mut g);
            let b = scasrs_sample((10..30).collect::<Vec<usize>>(), S, &mut g);
            let merged = merge_srs_samples(a, 10, b, 20, S, &mut g);
            assert_eq!(merged.len(), S);
            for x in merged {
                counts[x] += 1;
            }
        }
        let expected = TRIALS as f64 * S as f64 / 30.0;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.08, "item {x}: count {c} vs expected {expected}");
        }
    }
}
