//! Property-based tests for the sampling algorithms: invariants that must
//! hold for *every* stream shape, capacity and seed.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_sampling::{
    merge_all_stratified, sample_by_key_exact, scasrs_sample, scasrs_sample_with_stats,
    scasrs_thresholds, OasrsSampler, Reservoir, SizingPolicy, SCASRS_DELTA,
};
use sa_types::StratumId;
use std::collections::HashMap;

proptest! {
    /// A reservoir always holds exactly `min(seen, capacity)` items and its
    /// contents are a sub-multiset of the stream.
    #[test]
    fn reservoir_size_and_membership(
        stream in proptest::collection::vec(0u32..1_000, 0..400),
        cap in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut res = Reservoir::new(cap);
        for &x in &stream {
            res.observe(x, &mut rng);
        }
        prop_assert_eq!(res.len(), stream.len().min(cap));
        prop_assert_eq!(res.seen(), stream.len() as u64);

        let mut pool: HashMap<u32, usize> = HashMap::new();
        for &x in &stream {
            *pool.entry(x).or_default() += 1;
        }
        for &x in res.items() {
            let slot = pool.get_mut(&x);
            prop_assert!(slot.is_some(), "sampled item {} not in stream", x);
            let c = slot.unwrap();
            prop_assert!(*c > 0, "item {} sampled more often than it appeared", x);
            *c -= 1;
        }
    }

    /// Shrinking a reservoir never invents items and lands exactly on the
    /// new capacity.
    #[test]
    fn reservoir_shrink_is_a_subset(
        n in 1usize..200,
        cap in 2usize..50,
        new_cap_rel in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut res = Reservoir::new(cap);
        for x in 0..n as u32 {
            res.observe(x, &mut rng);
        }
        let before: Vec<u32> = res.items().to_vec();
        let new_cap = ((cap as f64 * new_cap_rel) as usize).max(1);
        res.shrink_to(new_cap, &mut rng);
        prop_assert_eq!(res.len(), before.len().min(new_cap));
        for x in res.items() {
            prop_assert!(before.contains(x));
        }
    }

    /// Merging reservoirs over disjoint streams preserves the total `seen`
    /// counter and never exceeds the target capacity.
    #[test]
    fn reservoir_merge_invariants(
        na in 0usize..200,
        nb in 0usize..200,
        cap in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = Reservoir::new(cap);
        let mut b = Reservoir::new(cap);
        for x in 0..na as u32 {
            a.observe(x, &mut rng);
        }
        for x in 1_000..(1_000 + nb as u32) {
            b.observe(x, &mut rng);
        }
        let merged = a.merge_with(b, cap, &mut rng);
        prop_assert_eq!(merged.seen(), (na + nb) as u64);
        prop_assert_eq!(merged.len(), (na + nb).min(cap).min(na.min(cap) + nb.min(cap)));
    }

    /// OASRS bookkeeping: per-stratum counters equal arrivals, sample sizes
    /// equal `min(C_i, N_i)`, and weights follow Equation 1.
    #[test]
    fn oasrs_counters_and_weights(
        arrivals in proptest::collection::vec(0u32..8, 0..500),
        cap in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(cap), seed);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for (i, &s) in arrivals.iter().enumerate() {
            oasrs.observe(StratumId(s), i as f64);
            *truth.entry(s).or_default() += 1;
        }
        let sample = oasrs.finish_interval();
        prop_assert_eq!(sample.num_strata(), truth.len());
        for (&s, &c) in &truth {
            let st = sample.stratum(StratumId(s)).unwrap();
            prop_assert_eq!(st.population, c);
            prop_assert_eq!(st.sample_size() as u64, c.min(cap as u64));
            let expected_w = if c > cap as u64 { c as f64 / cap as f64 } else { 1.0 };
            prop_assert!((st.weight() - expected_w).abs() < 1e-12);
        }
    }

    /// The weighted per-stratum estimate `Y_i * W_i` recovers `C_i` exactly
    /// for counting queries (each reservoir item represents `W_i` originals).
    #[test]
    fn oasrs_count_reconstruction_is_exact(
        counts in proptest::collection::vec(1u64..300, 1..6),
        cap in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut oasrs = OasrsSampler::new(SizingPolicy::PerStratum(cap), seed);
        for (s, &c) in counts.iter().enumerate() {
            for v in 0..c {
                oasrs.observe(StratumId(s as u32), v as f64);
            }
        }
        let sample = oasrs.finish_interval();
        for (s, &c) in counts.iter().enumerate() {
            let st = sample.stratum(StratumId(s as u32)).unwrap();
            let reconstructed = st.sample_size() as f64 * st.weight();
            prop_assert!(
                (reconstructed - c as f64).abs() < 1e-9 * c as f64 + 1e-9,
                "stratum {}: {} vs {}",
                s,
                reconstructed,
                c
            );
        }
    }

    /// Distributed OASRS (shard + union) preserves the global counters and
    /// never exceeds the summed capacity.
    #[test]
    fn oasrs_distributed_union_bookkeeping(
        per_worker in proptest::collection::vec(0u64..200, 1..5),
        cap in 1usize..24,
        seed in any::<u64>(),
    ) {
        let w = per_worker.len();
        let mut global: Option<sa_types::StratifiedSample<f64>> = None;
        for (wi, &n) in per_worker.iter().enumerate() {
            let mut s = OasrsSampler::for_worker(SizingPolicy::PerStratum(cap), seed, wi, w);
            for v in 0..n {
                s.observe(StratumId(0), v as f64);
            }
            let part = s.finish_interval();
            match &mut global {
                None => global = Some(part),
                Some(g) => g.union(part),
            }
        }
        let g = global.unwrap();
        let total: u64 = per_worker.iter().sum();
        if total == 0 {
            // Workers that saw nothing produce empty samples (no stratum entry
            // unless it observed at least one item).
            prop_assert!(g.total_population() == 0);
        } else {
            let st = g.stratum(StratumId(0)).unwrap();
            prop_assert_eq!(st.population, total);
            prop_assert!(st.sample_size() <= st.capacity);
        }
    }

    /// ScaSRS always returns exactly `min(s, n)` distinct input positions.
    #[test]
    fn scasrs_exact_size_and_distinctness(
        n in 0usize..3_000,
        s in 0usize..512,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sample = scasrs_sample((0..n).collect(), s, &mut rng);
        prop_assert_eq!(sample.len(), s.min(n));
        sample.sort_unstable();
        sample.dedup();
        prop_assert_eq!(sample.len(), s.min(n));
    }

    /// The work counters partition the input.
    #[test]
    fn scasrs_stats_partition_input(
        n in 1usize..2_000,
        s in 1usize..256,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (_, stats) = scasrs_sample_with_stats((0..n).collect(), s, &mut rng);
        if s < n {
            prop_assert_eq!(
                stats.accepted_directly + stats.waitlisted + stats.rejected_directly,
                n
            );
        } else {
            prop_assert_eq!(stats.accepted_directly, n);
        }
    }

    /// Thresholds always bracket p and stay in [0, 1].
    #[test]
    fn scasrs_thresholds_bracket(
        n in 1usize..1_000_000,
        frac in 0.0001f64..0.9999,
    ) {
        let s = ((n as f64 * frac) as usize).max(1).min(n);
        let (l, h) = scasrs_thresholds(s, n, SCASRS_DELTA);
        let p = s as f64 / n as f64;
        prop_assert!((0.0..=1.0).contains(&l));
        prop_assert!((0.0..=1.0).contains(&h));
        prop_assert!(l <= p + 1e-12);
        prop_assert!(h >= p - 1e-12);
    }

    /// `SizingPolicy::SharedTotal`: whenever a new stratum appears
    /// mid-interval and triggers a shrink of the incumbents, the summed
    /// holdings never exceed the budget (unless there are more strata than
    /// budget slots, where every stratum keeps its guaranteed single slot).
    #[test]
    fn shared_total_capacity_never_exceeds_budget(
        arrivals in proptest::collection::vec(0u32..10, 1..600),
        budget in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut oasrs = OasrsSampler::new(SizingPolicy::SharedTotal(budget), seed);
        for (i, &s) in arrivals.iter().enumerate() {
            oasrs.observe(StratumId(s), i as f64);
            let strata = oasrs.num_strata();
            prop_assert!(
                oasrs.total_held() <= budget.max(strata) as u64,
                "after item {}: holding {} of budget {} over {} strata",
                i,
                oasrs.total_held(),
                budget,
                strata
            );
        }
        let sample = oasrs.finish_interval();
        let strata = sample.num_strata();
        prop_assert!(sample.total_sampled() <= budget.max(strata) as u64);
    }

    /// After mid-interval shrinks, every stratum's sample is still a
    /// sub-multiset of what that stratum actually sent, sized
    /// `min(C_i, N_i)` for its rebalanced capacity, with Equation-1
    /// weights.
    #[test]
    fn shared_total_shrink_keeps_samples_consistent(
        arrivals in proptest::collection::vec(0u32..6, 1..500),
        budget in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut oasrs = OasrsSampler::new(SizingPolicy::SharedTotal(budget), seed);
        let mut truth: HashMap<u32, Vec<f64>> = HashMap::new();
        for (i, &s) in arrivals.iter().enumerate() {
            oasrs.observe(StratumId(s), i as f64);
            truth.entry(s).or_default().push(i as f64);
        }
        let sample = oasrs.finish_interval();
        for (&s, sent) in &truth {
            let st = sample.stratum(StratumId(s)).unwrap();
            prop_assert_eq!(st.population, sent.len() as u64);
            prop_assert_eq!(
                st.sample_size() as usize,
                sent.len().min(st.capacity),
                "stratum {}",
                s
            );
            for v in &st.items {
                prop_assert!(sent.contains(v), "stratum {}: {} not sent", s, v);
            }
            let expected_w = (sent.len() as f64 / st.capacity as f64).max(1.0);
            prop_assert!((st.weight() - expected_w).abs() < 1e-12);
        }
    }

    /// OASRS merge bookkeeping: for every pair of shard-local streams,
    /// `merge_with` sums per-stratum populations, holds the merged sample
    /// at `min(C_i, N)` for the one shared budget `N`, keeps the items a
    /// sub-multiset of what the shards actually sent, and yields
    /// Equation-1 weights over the combined counters.
    #[test]
    fn oasrs_merge_preserves_counters_and_membership(
        arrivals_a in proptest::collection::vec(0u32..5, 0..300),
        arrivals_b in proptest::collection::vec(0u32..5, 0..300),
        cap in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut a = OasrsSampler::new(SizingPolicy::PerStratum(cap), seed);
        let mut b = OasrsSampler::new(SizingPolicy::PerStratum(cap), seed ^ 0xD1CE);
        let mut sent: HashMap<u32, Vec<f64>> = HashMap::new();
        for (i, &s) in arrivals_a.iter().enumerate() {
            a.observe(StratumId(s), i as f64);
            sent.entry(s).or_default().push(i as f64);
        }
        for (i, &s) in arrivals_b.iter().enumerate() {
            let v = 10_000.0 + i as f64;
            b.observe(StratumId(s), v);
            sent.entry(s).or_default().push(v);
        }
        a.merge_with(b);
        let merged = a.finish_interval();
        prop_assert_eq!(merged.num_strata(), sent.len());
        for (&s, stream) in &sent {
            let st = merged.stratum(StratumId(s)).unwrap();
            prop_assert_eq!(st.population, stream.len() as u64);
            prop_assert_eq!(st.sample_size(), stream.len().min(cap), "stratum {}", s);
            for v in &st.items {
                prop_assert!(stream.contains(v), "stratum {}: {} not sent", s, v);
            }
            let expected_w = (stream.len() as f64 / cap as f64).max(1.0);
            prop_assert!((st.weight() - expected_w).abs() < 1e-12);
        }
    }

    /// `merge_with` is commutative under canonical ordering: whichever
    /// side absorbs the other, every per-stratum counter of the merged
    /// sample — population, capacity, sample size, weight — is identical
    /// (the selected items differ only by the RNG draw).
    #[test]
    fn oasrs_merge_counters_commute(
        arrivals_a in proptest::collection::vec(0u32..4, 0..250),
        arrivals_b in proptest::collection::vec(0u32..4, 0..250),
        cap in 1usize..12,
        seed in any::<u64>(),
    ) {
        let build = |arrivals: &[u32], s: u64| {
            let mut o = OasrsSampler::new(SizingPolicy::PerStratum(cap), s);
            for (i, &st) in arrivals.iter().enumerate() {
                o.observe(StratumId(st), i as f64);
            }
            o
        };
        let mut ab = build(&arrivals_a, seed);
        ab.merge_with(build(&arrivals_b, seed ^ 1));
        let mut ba = build(&arrivals_b, seed ^ 1);
        ba.merge_with(build(&arrivals_a, seed));
        let (ab, ba) = (ab.finish_interval(), ba.finish_interval());
        prop_assert_eq!(ab.num_strata(), ba.num_strata());
        for (x, y) in ab.iter().zip(ba.iter()) {
            prop_assert_eq!(x.stratum, y.stratum);
            prop_assert_eq!(x.population, y.population);
            prop_assert_eq!(x.capacity, y.capacity);
            prop_assert_eq!(x.sample_size(), y.sample_size());
            prop_assert!((x.weight() - y.weight()).abs() < 1e-12);
        }
    }

    /// Folding any number of shard samples through `merge_all_stratified`
    /// preserves the global per-stratum population and bounds the merged
    /// sample by the largest shard capacity.
    #[test]
    fn stratified_fold_preserves_global_counters(
        per_shard in proptest::collection::vec(0u64..200, 1..5),
        cap in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut parts = Vec::new();
        for (shard, &n) in per_shard.iter().enumerate() {
            let mut o = OasrsSampler::new(SizingPolicy::PerStratum(cap), seed ^ shard as u64);
            for v in 0..n {
                o.observe(StratumId(0), v as f64);
            }
            parts.push(o.finish_interval());
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let merged = merge_all_stratified(parts, &mut rng);
        let total: u64 = per_shard.iter().sum();
        if total == 0 {
            prop_assert_eq!(merged.total_population(), 0);
        } else {
            let st = merged.stratum(StratumId(0)).unwrap();
            prop_assert_eq!(st.population, total);
            prop_assert_eq!(st.capacity, cap);
            prop_assert_eq!(st.sample_size() as u64, total.min(cap as u64));
        }
    }

    /// Exact stratified sampling hits `ceil(f * C_k)` in every stratum.
    #[test]
    fn sample_by_key_exact_sizes(
        sizes in proptest::collection::vec(1usize..400, 1..6),
        frac_pct in 1u32..=100,
        seed in any::<u64>(),
    ) {
        let f = frac_pct as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let groups: Vec<(StratumId, Vec<usize>)> = sizes
            .iter()
            .enumerate()
            .map(|(k, &n)| (StratumId(k as u32), (0..n).collect()))
            .collect();
        let sample = sample_by_key_exact(groups, f, &mut rng);
        for (k, &n) in sizes.iter().enumerate() {
            let st = sample.stratum(StratumId(k as u32)).unwrap();
            let expected = ((n as f64 * f).ceil() as usize).min(n);
            prop_assert_eq!(st.sample_size(), expected, "stratum {}", k);
            prop_assert_eq!(st.population, n as u64);
        }
    }
}

/// The estimator-facing guarantee of the mergeable-sampler layer: over
/// many trials, a merged shard pair's per-stratum sample reproduces the
/// sub-stream's mean and variance within tolerance — i.e. the weighted
/// union neither biases the estimate nor skews the dispersion the error
/// bounds are computed from. Each stream item must also keep a uniform
/// inclusion probability `N / C` across the shard boundary.
#[test]
fn merged_oasrs_samples_preserve_mean_variance_and_uniformity() {
    const TRIALS: usize = 8_000;
    const CAP: usize = 8;
    const STREAM: usize = 40; // split 24 / 16 across two unequal shards
    let values: Vec<f64> = (0..STREAM).map(|v| v as f64).collect();
    let true_mean = values.iter().sum::<f64>() / STREAM as f64;
    let true_var =
        values.iter().map(|v| (v - true_mean).powi(2)).sum::<f64>() / (STREAM as f64 - 1.0);
    let mut counts = [0u32; STREAM];
    let mut mean_sum = 0.0;
    let mut var_sum = 0.0;
    for t in 0..TRIALS {
        let mut a = OasrsSampler::new(SizingPolicy::PerStratum(CAP), t as u64);
        let mut b = OasrsSampler::new(SizingPolicy::PerStratum(CAP), (t as u64) ^ 0xABCD);
        for &v in &values[..24] {
            a.observe(StratumId(0), v);
        }
        for &v in &values[24..] {
            b.observe(StratumId(0), v);
        }
        a.merge_with(b);
        let merged = a.finish_interval();
        let s = merged.stratum(StratumId(0)).unwrap();
        assert_eq!(s.population, STREAM as u64);
        assert_eq!(s.sample_size(), CAP);
        let m = s.items.iter().sum::<f64>() / CAP as f64;
        let v2 = s.items.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (CAP as f64 - 1.0);
        mean_sum += m;
        var_sum += v2;
        for &v in &s.items {
            counts[v as usize] += 1;
        }
    }
    let avg_mean = mean_sum / TRIALS as f64;
    let avg_var = var_sum / TRIALS as f64;
    assert!(
        (avg_mean - true_mean).abs() / true_mean < 0.02,
        "merged sample mean drifted: {avg_mean} vs {true_mean}"
    );
    assert!(
        (avg_var - true_var).abs() / true_var < 0.05,
        "merged sample variance drifted: {avg_var} vs {true_var}"
    );
    let expected = TRIALS as f64 * CAP as f64 / STREAM as f64;
    for (v, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expected).abs() / expected;
        assert!(
            dev < 0.08,
            "item {v}: inclusion count {c}, expected ~{expected} (dev {dev:.3})"
        );
    }
}

/// The uniform-eviction invariant behind `SharedTotal`'s mid-interval
/// shrink, checked statistically: evicting uniformly from a uniform sample
/// leaves a uniform sample, and continuing reservoir sampling afterwards
/// keeps it one. So every item a stratum sent — before or after the shrink
/// its reservoir suffered when a new stratum appeared — must end up in the
/// final sample with the same probability.
#[test]
fn shared_total_mid_interval_shrink_stays_uniform() {
    const TRIALS: usize = 6_000;
    const BUDGET: usize = 8; // stratum 0 alone: 8 slots; after stratum 1: 4
    const STREAM: usize = 20; // 10 before the shrink, 10 after
    let mut counts = [0u32; STREAM];
    for t in 0..TRIALS {
        let mut oasrs = OasrsSampler::new(SizingPolicy::SharedTotal(BUDGET), t as u64);
        for v in 0..10 {
            oasrs.observe(StratumId(0), v as f64);
        }
        // A new stratum appears mid-interval: stratum 0's reservoir is
        // uniformly evicted from 8 down to 4 slots.
        oasrs.observe(StratumId(1), -1.0);
        for v in 10..STREAM {
            oasrs.observe(StratumId(0), v as f64);
        }
        let sample = oasrs.finish_interval();
        let s0 = sample.stratum(StratumId(0)).unwrap();
        assert_eq!(s0.sample_size(), 4);
        assert_eq!(s0.population, STREAM as u64);
        for &v in &s0.items {
            counts[v as usize] += 1;
        }
    }
    let expected = TRIALS as f64 * 4.0 / STREAM as f64;
    for (v, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expected).abs() / expected;
        assert!(
            dev < 0.1,
            "item {v}: count {c}, expected ~{expected} (dev {dev:.3})"
        );
    }
}

proptest! {
    /// Chunk boundaries are invisible to the reservoir: any way of cutting
    /// a stream into batches produces bit-for-bit the per-item sampler
    /// state (same items, same `seen`, same RNG position).
    #[test]
    fn reservoir_batching_is_bit_equal_to_per_item(
        stream in proptest::collection::vec(0u32..1_000, 0..600),
        cuts in proptest::collection::vec(0usize..600, 0..8),
        cap in 1usize..48,
        seed in any::<u64>(),
    ) {
        let mut rng_a = SmallRng::seed_from_u64(seed);
        let mut per_item = Reservoir::new(cap);
        for &x in &stream {
            per_item.observe(x, &mut rng_a);
        }

        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(stream.len())).collect();
        cuts.sort_unstable();
        let mut rng_b = SmallRng::seed_from_u64(seed);
        let mut batched = Reservoir::new(cap);
        let mut prev = 0usize;
        for cut in cuts.into_iter().chain([stream.len()]) {
            batched.observe_batch(&stream[prev..cut], &mut rng_b);
            prev = cut;
        }
        prop_assert_eq!(&batched, &per_item);
        // And both RNGs sit at the same stream position afterwards.
        prop_assert_eq!(rand::Rng::gen::<u64>(&mut rng_a), rand::Rng::gen::<u64>(&mut rng_b));
    }

    /// Same invisibility one level up: `OasrsSampler::observe_batch` over
    /// arbitrary chunkings of an arbitrary stratum sequence equals the
    /// per-item fold bit for bit.
    #[test]
    fn oasrs_batching_is_bit_equal_to_per_item(
        arrivals in proptest::collection::vec(0u32..6, 0..500),
        cuts in proptest::collection::vec(0usize..500, 0..6),
        cap in 1usize..16,
        seed in any::<u64>(),
    ) {
        let items: Vec<sa_types::StreamItem<f64>> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &s)| sa_types::StreamItem::new(
                StratumId(s),
                sa_types::EventTime::from_millis(i as i64),
                i as f64,
            ))
            .collect();

        let mut per_item = OasrsSampler::new(SizingPolicy::PerStratum(cap), seed);
        for item in items.clone() {
            per_item.observe_item(item);
        }

        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(items.len())).collect();
        cuts.sort_unstable();
        let mut batched = OasrsSampler::new(SizingPolicy::PerStratum(cap), seed);
        let mut prev = 0usize;
        for cut in cuts.into_iter().chain([items.len()]) {
            batched.observe_batch(&mut items[prev..cut].to_vec());
            prev = cut;
        }
        prop_assert_eq!(batched.finish_interval(), per_item.finish_interval());
    }
}
