//! Round-trip property tests for the sampler wire format.
//!
//! The distributed tier's correctness rests on one guarantee: a sampler
//! that crossed the wire is *the same sampler* — not just equal-looking,
//! but continuing the identical random stream and merging identically.
//! These properties drive samplers through arbitrary fill/shrink/merge
//! histories and check `decode(encode(x))` against `x` in all three
//! senses: structural equality, future draws, and merge results.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_sampling::{OasrsSampler, Reservoir, ScasrsStats, SizingPolicy};
use sa_types::{StratumId, WireDecode, WireEncode};

/// Builds a reservoir by replaying a history of observe/shrink/grow ops.
fn build_reservoir(history: &[(u8, u32)], cap: usize, rng: &mut SmallRng) -> Reservoir<f64> {
    let mut res = Reservoir::new(cap);
    for &(op, arg) in history {
        match op % 4 {
            // Observe a run of items (op 0 and 1: twice as likely).
            0 | 1 => {
                for x in 0..(arg % 64) {
                    res.observe(f64::from(x) + f64::from(arg), rng);
                }
            }
            2 => res.shrink_to((arg as usize % cap).max(1), rng),
            _ => res.grow_to(arg as usize % (2 * cap) + 1),
        }
    }
    res
}

/// Picks a sizing policy from two random knobs.
fn pick_policy(kind: u8, n: usize) -> SizingPolicy {
    match kind % 3 {
        0 => SizingPolicy::PerStratum(n),
        1 => SizingPolicy::SharedTotal(n * 4),
        _ => SizingPolicy::FractionOfPrevious {
            fraction: 0.05 + f64::from(kind) / 512.0,
            initial: n,
        },
    }
}

/// Builds an OASRS sampler by replaying observe/finish-interval ops.
fn build_oasrs(history: &[(u8, u32)], policy: SizingPolicy, seed: u64) -> OasrsSampler<f64> {
    let mut s = OasrsSampler::new(policy, seed);
    for &(op, arg) in history {
        if op % 8 == 7 {
            // Interval boundary: exercises the FractionOfPrevious plan.
            let _ = s.finish_interval();
        } else {
            for x in 0..(arg % 48) {
                s.observe(StratumId(x % 5), f64::from(x ^ arg));
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A reservoir with an arbitrary fill/shrink/grow history round-trips
    /// exactly, and the decoded copy draws the same future stream.
    #[test]
    fn reservoir_roundtrip_preserves_future_draws(
        history in proptest::collection::vec((0u8..4, 0u32..1_000), 0..12),
        cap in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let res = build_reservoir(&history, cap, &mut rng);
        let mut back = Reservoir::<f64>::from_wire_bytes(&res.to_wire_bytes()).unwrap();
        let mut orig = res;
        prop_assert_eq!(&back, &orig);
        // Continue both with identical input and a shared RNG stream: the
        // *states* being equal must make the futures equal too.
        let mut ra = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let mut rb = SmallRng::seed_from_u64(seed ^ 0xABCD);
        for x in 0..200u32 {
            orig.observe(f64::from(x), &mut ra);
            back.observe(f64::from(x), &mut rb);
        }
        prop_assert_eq!(&back, &orig);
        prop_assert_eq!(ra, rb, "rng draw counts diverged");
    }

    /// encode→decode→merge is bit-identical to merging the originals, for
    /// reservoirs with arbitrary histories on both sides.
    #[test]
    fn reservoir_decode_then_merge_equals_merging_originals(
        ha in proptest::collection::vec((0u8..4, 0u32..1_000), 0..10),
        hb in proptest::collection::vec((0u8..4, 0u32..1_000), 0..10),
        cap in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = build_reservoir(&ha, cap, &mut rng);
        let b = build_reservoir(&hb, cap, &mut rng);
        let a2 = Reservoir::<f64>::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        let b2 = Reservoir::<f64>::from_wire_bytes(&b.to_wire_bytes()).unwrap();
        let mut m1 = SmallRng::seed_from_u64(seed ^ 1);
        let mut m2 = SmallRng::seed_from_u64(seed ^ 1);
        let merged_orig = a.merge_with(b, cap, &mut m1);
        let merged_wire = a2.merge_with(b2, cap, &mut m2);
        prop_assert_eq!(merged_wire, merged_orig);
    }

    /// An OASRS sampler with an arbitrary multi-interval history under any
    /// sizing policy round-trips exactly — including RNG and capacity
    /// plans — so decode-then-merge equals merging the originals.
    #[test]
    fn oasrs_decode_then_merge_equals_merging_originals(
        ha in proptest::collection::vec((0u8..8, 0u32..1_000), 0..10),
        hb in proptest::collection::vec((0u8..8, 0u32..1_000), 0..10),
        kind in any::<u8>(),
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let policy = pick_policy(kind, n);
        let a = build_oasrs(&ha, policy, seed);
        let b = build_oasrs(&hb, policy, seed ^ 0x5555);
        let a2 = OasrsSampler::<f64>::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        let b2 = OasrsSampler::<f64>::from_wire_bytes(&b.to_wire_bytes()).unwrap();
        prop_assert_eq!(&a2, &a);
        prop_assert_eq!(&b2, &b);
        let mut merged_orig = a;
        merged_orig.merge_with(b);
        let mut merged_wire = a2;
        merged_wire.merge_with(b2);
        prop_assert_eq!(&merged_wire, &merged_orig);
        // And the merged samplers still agree after finishing the interval.
        prop_assert_eq!(merged_wire.finish_interval(), merged_orig.finish_interval());
    }

    /// ScaSRS work counters round-trip and keep merging additively.
    #[test]
    fn scasrs_stats_roundtrip_and_merge(
        a in (0usize..1_000, 0usize..1_000, 0usize..1_000),
        b in (0usize..1_000, 0usize..1_000, 0usize..1_000),
    ) {
        let sa = ScasrsStats { accepted_directly: a.0, waitlisted: a.1, rejected_directly: a.2 };
        let sb = ScasrsStats { accepted_directly: b.0, waitlisted: b.1, rejected_directly: b.2 };
        let mut orig = sa;
        orig.merge(sb);
        let mut wire = ScasrsStats::from_wire_bytes(&sa.to_wire_bytes()).unwrap();
        wire.merge(ScasrsStats::from_wire_bytes(&sb.to_wire_bytes()).unwrap());
        prop_assert_eq!(wire, orig);
    }
}
