//! Protocol messages and their wire encodings.

use sa_estimate::StratumStats;
use sa_types::wire::put_varint;
use sa_types::{
    ApproxResult, Confidence, EventTime, IngestCounters, RunSeed, SaError, StratifiedSample,
    StratumId, Window, WindowSpec, WireDecode, WireEncode, WireReader,
};

/// The sampling directive a coordinator assigns to its workers — a
/// network-serializable mirror of the `streamapprox` crate's sizing
/// directive (which this crate cannot depend on without a cycle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Directive {
    /// Keep a fraction of the previous interval's volume, adapted each pane.
    Fraction(f64),
    /// A fixed reservoir per stratum.
    PerStratum(usize),
    /// A total budget shared across strata.
    SharedTotal(usize),
    /// No sampling: exact per-stratum statistics.
    Everything,
}

impl WireEncode for Directive {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Directive::Fraction(f) => {
                out.push(0);
                f.encode(out);
            }
            Directive::PerStratum(n) => {
                out.push(1);
                n.encode(out);
            }
            Directive::SharedTotal(n) => {
                out.push(2);
                n.encode(out);
            }
            Directive::Everything => out.push(3),
        }
    }
}

impl WireDecode for Directive {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let directive = match r.read_u8()? {
            0 => Directive::Fraction(r.read_f64()?),
            1 => Directive::PerStratum(usize::decode(r)?),
            2 => Directive::SharedTotal(usize::decode(r)?),
            3 => Directive::Everything,
            t => return Err(SaError::Wire(format!("unknown directive tag {t}"))),
        };
        let valid = match directive {
            Directive::Fraction(f) => f > 0.0 && f <= 1.0,
            Directive::PerStratum(n) | Directive::SharedTotal(n) => n > 0,
            Directive::Everything => true,
        };
        if !valid {
            return Err(SaError::Wire(format!("invalid directive {directive:?}")));
        }
        Ok(directive)
    }
}

/// The mergeable state one worker ships for one closed pane.
#[derive(Debug, Clone, PartialEq)]
pub enum DigestPayload {
    /// A weighted stratified sample, already projected to the aggregated
    /// `f64` value (merging is projection-agnostic, so shipping projected
    /// values is bit-identical to shipping items and projecting centrally).
    Sampled(StratifiedSample<f64>),
    /// Exact per-stratum sufficient statistics (the no-sampling path).
    Exact(Vec<StratumStats>),
}

impl WireEncode for DigestPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DigestPayload::Sampled(sample) => {
                out.push(0);
                sample.encode(out);
            }
            DigestPayload::Exact(stats) => {
                out.push(1);
                stats.encode(out);
            }
        }
    }
}

impl WireDecode for DigestPayload {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        match r.read_u8()? {
            0 => Ok(DigestPayload::Sampled(StratifiedSample::decode(r)?)),
            1 => {
                let stats = Vec::<StratumStats>::decode(r)?;
                for pair in stats.windows(2) {
                    if pair[1].stratum <= pair[0].stratum {
                        return Err(SaError::Wire(format!(
                            "exact digest strata out of order at {}",
                            pair[1].stratum
                        )));
                    }
                }
                Ok(DigestPayload::Exact(stats))
            }
            t => Err(SaError::Wire(format!("unknown digest payload tag {t}"))),
        }
    }
}

/// One worker's digest of one closed pane: who sampled, which pane of
/// event time it covers, the worker's running ingest accounting, and the
/// mergeable sampler state itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Digest {
    /// The sending worker's id (the coordinator merges in worker-id order).
    pub worker: u32,
    /// The pane of event time the digest covers.
    pub pane: Window,
    /// The worker's *running* ingest totals as of this pane.
    pub counters: IngestCounters,
    /// The worker's event-time watermark after closing the pane.
    pub watermark: Option<EventTime>,
    /// Outstanding items between the worker and its source.
    pub lag: u64,
    /// The pane start (ms) of the worker's last checkpoint, if any.
    pub last_checkpoint_pane: Option<i64>,
    /// Items the worker ingested since its last checkpoint.
    pub items_since_checkpoint: u64,
    /// Encoded size of the worker's last snapshot in bytes.
    pub snapshot_bytes: u64,
    /// The pane's mergeable sampler state.
    pub payload: DigestPayload,
}

impl WireEncode for Digest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.worker.encode(out);
        self.pane.encode(out);
        self.counters.encode(out);
        self.watermark.encode(out);
        put_varint(out, self.lag);
        self.last_checkpoint_pane.encode(out);
        put_varint(out, self.items_since_checkpoint);
        put_varint(out, self.snapshot_bytes);
        self.payload.encode(out);
    }
}

impl WireDecode for Digest {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(Digest {
            worker: u32::decode(r)?,
            pane: Window::decode(r)?,
            counters: IngestCounters::decode(r)?,
            watermark: Option::<EventTime>::decode(r)?,
            lag: r.read_varint()?,
            last_checkpoint_pane: Option::<i64>::decode(r)?,
            items_since_checkpoint: r.read_varint()?,
            snapshot_bytes: r.read_varint()?,
            payload: DigestPayload::decode(r)?,
        })
    }
}

/// A finalized window estimate, streamed back to workers that asked for
/// results — a network-serializable mirror of the `streamapprox` crate's
/// `WindowResult` built only from `sa-types` vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResultMsg {
    /// The window of event time the result covers.
    pub window: Window,
    /// The estimated sum with its error bound.
    pub sum: ApproxResult,
    /// The estimated mean with its error bound.
    pub mean: ApproxResult,
    /// Per-stratum sum estimates, in stratum order.
    pub sum_by_stratum: Vec<(StratumId, ApproxResult)>,
    /// Per-stratum mean estimates, in stratum order.
    pub mean_by_stratum: Vec<(StratumId, ApproxResult)>,
}

impl WireEncode for WindowResultMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.window.encode(out);
        self.sum.encode(out);
        self.mean.encode(out);
        self.sum_by_stratum.encode(out);
        self.mean_by_stratum.encode(out);
    }
}

impl WireDecode for WindowResultMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(WindowResultMsg {
            window: Window::decode(r)?,
            sum: ApproxResult::decode(r)?,
            mean: ApproxResult::decode(r)?,
            sum_by_stratum: Vec::decode(r)?,
            mean_by_stratum: Vec::decode(r)?,
        })
    }
}

/// A protocol message, as it crosses a [`frame`](crate::frame)d transport.
///
/// The handshake is coordinator-driven: a worker connects and sends
/// [`Message::HelloJoin`]; the coordinator replies with
/// [`Message::HelloAssign`], which carries *every* run parameter — seed,
/// sampling directive, pane interval, window specification and confidence
/// level — so worker binaries need no configuration beyond an address and
/// a worker id. After that, the worker ships one [`Message::PaneDigest`]
/// per closed pane, interleaves [`Message::Heartbeat`]s while idle, and
/// says [`Message::Shutdown`] before closing its end. A socket that closes
/// without `Shutdown` is a worker failure and surfaces as a typed error on
/// the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A worker announces itself and whether it wants results streamed back.
    HelloJoin {
        /// The joining worker's id in `0..num_workers`.
        worker: u32,
        /// When set, the coordinator streams [`Message::WindowResult`]s
        /// back on this connection as windows finalize.
        wants_results: bool,
    },
    /// The coordinator's reply: the full run configuration.
    HelloAssign {
        /// The worker id this assignment confirms.
        worker: u32,
        /// Total number of workers in the run (the shard count).
        num_workers: u32,
        /// The run seed; the worker derives its shard-local seed from it.
        seed: RunSeed,
        /// The sampling directive every worker runs under.
        directive: Directive,
        /// Pane length in milliseconds (the slide of the window spec).
        pane_interval_ms: i64,
        /// Expected items per pane across all workers (sizes reservoirs).
        expected_pane_items: u64,
        /// The window specification windows are finalized under.
        window: WindowSpec,
        /// The confidence level of the emitted error bounds.
        confidence: Confidence,
    },
    /// One worker's mergeable digest of one closed pane.
    PaneDigest(Digest),
    /// Liveness and progress while no pane is closing.
    Heartbeat {
        /// The reporting worker's id.
        worker: u32,
        /// The worker's running ingest totals.
        ingest: IngestCounters,
        /// The worker's event-time watermark; `None` before its first item.
        watermark: Option<EventTime>,
        /// Outstanding items between the worker and its source.
        lag: u64,
        /// The pane start (ms) of the worker's last checkpoint, if any.
        last_checkpoint_pane: Option<i64>,
        /// Items the worker ingested since its last checkpoint.
        items_since_checkpoint: u64,
        /// Encoded size of the worker's last snapshot in bytes.
        snapshot_bytes: u64,
    },
    /// A finalized window estimate (coordinator → worker).
    WindowResult(WindowResultMsg),
    /// A clean goodbye; the sender will close the connection next.
    Shutdown {
        /// The departing worker's id.
        worker: u32,
    },
}

impl WireEncode for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::HelloJoin {
                worker,
                wants_results,
            } => {
                out.push(0);
                worker.encode(out);
                wants_results.encode(out);
            }
            Message::HelloAssign {
                worker,
                num_workers,
                seed,
                directive,
                pane_interval_ms,
                expected_pane_items,
                window,
                confidence,
            } => {
                out.push(1);
                worker.encode(out);
                num_workers.encode(out);
                seed.encode(out);
                directive.encode(out);
                pane_interval_ms.encode(out);
                expected_pane_items.encode(out);
                window.encode(out);
                confidence.encode(out);
            }
            Message::PaneDigest(digest) => {
                out.push(2);
                digest.encode(out);
            }
            Message::Heartbeat {
                worker,
                ingest,
                watermark,
                lag,
                last_checkpoint_pane,
                items_since_checkpoint,
                snapshot_bytes,
            } => {
                out.push(3);
                worker.encode(out);
                ingest.encode(out);
                watermark.encode(out);
                put_varint(out, *lag);
                last_checkpoint_pane.encode(out);
                put_varint(out, *items_since_checkpoint);
                put_varint(out, *snapshot_bytes);
            }
            Message::WindowResult(result) => {
                out.push(4);
                result.encode(out);
            }
            Message::Shutdown { worker } => {
                out.push(5);
                worker.encode(out);
            }
        }
    }
}

impl WireDecode for Message {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        match r.read_u8()? {
            0 => Ok(Message::HelloJoin {
                worker: u32::decode(r)?,
                wants_results: bool::decode(r)?,
            }),
            1 => {
                let worker = u32::decode(r)?;
                let num_workers = u32::decode(r)?;
                let seed = RunSeed::decode(r)?;
                let directive = Directive::decode(r)?;
                let pane_interval_ms = i64::decode(r)?;
                let expected_pane_items = u64::decode(r)?;
                let window = WindowSpec::decode(r)?;
                let confidence = Confidence::decode(r)?;
                if num_workers == 0 {
                    return Err(SaError::Wire("assignment with zero workers".to_string()));
                }
                if worker >= num_workers {
                    return Err(SaError::Wire(format!(
                        "assigned worker {worker} outside 0..{num_workers}"
                    )));
                }
                if pane_interval_ms <= 0 {
                    return Err(SaError::Wire(format!(
                        "non-positive pane interval {pane_interval_ms}"
                    )));
                }
                Ok(Message::HelloAssign {
                    worker,
                    num_workers,
                    seed,
                    directive,
                    pane_interval_ms,
                    expected_pane_items,
                    window,
                    confidence,
                })
            }
            2 => Ok(Message::PaneDigest(Digest::decode(r)?)),
            3 => Ok(Message::Heartbeat {
                worker: u32::decode(r)?,
                ingest: IngestCounters::decode(r)?,
                watermark: Option::<EventTime>::decode(r)?,
                lag: r.read_varint()?,
                last_checkpoint_pane: Option::<i64>::decode(r)?,
                items_since_checkpoint: r.read_varint()?,
                snapshot_bytes: r.read_varint()?,
            }),
            4 => Ok(Message::WindowResult(WindowResultMsg::decode(r)?)),
            5 => Ok(Message::Shutdown {
                worker: u32::decode(r)?,
            }),
            t => Err(SaError::Wire(format!("unknown message tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::{ErrorBound, StratumSample};

    fn sample_digest() -> Digest {
        let sample: StratifiedSample<f64> = [
            StratumSample::new(StratumId(0), vec![1.0, 2.0], 100, 2),
            StratumSample::new(StratumId(3), vec![4.5], 40, 1),
        ]
        .into_iter()
        .collect();
        Digest {
            worker: 1,
            pane: Window::new(EventTime::from_millis(0), EventTime::from_millis(500)),
            counters: IngestCounters {
                ingested: 140,
                dropped_late: 3,
            },
            watermark: Some(EventTime::from_millis(499)),
            lag: 12,
            last_checkpoint_pane: Some(0),
            items_since_checkpoint: 140,
            snapshot_bytes: 512,
            payload: DigestPayload::Sampled(sample),
        }
    }

    fn all_messages() -> Vec<Message> {
        let result = ApproxResult::new(10.0, ErrorBound::new(0.5, Confidence::P95), 100, 1_000);
        vec![
            Message::HelloJoin {
                worker: 2,
                wants_results: true,
            },
            Message::HelloAssign {
                worker: 2,
                num_workers: 3,
                seed: RunSeed::new(42),
                directive: Directive::Fraction(0.05),
                pane_interval_ms: 500,
                expected_pane_items: 10_000,
                window: WindowSpec::sliding_millis(1_000, 500),
                confidence: Confidence::P95,
            },
            Message::PaneDigest(sample_digest()),
            Message::Heartbeat {
                worker: 0,
                ingest: IngestCounters {
                    ingested: 7,
                    dropped_late: 0,
                },
                watermark: None,
                lag: 0,
                last_checkpoint_pane: None,
                items_since_checkpoint: 7,
                snapshot_bytes: 0,
            },
            Message::WindowResult(WindowResultMsg {
                window: Window::new(EventTime::from_millis(0), EventTime::from_millis(1_000)),
                sum: result,
                mean: result,
                sum_by_stratum: vec![(StratumId(0), result)],
                mean_by_stratum: vec![(StratumId(0), result)],
            }),
            Message::Shutdown { worker: 1 },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let bytes = msg.to_wire_bytes();
            assert_eq!(Message::from_wire_bytes(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        for msg in all_messages() {
            let bytes = msg.to_wire_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    Message::from_wire_bytes(&bytes[..cut]).is_err(),
                    "{msg:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::Shutdown { worker: 1 }.to_wire_bytes();
        bytes.push(0);
        assert!(matches!(
            Message::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Message::from_wire_bytes(&[9]),
            Err(SaError::Wire(_))
        ));
        assert!(matches!(
            Directive::decode(&mut WireReader::new(&[7])),
            Err(SaError::Wire(_))
        ));
        assert!(matches!(
            DigestPayload::decode(&mut WireReader::new(&[2])),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn invalid_assignments_rejected() {
        let encode_assign = |worker: u32, num_workers: u32, pane_ms: i64| {
            let mut out = vec![1u8];
            worker.encode(&mut out);
            num_workers.encode(&mut out);
            RunSeed::new(1).encode(&mut out);
            Directive::Everything.encode(&mut out);
            pane_ms.encode(&mut out);
            100u64.encode(&mut out);
            WindowSpec::sliding_millis(1_000, 500).encode(&mut out);
            Confidence::P95.encode(&mut out);
            out
        };
        assert!(Message::from_wire_bytes(&encode_assign(0, 0, 500)).is_err());
        assert!(Message::from_wire_bytes(&encode_assign(3, 3, 500)).is_err());
        assert!(Message::from_wire_bytes(&encode_assign(0, 3, 0)).is_err());
        assert!(Message::from_wire_bytes(&encode_assign(0, 3, 500)).is_ok());
    }

    #[test]
    fn invalid_directives_rejected() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let bytes = Directive::Fraction(bad).to_wire_bytes();
            assert!(Directive::from_wire_bytes(&bytes).is_err(), "{bad}");
        }
        let bytes = Directive::PerStratum(0).to_wire_bytes();
        assert!(Directive::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn out_of_order_exact_digest_rejected() {
        use sa_estimate::Welford;
        let stats = vec![
            StratumStats::from_parts(StratumId(5), 10, Welford::new()),
            StratumStats::from_parts(StratumId(2), 10, Welford::new()),
        ];
        let bytes = DigestPayload::Exact(stats).to_wire_bytes();
        assert!(matches!(
            DigestPayload::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }
}
