//! Protocol messages and their wire encodings.

use sa_estimate::StratumStats;
use sa_types::wire::put_varint;
use sa_types::{
    ApproxResult, Confidence, EventTime, IngestCounters, RunSeed, SaError, StratifiedSample,
    StratumId, Window, WindowSpec, WireDecode, WireEncode, WireReader,
};

/// The sampling directive a coordinator assigns to its workers — a
/// network-serializable mirror of the `streamapprox` crate's sizing
/// directive (which this crate cannot depend on without a cycle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Directive {
    /// Keep a fraction of the previous interval's volume, adapted each pane.
    Fraction(f64),
    /// A fixed reservoir per stratum.
    PerStratum(usize),
    /// A total budget shared across strata.
    SharedTotal(usize),
    /// No sampling: exact per-stratum statistics.
    Everything,
}

impl WireEncode for Directive {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Directive::Fraction(f) => {
                out.push(0);
                f.encode(out);
            }
            Directive::PerStratum(n) => {
                out.push(1);
                n.encode(out);
            }
            Directive::SharedTotal(n) => {
                out.push(2);
                n.encode(out);
            }
            Directive::Everything => out.push(3),
        }
    }
}

impl WireDecode for Directive {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let directive = match r.read_u8()? {
            0 => Directive::Fraction(r.read_f64()?),
            1 => Directive::PerStratum(usize::decode(r)?),
            2 => Directive::SharedTotal(usize::decode(r)?),
            3 => Directive::Everything,
            t => return Err(SaError::Wire(format!("unknown directive tag {t}"))),
        };
        let valid = match directive {
            Directive::Fraction(f) => f > 0.0 && f <= 1.0,
            Directive::PerStratum(n) | Directive::SharedTotal(n) => n > 0,
            Directive::Everything => true,
        };
        if !valid {
            return Err(SaError::Wire(format!("invalid directive {directive:?}")));
        }
        Ok(directive)
    }
}

/// The mergeable state one worker ships for one closed pane.
#[derive(Debug, Clone, PartialEq)]
pub enum DigestPayload {
    /// A weighted stratified sample, already projected to the aggregated
    /// `f64` value (merging is projection-agnostic, so shipping projected
    /// values is bit-identical to shipping items and projecting centrally).
    Sampled(StratifiedSample<f64>),
    /// Exact per-stratum sufficient statistics (the no-sampling path).
    Exact(Vec<StratumStats>),
}

impl WireEncode for DigestPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DigestPayload::Sampled(sample) => {
                out.push(0);
                sample.encode(out);
            }
            DigestPayload::Exact(stats) => {
                out.push(1);
                stats.encode(out);
            }
        }
    }
}

impl WireDecode for DigestPayload {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        match r.read_u8()? {
            0 => Ok(DigestPayload::Sampled(StratifiedSample::decode(r)?)),
            1 => {
                let stats = Vec::<StratumStats>::decode(r)?;
                for pair in stats.windows(2) {
                    if pair[1].stratum <= pair[0].stratum {
                        return Err(SaError::Wire(format!(
                            "exact digest strata out of order at {}",
                            pair[1].stratum
                        )));
                    }
                }
                Ok(DigestPayload::Exact(stats))
            }
            t => Err(SaError::Wire(format!("unknown digest payload tag {t}"))),
        }
    }
}

/// One worker's digest of one closed pane: who sampled, which pane of
/// event time it covers, the worker's running ingest accounting, and the
/// mergeable sampler state itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Digest {
    /// The sending worker's id (the coordinator merges in worker-id order).
    pub worker: u32,
    /// The pane of event time the digest covers.
    pub pane: Window,
    /// The worker's *running* ingest totals as of this pane.
    pub counters: IngestCounters,
    /// The worker's event-time watermark after closing the pane.
    pub watermark: Option<EventTime>,
    /// Outstanding items between the worker and its source.
    pub lag: u64,
    /// The pane start (ms) of the worker's last checkpoint, if any.
    pub last_checkpoint_pane: Option<i64>,
    /// Items the worker ingested since its last checkpoint.
    pub items_since_checkpoint: u64,
    /// Encoded size of the worker's last snapshot in bytes.
    pub snapshot_bytes: u64,
    /// The pane's mergeable sampler state.
    pub payload: DigestPayload,
}

impl WireEncode for Digest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.worker.encode(out);
        self.pane.encode(out);
        self.counters.encode(out);
        self.watermark.encode(out);
        put_varint(out, self.lag);
        self.last_checkpoint_pane.encode(out);
        put_varint(out, self.items_since_checkpoint);
        put_varint(out, self.snapshot_bytes);
        self.payload.encode(out);
    }
}

impl WireDecode for Digest {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(Digest {
            worker: u32::decode(r)?,
            pane: Window::decode(r)?,
            counters: IngestCounters::decode(r)?,
            watermark: Option::<EventTime>::decode(r)?,
            lag: r.read_varint()?,
            last_checkpoint_pane: Option::<i64>::decode(r)?,
            items_since_checkpoint: r.read_varint()?,
            snapshot_bytes: r.read_varint()?,
            payload: DigestPayload::decode(r)?,
        })
    }
}

/// A finalized window estimate, streamed back to workers that asked for
/// results — a network-serializable mirror of the `streamapprox` crate's
/// `WindowResult` built only from `sa-types` vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResultMsg {
    /// The window of event time the result covers.
    pub window: Window,
    /// The estimated sum with its error bound.
    pub sum: ApproxResult,
    /// The estimated mean with its error bound.
    pub mean: ApproxResult,
    /// Per-stratum sum estimates, in stratum order.
    pub sum_by_stratum: Vec<(StratumId, ApproxResult)>,
    /// Per-stratum mean estimates, in stratum order.
    pub mean_by_stratum: Vec<(StratumId, ApproxResult)>,
    /// `true` if any pane of this window merged without a dead shard's
    /// digest; its error bounds are already widened by the lost mass.
    pub degraded: bool,
    /// Estimated items lost to missing shards across this window's panes.
    pub lost_items: u64,
}

impl WireEncode for WindowResultMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.window.encode(out);
        self.sum.encode(out);
        self.mean.encode(out);
        self.sum_by_stratum.encode(out);
        self.mean_by_stratum.encode(out);
        self.degraded.encode(out);
        put_varint(out, self.lost_items);
    }
}

impl WireDecode for WindowResultMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(WindowResultMsg {
            window: Window::decode(r)?,
            sum: ApproxResult::decode(r)?,
            mean: ApproxResult::decode(r)?,
            sum_by_stratum: Vec::decode(r)?,
            mean_by_stratum: Vec::decode(r)?,
            degraded: bool::decode(r)?,
            lost_items: r.read_varint()?,
        })
    }
}

/// A protocol message, as it crosses a [`frame`](crate::frame)d transport.
///
/// The handshake is coordinator-driven: a worker connects and sends
/// [`Message::HelloJoin`]; the coordinator replies with
/// [`Message::HelloAssign`], which carries *every* run parameter — seed,
/// sampling directive, pane interval, window specification and confidence
/// level — so worker binaries need no configuration beyond an address and
/// a worker id. After that, the worker ships one [`Message::PaneDigest`]
/// per closed pane, interleaves [`Message::Heartbeat`]s while idle (an
/// automatic heartbeat thread on the worker when the assignment carries a
/// non-zero `heartbeat_interval_ms`), and says [`Message::Shutdown`]
/// before closing its end. A socket that closes without `Shutdown` is a
/// worker failure: the coordinator declares the worker dead, holds its
/// shard open for a replacement, and degrades the affected panes if none
/// arrives in time.
///
/// Recovery extends the handshake: a replacement sends
/// [`Message::HelloRejoin`] instead of `HelloJoin`, and the coordinator
/// answers with `HelloAssign` (naming the adopted dead shard) followed by
/// [`Message::Reassign`], which carries the dead worker's last sealed
/// session-snapshot slice — the same frames checkpointing uses — so the
/// replacement resumes within the checkpoint exposure budget. Workers ship
/// those slices upstream with [`Message::SnapshotSlice`] at every
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A worker announces itself and whether it wants results streamed back.
    HelloJoin {
        /// The joining worker's id in `0..num_workers`.
        worker: u32,
        /// When set, the coordinator streams [`Message::WindowResult`]s
        /// back on this connection as windows finalize.
        wants_results: bool,
    },
    /// The coordinator's reply: the full run configuration.
    HelloAssign {
        /// The worker id this assignment confirms.
        worker: u32,
        /// Total number of workers in the run (the shard count).
        num_workers: u32,
        /// The run seed; the worker derives its shard-local seed from it.
        seed: RunSeed,
        /// The sampling directive every worker runs under.
        directive: Directive,
        /// Pane length in milliseconds (the slide of the window spec).
        pane_interval_ms: i64,
        /// Expected items per pane across all workers (sizes reservoirs).
        expected_pane_items: u64,
        /// The window specification windows are finalized under.
        window: WindowSpec,
        /// The confidence level of the emitted error bounds.
        confidence: Confidence,
        /// Cadence (ms) at which the worker's automatic heartbeat thread
        /// reports liveness; 0 disables automatic heartbeats.
        heartbeat_interval_ms: u64,
    },
    /// One worker's mergeable digest of one closed pane.
    PaneDigest(Digest),
    /// Liveness and progress while no pane is closing.
    Heartbeat {
        /// The reporting worker's id.
        worker: u32,
        /// The worker's running ingest totals.
        ingest: IngestCounters,
        /// The worker's event-time watermark; `None` before its first item.
        watermark: Option<EventTime>,
        /// Outstanding items between the worker and its source.
        lag: u64,
        /// The pane start (ms) of the worker's last checkpoint, if any.
        last_checkpoint_pane: Option<i64>,
        /// Items the worker ingested since its last checkpoint.
        items_since_checkpoint: u64,
        /// Encoded size of the worker's last snapshot in bytes.
        snapshot_bytes: u64,
    },
    /// A finalized window estimate (coordinator → worker).
    WindowResult(WindowResultMsg),
    /// A clean goodbye; the sender will close the connection next.
    Shutdown {
        /// The departing worker's id.
        worker: u32,
    },
    /// A replacement worker volunteers to adopt any dead shard; the
    /// coordinator answers with [`Message::HelloAssign`] naming the shard,
    /// then [`Message::Reassign`] with the handoff state.
    HelloRejoin {
        /// When set, the coordinator streams [`Message::WindowResult`]s
        /// back on this connection as windows finalize.
        wants_results: bool,
    },
    /// The handoff that follows a rejoin assignment: the adopted shard's
    /// last sealed session snapshot (empty if the dead worker never
    /// checkpointed), from which the replacement resumes within the
    /// checkpoint exposure budget.
    Reassign {
        /// The shard id the replacement now owns.
        worker: u32,
        /// How many times this shard has been re-adopted, counting this one.
        respawns: u32,
        /// The dead worker's last sealed `SessionSnapshot` (the
        /// `snapshot`-framed bytes), empty if none was ever shipped.
        snapshot: Vec<u8>,
    },
    /// A worker ships its freshly sealed session snapshot to the
    /// coordinator at each checkpoint, so a future replacement can resume
    /// from it (worker → coordinator).
    SnapshotSlice {
        /// The checkpointing worker's id.
        worker: u32,
        /// The pane start (ms) the snapshot covers through, if any.
        pane: Option<i64>,
        /// The sealed `SessionSnapshot` bytes.
        sealed: Vec<u8>,
    },
}

impl WireEncode for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::HelloJoin {
                worker,
                wants_results,
            } => {
                out.push(0);
                worker.encode(out);
                wants_results.encode(out);
            }
            Message::HelloAssign {
                worker,
                num_workers,
                seed,
                directive,
                pane_interval_ms,
                expected_pane_items,
                window,
                confidence,
                heartbeat_interval_ms,
            } => {
                out.push(1);
                worker.encode(out);
                num_workers.encode(out);
                seed.encode(out);
                directive.encode(out);
                pane_interval_ms.encode(out);
                expected_pane_items.encode(out);
                window.encode(out);
                confidence.encode(out);
                put_varint(out, *heartbeat_interval_ms);
            }
            Message::PaneDigest(digest) => {
                out.push(2);
                digest.encode(out);
            }
            Message::Heartbeat {
                worker,
                ingest,
                watermark,
                lag,
                last_checkpoint_pane,
                items_since_checkpoint,
                snapshot_bytes,
            } => {
                out.push(3);
                worker.encode(out);
                ingest.encode(out);
                watermark.encode(out);
                put_varint(out, *lag);
                last_checkpoint_pane.encode(out);
                put_varint(out, *items_since_checkpoint);
                put_varint(out, *snapshot_bytes);
            }
            Message::WindowResult(result) => {
                out.push(4);
                result.encode(out);
            }
            Message::Shutdown { worker } => {
                out.push(5);
                worker.encode(out);
            }
            Message::HelloRejoin { wants_results } => {
                out.push(6);
                wants_results.encode(out);
            }
            Message::Reassign {
                worker,
                respawns,
                snapshot,
            } => {
                out.push(7);
                worker.encode(out);
                respawns.encode(out);
                put_varint(out, snapshot.len() as u64);
                out.extend_from_slice(snapshot);
            }
            Message::SnapshotSlice {
                worker,
                pane,
                sealed,
            } => {
                out.push(8);
                worker.encode(out);
                pane.encode(out);
                put_varint(out, sealed.len() as u64);
                out.extend_from_slice(sealed);
            }
        }
    }
}

impl WireDecode for Message {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        match r.read_u8()? {
            0 => Ok(Message::HelloJoin {
                worker: u32::decode(r)?,
                wants_results: bool::decode(r)?,
            }),
            1 => {
                let worker = u32::decode(r)?;
                let num_workers = u32::decode(r)?;
                let seed = RunSeed::decode(r)?;
                let directive = Directive::decode(r)?;
                let pane_interval_ms = i64::decode(r)?;
                let expected_pane_items = u64::decode(r)?;
                let window = WindowSpec::decode(r)?;
                let confidence = Confidence::decode(r)?;
                let heartbeat_interval_ms = r.read_varint()?;
                if num_workers == 0 {
                    return Err(SaError::Wire("assignment with zero workers".to_string()));
                }
                if worker >= num_workers {
                    return Err(SaError::Wire(format!(
                        "assigned worker {worker} outside 0..{num_workers}"
                    )));
                }
                if pane_interval_ms <= 0 {
                    return Err(SaError::Wire(format!(
                        "non-positive pane interval {pane_interval_ms}"
                    )));
                }
                Ok(Message::HelloAssign {
                    worker,
                    num_workers,
                    seed,
                    directive,
                    pane_interval_ms,
                    expected_pane_items,
                    window,
                    confidence,
                    heartbeat_interval_ms,
                })
            }
            2 => Ok(Message::PaneDigest(Digest::decode(r)?)),
            3 => Ok(Message::Heartbeat {
                worker: u32::decode(r)?,
                ingest: IngestCounters::decode(r)?,
                watermark: Option::<EventTime>::decode(r)?,
                lag: r.read_varint()?,
                last_checkpoint_pane: Option::<i64>::decode(r)?,
                items_since_checkpoint: r.read_varint()?,
                snapshot_bytes: r.read_varint()?,
            }),
            4 => Ok(Message::WindowResult(WindowResultMsg::decode(r)?)),
            5 => Ok(Message::Shutdown {
                worker: u32::decode(r)?,
            }),
            6 => Ok(Message::HelloRejoin {
                wants_results: bool::decode(r)?,
            }),
            7 => {
                let worker = u32::decode(r)?;
                let respawns = u32::decode(r)?;
                let len = r.read_len()?;
                let snapshot = r.read_bytes(len)?.to_vec();
                Ok(Message::Reassign {
                    worker,
                    respawns,
                    snapshot,
                })
            }
            8 => {
                let worker = u32::decode(r)?;
                let pane = Option::<i64>::decode(r)?;
                let len = r.read_len()?;
                let sealed = r.read_bytes(len)?.to_vec();
                Ok(Message::SnapshotSlice {
                    worker,
                    pane,
                    sealed,
                })
            }
            t => Err(SaError::Wire(format!("unknown message tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::{ErrorBound, StratumSample};

    fn sample_digest() -> Digest {
        let sample: StratifiedSample<f64> = [
            StratumSample::new(StratumId(0), vec![1.0, 2.0], 100, 2),
            StratumSample::new(StratumId(3), vec![4.5], 40, 1),
        ]
        .into_iter()
        .collect();
        Digest {
            worker: 1,
            pane: Window::new(EventTime::from_millis(0), EventTime::from_millis(500)),
            counters: IngestCounters {
                ingested: 140,
                dropped_late: 3,
            },
            watermark: Some(EventTime::from_millis(499)),
            lag: 12,
            last_checkpoint_pane: Some(0),
            items_since_checkpoint: 140,
            snapshot_bytes: 512,
            payload: DigestPayload::Sampled(sample),
        }
    }

    fn all_messages() -> Vec<Message> {
        let result = ApproxResult::new(10.0, ErrorBound::new(0.5, Confidence::P95), 100, 1_000);
        vec![
            Message::HelloJoin {
                worker: 2,
                wants_results: true,
            },
            Message::HelloAssign {
                worker: 2,
                num_workers: 3,
                seed: RunSeed::new(42),
                directive: Directive::Fraction(0.05),
                pane_interval_ms: 500,
                expected_pane_items: 10_000,
                window: WindowSpec::sliding_millis(1_000, 500),
                confidence: Confidence::P95,
                heartbeat_interval_ms: 500,
            },
            Message::PaneDigest(sample_digest()),
            Message::Heartbeat {
                worker: 0,
                ingest: IngestCounters {
                    ingested: 7,
                    dropped_late: 0,
                },
                watermark: None,
                lag: 0,
                last_checkpoint_pane: None,
                items_since_checkpoint: 7,
                snapshot_bytes: 0,
            },
            Message::WindowResult(WindowResultMsg {
                window: Window::new(EventTime::from_millis(0), EventTime::from_millis(1_000)),
                sum: result,
                mean: result,
                sum_by_stratum: vec![(StratumId(0), result)],
                mean_by_stratum: vec![(StratumId(0), result)],
                degraded: true,
                lost_items: 321,
            }),
            Message::Shutdown { worker: 1 },
            Message::HelloRejoin {
                wants_results: false,
            },
            Message::Reassign {
                worker: 1,
                respawns: 2,
                snapshot: vec![0xAB, 0x00, 0x17],
            },
            Message::Reassign {
                worker: 0,
                respawns: 1,
                snapshot: Vec::new(),
            },
            Message::SnapshotSlice {
                worker: 2,
                pane: Some(-1_500),
                sealed: vec![1, 2, 3, 4],
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let bytes = msg.to_wire_bytes();
            assert_eq!(Message::from_wire_bytes(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        for msg in all_messages() {
            let bytes = msg.to_wire_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    Message::from_wire_bytes(&bytes[..cut]).is_err(),
                    "{msg:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::Shutdown { worker: 1 }.to_wire_bytes();
        bytes.push(0);
        assert!(matches!(
            Message::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Message::from_wire_bytes(&[9]),
            Err(SaError::Wire(_))
        ));
        assert!(matches!(
            Message::from_wire_bytes(&[250]),
            Err(SaError::Wire(_))
        ));
        assert!(matches!(
            Directive::decode(&mut WireReader::new(&[7])),
            Err(SaError::Wire(_))
        ));
        assert!(matches!(
            DigestPayload::decode(&mut WireReader::new(&[2])),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn invalid_assignments_rejected() {
        let encode_assign = |worker: u32, num_workers: u32, pane_ms: i64| {
            let mut out = vec![1u8];
            worker.encode(&mut out);
            num_workers.encode(&mut out);
            RunSeed::new(1).encode(&mut out);
            Directive::Everything.encode(&mut out);
            pane_ms.encode(&mut out);
            100u64.encode(&mut out);
            WindowSpec::sliding_millis(1_000, 500).encode(&mut out);
            Confidence::P95.encode(&mut out);
            put_varint(&mut out, 500);
            out
        };
        assert!(Message::from_wire_bytes(&encode_assign(0, 0, 500)).is_err());
        assert!(Message::from_wire_bytes(&encode_assign(3, 3, 500)).is_err());
        assert!(Message::from_wire_bytes(&encode_assign(0, 3, 0)).is_err());
        assert!(Message::from_wire_bytes(&encode_assign(0, 3, 500)).is_ok());
    }

    #[test]
    fn invalid_directives_rejected() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let bytes = Directive::Fraction(bad).to_wire_bytes();
            assert!(Directive::from_wire_bytes(&bytes).is_err(), "{bad}");
        }
        let bytes = Directive::PerStratum(0).to_wire_bytes();
        assert!(Directive::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_reassign_snapshot_length_rejected() {
        // A Reassign whose snapshot length prefix promises more bytes than
        // the frame carries must be a typed error, not an allocation or a
        // panic.
        let mut out = vec![7u8];
        1u32.encode(&mut out);
        1u32.encode(&mut out);
        put_varint(&mut out, u64::MAX - 3);
        assert!(matches!(
            Message::from_wire_bytes(&out),
            Err(SaError::Wire(_))
        ));
        // Same discipline for the worker → coordinator snapshot slice.
        let mut out = vec![8u8];
        0u32.encode(&mut out);
        Option::<i64>::Some(0).encode(&mut out);
        put_varint(&mut out, 1 << 40);
        out.extend_from_slice(&[0; 16]);
        assert!(matches!(
            Message::from_wire_bytes(&out),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn reassign_with_trailing_garbage_rejected() {
        let mut bytes = Message::Reassign {
            worker: 0,
            respawns: 1,
            snapshot: vec![9, 9],
        }
        .to_wire_bytes();
        bytes.extend_from_slice(&[0xFF, 0x01]);
        assert!(matches!(
            Message::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn duplicate_and_late_heartbeats_decode_independently() {
        // Liveness handling is the receiver's job; at the codec layer a
        // duplicated, reordered, or post-shutdown heartbeat is just another
        // well-formed frame and must decode cleanly every time.
        let hb = Message::Heartbeat {
            worker: 1,
            ingest: IngestCounters {
                ingested: 10,
                dropped_late: 0,
            },
            watermark: Some(EventTime::from_millis(750)),
            lag: 3,
            last_checkpoint_pane: Some(500),
            items_since_checkpoint: 4,
            snapshot_bytes: 128,
        };
        let bytes = hb.to_wire_bytes();
        for _ in 0..3 {
            assert_eq!(Message::from_wire_bytes(&bytes).unwrap(), hb);
        }
        // A heartbeat corrupted anywhere inside the varint tail errors
        // rather than misattributing fields.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] = 0x80; // dangling varint continuation bit
        assert!(Message::from_wire_bytes(&corrupt).is_err());
    }

    #[test]
    fn out_of_order_exact_digest_rejected() {
        use sa_estimate::Welford;
        let stats = vec![
            StratumStats::from_parts(StratumId(5), 10, Welford::new()),
            StratumStats::from_parts(StratumId(2), 10, Welford::new()),
        ];
        let bytes = DigestPayload::Exact(stats).to_wire_bytes();
        assert!(matches!(
            DigestPayload::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }
}
