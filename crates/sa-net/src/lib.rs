//! The wire protocol of StreamApprox's distributed tier.
//!
//! §3.2 of the paper runs OASRS "in a distributed setting without the need
//! of synchronization": every worker samples its sub-streams locally and
//! only the *mergeable sampler state* crosses the network. This crate is
//! that network layer — a compact, versioned, hand-rolled binary protocol
//! with no dependencies beyond `std`:
//!
//! * [`Message`] — the protocol: workers join ([`Message::HelloJoin`]),
//!   the coordinator assigns shard ranges and run parameters
//!   ([`Message::HelloAssign`]), workers ship one digest per closed pane
//!   ([`Message::PaneDigest`]) plus liveness [`Message::Heartbeat`]s, and
//!   the coordinator optionally streams finalized
//!   [`Message::WindowResult`]s back.
//! * [`frame`] — length-prefixed framing over any `Read`/`Write` pair
//!   (in practice `std::net::TcpStream`): a 2-byte magic, a version byte
//!   and a 32-bit length, with the length bounded *before* any allocation
//!   so a hostile peer cannot OOM the receiver.
//!
//! Payload encoding is the [`sa_types::wire`] format shared with the
//! samplers; everything decodes back bit-identical, which is what lets a
//! coordinator merge shipped digests exactly as if the worker samplers
//! were local (see the `streamapprox` crate's distributed tier).
//!
//! Every decode path returns a typed [`sa_types::SaError`] — truncated
//! frames, wrong versions, unknown tags and invariant-violating payloads
//! are errors, never panics.
//!
//! # Example
//!
//! ```
//! use sa_net::{frame, Message};
//!
//! let msg = Message::HelloJoin { worker: 2, wants_results: true };
//! let mut pipe = Vec::new();
//! frame::write_message(&mut pipe, &msg).unwrap();
//! let mut reader = pipe.as_slice();
//! assert_eq!(frame::read_message(&mut reader).unwrap(), Some(msg));
//! // Clean end-of-stream at a frame boundary is `None`, not an error.
//! assert_eq!(frame::read_message(&mut reader).unwrap(), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod message;
pub mod snapshot;

pub use frame::{FrameBuffer, MAX_FRAME, WIRE_VERSION};
pub use message::{Digest, DigestPayload, Directive, Message, WindowResultMsg};
pub use snapshot::{open_snapshot, seal_snapshot, MAX_SNAPSHOT, SNAPSHOT_VERSION};
