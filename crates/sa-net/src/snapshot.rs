//! The at-rest snapshot frame: how a serialized checkpoint is wrapped
//! before it reaches a checkpoint store file or travels between
//! processes.
//!
//! A snapshot frame is a fixed 4-byte header followed by the payload:
//!
//! ```text
//! +----+----+---------+--------+===========+
//! | 'S'| 'K'| version | length |  payload  |
//! +----+----+---------+--------+===========+
//! ```
//!
//! where `length` is a `u32` LE bounded by [`MAX_SNAPSHOT`] before any
//! allocation (`length` spans 4 bytes; the header is
//! [`SNAPSHOT_HEADER_LEN`] bytes total). The payload is a wire-encoded
//! `SessionSnapshot` (see `sa_types::SessionSnapshot`).
//!
//! # Versioning rules
//!
//! Snapshots outlive processes — a file written by one build is read by
//! the next — so this header carries its own version, independent of the
//! live-connection [`WIRE_VERSION`](crate::WIRE_VERSION):
//!
//! * Values inside the payload are tag-free; their layout is pinned by
//!   [`SNAPSHOT_VERSION`]. **Any** change to the serialized layout of
//!   `SessionSnapshot` or an engine's opaque state — new field, reorder,
//!   meaning change — must bump [`SNAPSHOT_VERSION`].
//! * A reader that sees a version it does not speak must reject the
//!   snapshot with a typed error, never guess: a misread snapshot
//!   silently corrupts the resumed stream, which is strictly worse than
//!   restarting cold. (A future build may choose to *accept* an older
//!   version it still knows how to decode; it must never coerce a newer
//!   one.)
//! * The engine-specific `state` payload nested inside the snapshot is
//!   additionally guarded by the engine name: an engine refuses to
//!   restore state produced by a different engine.

use sa_types::SaError;

/// The two magic bytes opening every snapshot frame.
pub const SNAPSHOT_MAGIC: [u8; 2] = *b"SK";

/// The snapshot format version this build writes and accepts.
///
/// Version 2: serialized `WindowResult`s inside finalizer state carry
/// degraded-merge accounting (`degraded`, `lost_items`), and the window
/// finalizer persists its degraded-pane ledger.
pub const SNAPSHOT_VERSION: u8 = 2;

/// Bytes in the fixed snapshot header.
pub const SNAPSHOT_HEADER_LEN: usize = 7;

/// Upper bound on a snapshot payload, checked before allocation.
///
/// Snapshots are O(sampling budget), not O(stream), so 64 MiB is far
/// above any sane configuration while keeping a corrupt length harmless.
pub const MAX_SNAPSHOT: usize = 64 << 20;

/// Wraps an encoded snapshot payload in the versioned snapshot frame.
///
/// # Errors
///
/// Returns [`SaError::Checkpoint`] if the payload exceeds
/// [`MAX_SNAPSHOT`].
pub fn seal_snapshot(payload: &[u8]) -> Result<Vec<u8>, SaError> {
    if payload.len() > MAX_SNAPSHOT {
        return Err(SaError::Checkpoint(format!(
            "refusing to seal {}-byte snapshot over maximum {MAX_SNAPSHOT}",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Validates a snapshot frame and returns its payload bytes.
///
/// # Errors
///
/// Returns [`SaError::Checkpoint`] on a bad magic, an unsupported
/// version, a hostile length, or a truncated payload.
pub fn open_snapshot(bytes: &[u8]) -> Result<&[u8], SaError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(SaError::Checkpoint(format!(
            "snapshot truncated: {} bytes is shorter than the {SNAPSHOT_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[..2] != SNAPSHOT_MAGIC {
        return Err(SaError::Checkpoint(format!(
            "bad snapshot magic 0x{:02x}{:02x}",
            bytes[0], bytes[1]
        )));
    }
    let version = bytes[2];
    if version != SNAPSHOT_VERSION {
        return Err(SaError::Checkpoint(format!(
            "unsupported snapshot version {version} (this build speaks {SNAPSHOT_VERSION})"
        )));
    }
    let len = u32::from_le_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]) as usize;
    if len > MAX_SNAPSHOT {
        return Err(SaError::Checkpoint(format!(
            "snapshot length {len} exceeds maximum {MAX_SNAPSHOT}"
        )));
    }
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    if payload.len() != len {
        return Err(SaError::Checkpoint(format!(
            "snapshot length {len} disagrees with the {} payload bytes present",
            payload.len()
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_then_open_roundtrips() {
        let payload = b"mergeable state".to_vec();
        let sealed = seal_snapshot(&payload).unwrap();
        assert_eq!(open_snapshot(&sealed).unwrap(), payload.as_slice());
        // Empty payloads are legal (a pre-first-pane snapshot).
        let sealed = seal_snapshot(&[]).unwrap();
        assert_eq!(open_snapshot(&sealed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn corrupt_frames_rejected_with_typed_errors() {
        let sealed = seal_snapshot(b"state").unwrap();
        // Truncations at every point.
        for cut in 0..sealed.len() {
            assert!(
                matches!(open_snapshot(&sealed[..cut]), Err(SaError::Checkpoint(_))),
                "cut at {cut}"
            );
        }
        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] = b'X';
        assert!(matches!(open_snapshot(&bad), Err(SaError::Checkpoint(_))));
        // Unknown version: must reject, never guess (see module docs).
        let mut bad = sealed.clone();
        bad[2] = SNAPSHOT_VERSION + 1;
        match open_snapshot(&bad) {
            Err(SaError::Checkpoint(why)) => assert!(why.contains("version"), "{why}"),
            other => panic!("unexpected {other:?}"),
        }
        // Hostile length prefix.
        let mut bad = sealed.clone();
        bad[3..7].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(open_snapshot(&bad), Err(SaError::Checkpoint(_))));
        // Trailing garbage.
        let mut bad = sealed;
        bad.push(0xEE);
        assert!(matches!(open_snapshot(&bad), Err(SaError::Checkpoint(_))));
    }
}
